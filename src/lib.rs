//! # obcs — Ontology-Based Conversation System for Knowledge Bases
//!
//! A from-scratch Rust reproduction of *"An Ontology-Based Conversation
//! System for Knowledge Bases"* (SIGMOD 2020): a pipeline that bootstraps
//! a full conversation space — intents, training examples, entities,
//! dialogue, and structured query templates — from a domain ontology and
//! the knowledge base it describes, then serves multi-turn conversations
//! over it.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`ontology`] — OWL-flavoured domain ontologies, graph analysis,
//!   centrality, validation.
//! * [`kb`] — the in-memory relational knowledge base with a SQL subset
//!   engine, statistics, and data-driven ontology generation.
//! * [`nlq`] — ontology-driven NL→SQL interpretation and query templates.
//! * [`classifier`] — text classification (Naive Bayes, logistic
//!   regression) and evaluation metrics.
//! * [`core`] — the paper's contribution: conversation-space
//!   bootstrapping.
//! * [`dialogue`] — the dialogue logic table, dialogue tree, persistent
//!   context, and conversation-management patterns.
//! * [`agent`] — the online conversation engine.
//! * [`mdx`] — the synthetic Micromedex-scale medical use case.
//! * [`sim`] — the user simulator and §7 evaluation harness.
//! * [`lint`] — static analysis over the bootstrapped conversation space.
//! * [`verify`] — whole-space verification: dialogue-flow model checking,
//!   static query bind-checking, cross-artifact consistency (OBCS1xx).
//! * [`telemetry`] — zero-dependency tracing and metrics for the turn
//!   pipeline (spans, counters, latency histograms).
//! * [`faults`] — fault injection, the resilience loop, and graceful
//!   degradation for the turn pipeline.
//! * [`cache`] — the generation-invalidated LRU backing the pipeline's
//!   plan/result/NLU caches.
//! * [`serve`] — the concurrent socket serving layer: NDJSON protocol,
//!   sharded session table with TTL eviction and admission control,
//!   per-turn deadline budgets (`docs/PROTOCOL.md`, DESIGN.md §15).
//!
//! ## Quickstart
//!
//! ```
//! use obcs::prelude::*;
//!
//! // A small medical world: ontology + knowledge base + schema mapping.
//! let (onto, kb, mapping) = obcs::core::testutil::fig2_fixture();
//!
//! // Offline: bootstrap the conversation space from the ontology (§4).
//! let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
//! assert!(space.inventory().intents_total > 5);
//!
//! // Online: assemble the agent and converse (§2, Fig. 1b).
//! let mut agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
//! let reply = agent.respond("what drug treats Fever?");
//! assert!(reply.text.contains("Aspirin"));
//! ```

pub use obcs_agent as agent;
pub use obcs_cache as cache;
pub use obcs_classifier as classifier;
pub use obcs_core as core;
pub use obcs_dialogue as dialogue;
pub use obcs_faults as faults;
pub use obcs_kb as kb;
pub use obcs_lint as lint;
pub use obcs_mdx as mdx;
pub use obcs_nlq as nlq;
pub use obcs_ontology as ontology;
pub use obcs_serve as serve;
pub use obcs_sim as sim;
pub use obcs_telemetry as telemetry;
pub use obcs_verify as verify;

/// The most common imports in one place.
pub mod prelude {
    pub use obcs_agent::{AgentConfig, AgentReply, ConversationAgent, Feedback, ReplyKind};
    pub use obcs_core::{bootstrap, BootstrapConfig, ConversationSpace, SmeFeedback};
    pub use obcs_kb::{KnowledgeBase, Value};
    pub use obcs_nlq::OntologyMapping;
    pub use obcs_ontology::{Ontology, OntologyBuilder};
}
