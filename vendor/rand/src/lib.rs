//! Offline shim of the `rand` 0.8 API surface this workspace uses:
//! [`RngCore`], [`SeedableRng`] (with the splitmix64-based
//! `seed_from_u64`), [`Rng::gen_range`]/[`Rng::gen_bool`]/[`Rng::gen`],
//! and [`seq::SliceRandom`] (`choose`, `shuffle`). Value streams are
//! deterministic given a seed but are not bit-identical to upstream rand.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed with splitmix64, as upstream rand does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = Splitmix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let b = sm.next().to_le_bytes();
            let n = rest.len();
            rest.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

struct Splitmix64 {
    state: u64,
}

impl Splitmix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform `[0, 1)` double from the top 53 bits of one `u64`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire, without
/// the bias-correction loop — negligible for this workspace's bounds).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_range_impl!(f32, f64);

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{below, Rng};

    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(below(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small-state xoshiro256++ used as the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result =
                (self.s[0].wrapping_add(self.s[3])).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
