//! Offline shim of `rand_chacha`: a genuine ChaCha block function (the
//! same keystream the RFC 8439 quarter-round produces) exposed through the
//! shim `rand` traits. Deterministic per seed; not guaranteed to match
//! upstream rand_chacha's word order bit-for-bit.

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr) => {
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buffer = chacha_block(&self.key, self.counter, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, word) in key.iter_mut().enumerate() {
                    let mut b = [0u8; 4];
                    b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *word = u32::from_le_bytes(b);
                }
                let mut rng = $name { key, counter: 0, buffer: [0; 16], index: 16 };
                rng.refill();
                rng
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8);
chacha_rng!(ChaCha12Rng, 12);
chacha_rng!(ChaCha20Rng, 20);

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865; // "expa"
    state[1] = 0x3320_646e; // "nd 3"
    state[2] = 0x7962_2d32; // "2-by"
    state[3] = 0x6b20_6574; // "te k"
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;

    let initial = state;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn streams_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
