//! Offline shim of `serde_derive`.
//!
//! With no crates.io access there is no `syn`/`quote`, so this macro parses
//! the item's token stream by hand and emits impls of the shim `serde`
//! traits as source strings. It supports exactly the item shapes this
//! workspace derives on: non-generic structs (named, tuple/newtype, unit)
//! and non-generic enums (unit, tuple and struct variants), plus the
//! `#[serde(skip)]` field attribute. Representations match serde_json:
//! structs are objects, newtype structs are transparent, enums are
//! externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

struct Field {
    name: Option<String>,
    skip: bool,
}

enum Body {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Shape {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// `true` if an attribute token pair (`#` + `[...]`) is `#[serde(...)]`
/// containing the ident `skip`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string().starts_with("skip"))),
        _ => false,
    }
}

/// Consumes leading attributes; returns whether any was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                skip |= attr_is_serde_skip(g);
                *pos += 2;
            }
            _ => break,
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    eat_attrs(&tokens, &mut pos);
    eat_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize/Deserialize) shim: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive shim: expected item name, got {other:?}"),
    };
    pos += 1;

    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive shim: generic type `{name}` is not supported offline");
    }

    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Body::Unit,
            };
            Item { name, shape: Shape::Struct(body) }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive shim: expected enum body, got {other:?}"),
            };
            Item { name, shape: Shape::Enum(parse_variants(body)) }
        }
        other => panic!("derive shim: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        eat_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive shim: expected field name, got {other:?}"),
        };
        pos += 1;
        // Skip `:` then the type up to the next top-level comma.
        pos += 1;
        skip_type(&tokens, &mut pos);
        fields.push(Field { name: Some(name), skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = eat_attrs(&tokens, &mut pos);
        eat_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name: None, skip });
    }
    fields
}

/// Advances past one type, tracking `<`/`>` depth outside groups; stops
/// after the top-level `,` (or at end of stream).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && depth == 0 {
                    *pos += 1;
                    return;
                }
                if c == '<' {
                    depth += 1;
                } else if c == '>' && !prev_dash {
                    depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *pos += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        eat_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive shim: expected variant name, got {other:?}"),
        };
        pos += 1;
        let body = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Body::Tuple(parse_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from("let mut __m: Vec<(String, ::serde::Content)> = Vec::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let name = f.name.as_deref().expect("named field");
        out.push_str(&format!(
            "__m.push((\"{name}\".to_string(), ::serde::Serialize::to_content(&{})));\n",
            accessor(name)
        ));
    }
    out.push_str("::serde::Content::Map(__m)");
    out
}

fn de_named_fields(ty: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        if f.skip {
            out.push_str(&format!("{name}: ::std::default::Default::default(),\n"));
        } else {
            out.push_str(&format!(
                "{name}: match ::serde::content_get({map_expr}, \"{name}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                 None => ::serde::missing_field(\"{ty}\", \"{name}\")?,\n\
                 }},\n"
            ));
        }
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => "::serde::Content::Null".to_string(),
        Shape::Struct(Body::Named(fields)) => ser_named_fields(fields, |f| format!("self.{f}")),
        Shape::Struct(Body::Tuple(fields)) => {
            let live: Vec<usize> = (0..fields.len()).filter(|&i| !fields[i].skip).collect();
            if live.len() == 1 && fields.len() == 1 {
                // Newtype structs are transparent, like serde.
                format!("::serde::Serialize::to_content(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            }
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    Body::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    Body::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().filter_map(|f| f.name.as_deref()).collect();
                        let inner = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let __inner = {{ {inner} }}; ::serde::Content::Map(vec![(\"{vn}\".to_string(), __inner)]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(Body::Unit) => format!("let _ = __c; Ok({name})"),
        Shape::Struct(Body::Named(fields)) => {
            let inner = de_named_fields(name, fields, "__map");
            format!(
                "let __map = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"object for {name}\", __c))?;\n\
                 Ok({name} {{\n{inner}}})"
            )
        }
        Shape::Struct(Body::Tuple(fields)) if fields.len() == 1 && !fields[0].skip => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::Struct(Body::Tuple(fields)) => {
            let n = fields.len();
            let mut parts = Vec::new();
            let mut live = 0usize;
            for f in fields.iter() {
                if f.skip {
                    parts.push("::std::default::Default::default()".to_string());
                } else {
                    parts.push(format!("::serde::Deserialize::from_content(&__seq[{live}])?"));
                    live += 1;
                }
            }
            format!(
                "let __seq = __c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array for {name}\", __c))?;\n\
                 if __seq.len() != {live} {{ return Err(::serde::DeError::new(format!(\"expected {live} elements for {name} ({n} fields), got {{}}\", __seq.len()))); }}\n\
                 Ok({name}({}))",
                parts.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    Body::Tuple(fields) if fields.len() == 1 => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),\n"
                        ));
                    }
                    Body::Tuple(fields) => {
                        let n = fields.len();
                        let parts: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"array for {name}::{vn}\", __v))?;\n\
                             if __seq.len() != {n} {{ return Err(::serde::DeError::new(\"wrong tuple arity for {name}::{vn}\")); }}\n\
                             return Ok({name}::{vn}({}));\n}}\n",
                            parts.join(", ")
                        ));
                    }
                    Body::Named(fields) => {
                        let inner = de_named_fields(&format!("{name}::{vn}"), fields, "__map");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __map = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object for {name}::{vn}\", __v))?;\n\
                             return Ok({name}::{vn} {{\n{inner}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => return Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __v) = &__m[0];\n\
                 match __k.as_str() {{\n\
                 {data_arms}\
                 __other => return Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::DeError::expected(\"externally tagged {name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
