//! Offline shim of `serde_json`: converts the shim serde [`Content`] tree
//! to and from JSON text. Output formatting follows upstream serde_json
//! (compact `{"a":1}`, pretty with two-space indent) so committed artifacts
//! produced by the real crate parse and re-render stably.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// JSON (de)serialization error with line/column context for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        Error { message: message.into(), line, column }
    }

    fn data(message: impl Into<String>) -> Self {
        Error { message: message.into(), line: 0, column: 0 }
    }

    pub fn line(&self) -> usize {
        self.line
    }

    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.message, self.line, self.column)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::data(e.to_string())
    }
}

/// A parsed JSON value; alias for the shim serde's self-describing tree.
pub type Value = Content;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_content(&value)?)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser::new(input);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // serde_json rejects non-finite floats; render null like its Value
        // printer does when given one indirectly.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1.0e16 {
        // Keep the ".0" marker upstream serde_json emits for integral floats.
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&v.to_string());
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        let consumed = &self.input[..self.pos.min(self.input.len())];
        let line = consumed.matches('\n').count() + 1;
        let column = consumed.rsplit('\n').next().map_or(0, str::len) + 1;
        Error::parse(message, line, column)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.parse_hex4()?;
                                    0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character.
                    let start = self.pos;
                    let ch = self.input[start..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    self.pos += ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = &self.input[self.pos..self.pos + 4];
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let src = r#"{"a": [1, -2, 3.5], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v: Value = from_str(src).unwrap();
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_matches_serde_json_shape() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.25f64).unwrap(), "1.25");
    }

    #[test]
    fn surrogate_pairs_parse() {
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v, Content::Str("😀".to_string()));
    }

    #[test]
    fn errors_carry_position() {
        let e = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(e.line() >= 1 && e.column() > 1);
    }
}
