//! Offline shim of `proptest`.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, integer/float range strategies,
//! regex-subset string strategies (`"[a-z]{0,20}"`, `"\\PC{0,50}"`, `.`),
//! tuple strategies, [`collection::vec`], [`any`], and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Cases are generated from a
//! deterministic per-test seed; failures report the case number but are
//! not shrunk. Case count defaults to 48 (`PROPTEST_CASES` overrides).

use std::fmt;

/// A failed property within one generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod test_runner {
    use super::TestCaseError;

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn case_count() -> usize {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
    }

    /// Runs one property over `case_count` generated cases, panicking on
    /// the first failing case (no shrinking in the shim).
    pub fn run<F>(name: &str, mut property: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for case in 0..case_count() {
            let mut rng = TestRng::from_seed(seed.wrapping_add(case as u64));
            if let Err(e) = property(&mut rng) {
                panic!("proptest `{name}` failed at case {case}: {e}");
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        fn prop_filter<F>(self, reason: &'static str, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, filter, reason }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: std::rc::Rc::new(self) }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        filter: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.filter)(&v) {
                    return v;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive candidates", self.reason)
        }
    }

    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: self.inner.clone() }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// Regex-subset string strategy: `&'static str` patterns like
    /// `"[a-zA-Z ]{1,60}"`, `"\\PC{0,24}"`, `".{0,80}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::regex_gen::generate(self, rng)
        }
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mix of unit-interval and scaled values; avoids NaN/inf which
            // the shim's consumers never exercise intentionally.
            let unit = rng.unit_f64();
            (unit - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('a')
        }
    }

    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element count for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

mod regex_gen {
    use super::test_runner::TestRng;

    enum CharSet {
        /// Explicit list of (start, end) inclusive char ranges.
        Ranges(Vec<(char, char)>),
        /// Printable characters (`\PC`, `.`): mostly ASCII, some unicode.
        Printable,
    }

    struct Element {
        set: CharSet,
        min: usize,
        max: usize,
    }

    const UNICODE_POOL: [char; 8] = ['é', 'ß', 'ñ', 'ü', 'λ', '中', '–', 'Ω'];

    impl CharSet {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                CharSet::Printable => {
                    // 1-in-16 chance of a non-ASCII printable character.
                    if rng.below(16) == 0 {
                        UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]
                    } else {
                        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
                    }
                }
                CharSet::Ranges(ranges) => {
                    let total: u64 = ranges.iter().map(|&(a, b)| (b as u64) - (a as u64) + 1).sum();
                    let mut pick = rng.below(total);
                    for &(a, b) in ranges {
                        let span = (b as u64) - (a as u64) + 1;
                        if pick < span {
                            return char::from_u32(a as u32 + pick as u32).unwrap_or(a);
                        }
                        pick -= span;
                    }
                    unreachable!("pick within total")
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Printable
                }
                '\\' => {
                    // `\PC` (printable), `\d`, or an escaped literal.
                    match chars.get(i + 1) {
                        Some('P') | Some('p') => {
                            i += 3; // backslash, P, class letter
                            CharSet::Printable
                        }
                        Some('d') => {
                            i += 2;
                            CharSet::Ranges(vec![('0', '9')])
                        }
                        Some(&c) => {
                            i += 2;
                            CharSet::Ranges(vec![(c, c)])
                        }
                        None => break,
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|&e| e != ']')
                        {
                            ranges.push((c, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((c, c));
                            i += 1;
                        }
                    }
                    i += 1; // closing bracket
                    CharSet::Ranges(ranges)
                }
                c => {
                    i += 1;
                    CharSet::Ranges(vec![(c, c)])
                }
            };
            // Quantifier.
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .expect("regex strategy: unterminated quantifier");
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo = lo.trim().parse().unwrap_or(0);
                            let hi = hi.trim().parse().unwrap_or(lo + 8);
                            (lo, hi)
                        }
                        None => {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            elements.push(Element { set, min, max });
        }
        elements
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for element in parse(pattern) {
            let span = (element.max - element.min) as u64;
            let count = element.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            for _ in 0..count {
                out.push(element.set.sample(rng));
            }
        }
        out
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 3usize..9, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&v));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn regex_class_respects_alphabet(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_strategy_sizes(v in collection::vec(0u8..3, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0i64..5, 0i64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..10).contains(&pair));
        }
    }

    #[test]
    fn printable_strings_have_no_control_chars() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let s = Strategy::generate(&"\\PC{0,24}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()));
            assert!(s.chars().count() <= 24);
        }
    }
}
