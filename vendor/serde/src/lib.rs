//! Offline shim of serde for this workspace.
//!
//! The container this repository builds in has no crates.io access, so the
//! real serde cannot be vendored. This shim keeps the public surface the
//! workspace relies on — `Serialize`/`Deserialize` traits, the
//! `#[derive(Serialize, Deserialize)]` macros, and `#[serde(skip)]` — but
//! replaces serde's visitor architecture with a simple self-describing
//! [`Content`] tree. `serde_json` (also shimmed) converts `Content` to and
//! from JSON text. Representations match upstream serde_json: structs are
//! maps, newtype structs are transparent, enums are externally tagged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data tree: the shim's stand-in for serde's data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map with string keys (the JSON object model).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view: accepts I64, U64 and integral F64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e15 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) => u64::try_from(v).ok(),
            Content::F64(v) if v.fract() == 0.0 && v >= 0.0 && v < 1.9e16 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }

    pub fn expected(what: &str, got: &Content) -> Self {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Field lookup for derived struct impls.
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Missing-field recovery for derived struct impls: `Option` (and any other
/// type deserializable from null) treats an absent field as null, matching
/// serde_json; everything else reports the field.
pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, DeError> {
    T::from_content(&Content::Null)
        .map_err(|_| DeError::new(format!("missing field `{field}` in {ty}")))
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i128;
                if v < 0 { Content::I64(v as i64) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v = c.as_i64().map(|v| v as i128).or_else(|| c.as_u64().map(|v| v as i128));
                match v {
                    Some(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new(format!("integer {v} out of range for {}", stringify!($t)))),
                    None => Err(DeError::expected("integer", c)),
                }
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::expected("number", c))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().map(|v| v as f32).ok_or_else(|| DeError::expected("number", c))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::expected("bool", c))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("single-char string", c))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", c))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(DeError::expected("null", c)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("array", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::expected("array", c))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(DeError::new(format!(
                        "expected array of {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// Map / set impls (JSON keys are strings; integer and newtype-integer keys
// are stringified like serde_json does)
// ---------------------------------------------------------------------------

fn key_to_string(content: Content) -> String {
    match content {
        Content::Str(s) => s,
        Content::I64(v) => v.to_string(),
        Content::U64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or integer, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_content(&Content::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(v) = s.parse::<i64>() {
        let c = if v < 0 { Content::I64(v) } else { Content::U64(v as u64) };
        if let Ok(k) = K::from_content(&c) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::from_content(&Content::Bool(s == "true")) {
            return Ok(k);
        }
    }
    Err(DeError::new(format!("cannot reconstruct map key from `{s}`")))
}

macro_rules! map_impl {
    ($ty:ident, $($bound:path),*) => {
        impl<K: Serialize $(+ $bound)*, V: Serialize> Serialize for $ty<K, V> {
            fn to_content(&self) -> Content {
                let mut entries: Vec<(String, Content)> = self
                    .iter()
                    .map(|(k, v)| (key_to_string(k.to_content()), v.to_content()))
                    .collect();
                // Deterministic output regardless of hash order.
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                Content::Map(entries)
            }
        }
        impl<K: Deserialize $(+ $bound)*, V: Deserialize> Deserialize for $ty<K, V> {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let map = c.as_map().ok_or_else(|| DeError::expected("object", c))?;
                map.iter()
                    .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_content(v)?)))
                    .collect()
            }
        }
    };
}

map_impl!(HashMap, Eq, Hash);
map_impl!(BTreeMap, Ord);

macro_rules! set_impl {
    ($ty:ident, $($bound:path),*) => {
        impl<T: Serialize $(+ $bound)*> Serialize for $ty<T> {
            fn to_content(&self) -> Content {
                let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
                items.sort_by(content_order);
                Content::Seq(items)
            }
        }
        impl<T: Deserialize $(+ $bound)*> Deserialize for $ty<T> {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                c.as_seq()
                    .ok_or_else(|| DeError::expected("array", c))?
                    .iter()
                    .map(T::from_content)
                    .collect()
            }
        }
    };
}

set_impl!(HashSet, Eq, Hash);
set_impl!(BTreeSet, Ord);

/// Total order over content for deterministic set serialization.
fn content_order(a: &Content, b: &Content) -> std::cmp::Ordering {
    match (a, b) {
        (Content::I64(x), Content::I64(y)) => x.cmp(y),
        (Content::U64(x), Content::U64(y)) => x.cmp(y),
        (Content::Str(x), Content::Str(y)) => x.cmp(y),
        _ => {
            let ax = a.as_i64();
            let bx = b.as_i64();
            match (ax, bx) {
                (Some(x), Some(y)) => x.cmp(&y),
                _ => format!("{a:?}").cmp(&format!("{b:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_from_null_is_none() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn missing_field_defaults_options_only() {
        assert_eq!(missing_field::<Option<u32>>("T", "f").unwrap(), None);
        assert!(missing_field::<u32>("T", "f").is_err());
    }

    #[test]
    fn int_keys_round_trip() {
        let mut m = HashMap::new();
        m.insert(3u32, "x".to_string());
        let c = m.to_content();
        let back: HashMap<u32, String> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }
}
