//! Offline shim of `criterion`: same macro/type surface for the subset the
//! bench files use (`bench_function`, `benchmark_group`, `bench_with_input`,
//! `sample_size`, `BenchmarkId`, `black_box`), measuring with a simple
//! warmup + timed-batch loop and printing mean ns/iter. Statistical
//! analysis, plots and comparison against saved baselines are out of scope.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    iters_hint: u64,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~100ms of measurement, clamped by the sample-size hint.
        let target = Duration::from_millis(100);
        let iters =
            (target.as_nanos() / estimate.as_nanos()).clamp(1, self.iters_hint as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }
}

/// Group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Throughput annotation (accepted, not reported, by the shim).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &BenchmarkId::from(id), self.sample_size, |b| f(b));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }
}

fn run_one(group: &str, id: &BenchmarkId, sample_size: u64, mut f: impl FnMut(&mut Bencher)) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut bencher = Bencher { iters_hint: sample_size.max(1) * 100, result: None };
    f(&mut bencher);
    match bencher.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() / u128::from(iters.max(1));
            println!("{label:<50} {per_iter:>12} ns/iter ({iters} iterations)");
        }
        None => println!("{label:<50} (no measurement: closure never called iter)"),
    }
}

/// Builds one group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Main entry: runs groups only under `cargo bench` (cargo passes
/// `--bench`); under `cargo test` the binary exits immediately so test
/// runs don't pay benchmark cost.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let bench_mode = ::std::env::args().any(|a| a == "--bench");
            if !bench_mode {
                return;
            }
            $($group();)+
        }
    };
}
