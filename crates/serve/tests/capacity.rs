//! Concurrent admission-control properties of the sharded
//! [`SessionTable`]: the live-session count must never exceed the
//! configured capacity, no matter how many first-contact turns race.
//!
//! Regression for a non-atomic load-then-`fetch_add` admission check:
//! N threads opening sessions hashed to *different* shards could all
//! observe `live == capacity - 1` simultaneously and all admit,
//! over-committing the table by up to N-1 sessions. The slot is now
//! reserved with a compare-exchange loop before the fork is built.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use obcs_agent::{AgentConfig, ConversationAgent};
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
use obcs_serve::{Admission, SessionConfig, SessionTable};
use obcs_telemetry::{NoopRecorder, Recorder};

fn fig2_agent() -> ConversationAgent {
    let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { name: "Micromedex".to_string(), intent_confidence_threshold: 0.3 },
    )
}

#[test]
fn concurrent_first_contacts_never_admit_past_capacity() {
    const CAPACITY: usize = 6;
    const THREADS: usize = 16;
    const ROUNDS: usize = 8;

    let table = Arc::new(SessionTable::new(
        fig2_agent(),
        SessionConfig {
            shards: 8,
            capacity: CAPACITY,
            // Large enough that nothing expires mid-test: shedding must
            // come from the capacity check alone.
            ttl: u64::MAX / 2,
            ..SessionConfig::default()
        },
    ));

    for round in 0..ROUNDS {
        // Walk the table up to one-below-capacity, so every round starts
        // at the exact boundary the race needs: all contenders see
        // `capacity - 1` live sessions.
        for i in 0..CAPACITY - 1 {
            let recorder: Arc<dyn Recorder> = Arc::new(NoopRecorder);
            let admitted = table.turn(&format!("warm-{round}-{i}"), "hello", &recorder);
            assert!(matches!(admitted, Admission::Served(_)), "warm-up must admit");
        }
        assert_eq!(table.live(), (CAPACITY - 1) as u64);

        let barrier = Arc::new(Barrier::new(THREADS));
        let over_admitted = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let table = Arc::clone(&table);
                let barrier = Arc::clone(&barrier);
                let over_admitted = Arc::clone(&over_admitted);
                let served = Arc::clone(&served);
                let shed = Arc::clone(&shed);
                std::thread::spawn(move || {
                    let recorder: Arc<dyn Recorder> = Arc::new(NoopRecorder);
                    barrier.wait();
                    match table.turn(&format!("race-{round}-{t}"), "hello", &recorder) {
                        Admission::Served(_) => served.fetch_add(1, Ordering::Relaxed),
                        Admission::Shed => shed.fetch_add(1, Ordering::Relaxed),
                    };
                    // Observed from inside the race window, not just
                    // after it settles.
                    if table.live() > CAPACITY as u64 {
                        over_admitted.store(true, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }

        assert!(!over_admitted.load(Ordering::Relaxed), "live() exceeded capacity mid-race");
        assert!(table.live() <= CAPACITY as u64, "round {round}: settled above capacity");
        assert_eq!(
            served.load(Ordering::Relaxed),
            1,
            "round {round}: exactly the one free slot is granted"
        );
        assert_eq!(shed.load(Ordering::Relaxed), (THREADS - 1) as u64);

        // Established sessions are never shed, even at capacity.
        let recorder: Arc<dyn Recorder> = Arc::new(NoopRecorder);
        let again = table.turn(&format!("warm-{round}-0"), "hello again", &recorder);
        assert!(matches!(again, Admission::Served(_)), "established sessions always serve");

        // Drain for the next round.
        for i in 0..CAPACITY - 1 {
            table.end(&format!("warm-{round}-{i}"));
        }
        for t in 0..THREADS {
            table.end(&format!("race-{round}-{t}"));
        }
        assert_eq!(table.live(), 0, "round {round}: table drained");
    }
}
