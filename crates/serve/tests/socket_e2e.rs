//! End-to-end socket tests: a real server on an ephemeral port, driven
//! by the blocking client, checked byte-for-byte against an in-process
//! engine replay of the same script.

use obcs_agent::{AgentConfig, ConversationAgent};
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
use obcs_serve::protocol::encode_line;
use obcs_serve::{kind_label, Client, ServeConfig, Server, SessionConfig, TurnReply};

fn fig2_agent() -> ConversationAgent {
    let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { name: "Micromedex".to_string(), intent_confidence_threshold: 0.3 },
    )
}

/// The multi-turn script: elicitation, its answer, a repair turn
/// (gibberish → fallback), and a fresh lookup after the repair.
const SCRIPT: &[&str] =
    &["show me the precaution", "Ibuprofen", "apfjhd qwerty", "what drug treats Fever?"];

/// Render an in-process reply exactly as the server would put it on the
/// wire, so the comparison covers the full encoded line.
fn wire(session: &str, agent: &ConversationAgent, reply: &obcs_agent::AgentReply) -> TurnReply {
    TurnReply {
        session: session.to_string(),
        text: reply.text.clone(),
        kind: kind_label(reply.kind).to_string(),
        intent: reply.intent.and_then(|id| agent.space().intent(id)).map(|i| i.name.clone()),
        confidence: reply.confidence,
        found_results: reply.found_results,
        shed: false,
    }
}

#[test]
fn served_replies_are_byte_identical_to_in_process_replay() {
    // In-process replay: fork a session off the same base configuration
    // the server will fork from.
    let base = fig2_agent();
    let mut local = base.fork_session();
    let expected: Vec<String> = SCRIPT
        .iter()
        .map(|utt| {
            let reply = local.respond(utt);
            encode_line(&wire("e2e", &local, &reply))
        })
        .collect();

    // Served replay of the identical script under one session id.
    let mut server = Server::start(fig2_agent(), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let served: Vec<String> =
        SCRIPT.iter().map(|utt| encode_line(&client.turn("e2e", utt).expect("turn"))).collect();

    assert_eq!(served, expected, "served replies must be byte-identical to in-process replay");
    // The script really exercised a dialogue: an elicitation answered
    // across turns and a repair (fallback) turn in the middle.
    assert!(served[0].contains("\"elicitation\""), "{}", served[0]);
    assert!(served[1].contains("\"fulfilment\""), "{}", served[1]);
    assert!(served[2].contains("\"fallback\""), "{}", served[2]);

    drop(client);
    server.shutdown();
}

#[test]
fn sessions_are_isolated_on_one_connection() {
    let mut server = Server::start(fig2_agent(), ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // s1 starts an elicitation, s2 interleaves an unrelated lookup, and
    // s1's pending elicitation must still accept its answer.
    let r1 = client.turn("s1", "show me the precaution").expect("turn");
    assert_eq!(r1.kind, "elicitation");
    let r2 = client.turn("s2", "what drug treats Fever?").expect("turn");
    assert_eq!(r2.kind, "fulfilment");
    let r3 = client.turn("s1", "Ibuprofen").expect("turn");
    assert_eq!(r3.kind, "fulfilment", "{r3:?}");

    assert_eq!(server.stats().sessions_live, 2);
    assert!(client.end("s1").expect("end"));
    assert!(!client.end("s1").expect("end twice"), "second end finds nothing");
    assert_eq!(server.stats().sessions_live, 1);

    drop(client);
    server.shutdown();
}

#[test]
fn admission_control_sheds_new_sessions_at_capacity() {
    let config = ServeConfig {
        session: SessionConfig { capacity: 1, ..SessionConfig::default() },
        ..ServeConfig::default()
    };
    let mut server = Server::start(fig2_agent(), config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let r1 = client.turn("s1", "what drug treats Fever?").expect("turn");
    assert!(!r1.shed);

    // Table full: a second session is shed with a degraded apology, and
    // the established session keeps being served.
    let r2 = client.turn("s2", "what drug treats Fever?").expect("turn");
    assert!(r2.shed);
    assert_eq!(r2.kind, "degraded");
    assert!(r2.text.contains("capacity"), "{r2:?}");
    let r1b = client.turn("s1", "what drug treats Headache?").expect("turn");
    assert!(!r1b.shed);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.shed_turns, 1);
    assert_eq!(stats.sessions_live, 1);
    assert_eq!(stats.turns, 2);

    // Ending the session frees capacity for the next newcomer.
    assert!(client.end("s1").expect("end"));
    let r3 = client.turn("s2", "what drug treats Fever?").expect("turn");
    assert!(!r3.shed, "{r3:?}");

    drop(client);
    server.shutdown();
}

#[test]
fn malformed_and_oversized_lines_get_protocol_errors() {
    use std::io::{BufRead, BufReader, Write};

    let mut server = Server::start(fig2_agent(), ServeConfig::default()).expect("bind");
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    writer.write_all(b"this is not json\n").expect("write");
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"malformed\""), "{line}");

    // A line over MAX_LINE_BYTES is rejected without being parsed, and
    // the connection keeps serving afterwards.
    let huge = format!(
        "{{\"Turn\":{{\"session\":\"s\",\"utterance\":\"{}\"}}}}\n",
        "x".repeat(obcs_serve::MAX_LINE_BYTES)
    );
    writer.write_all(huge.as_bytes()).expect("write huge");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"too_large\""), "{line}");

    writer.write_all(b"\"Stats\"\n").expect("write stats");
    line.clear();
    reader.read_line(&mut line).expect("read");
    assert!(line.contains("\"protocol_errors\":2"), "{line}");

    drop(writer);
    drop(reader);
    server.shutdown();
}

#[test]
fn per_connection_traces_merge_into_one_report() {
    let config = ServeConfig { trace: true, ..ServeConfig::default() };
    let mut server = Server::start(fig2_agent(), config).expect("bind");

    let turns_per_conn = 3usize;
    let conns = 2usize;
    for c in 0..conns {
        let mut client = Client::connect(server.addr()).expect("connect");
        for _ in 0..turns_per_conn {
            client.turn(&format!("conn{c}"), "what drug treats Fever?").expect("turn");
        }
    }

    // Joining every connection thread guarantees both reports landed.
    server.shutdown();
    let report = server.take_trace().expect("trace collected");
    let turn_spans =
        report.stages.get(obcs_telemetry::stage::SERVE_TURN).map(|h| h.count).unwrap_or_default();
    assert_eq!(turn_spans as usize, conns * turns_per_conn);
    // The engine's own turn spans nested under the serve spans.
    let engine_turns =
        report.stages.get(obcs_telemetry::stage::TURN).map(|h| h.count).unwrap_or_default();
    assert_eq!(engine_turns as usize, conns * turns_per_conn);
    assert!(server.take_trace().is_none(), "take_trace drains");
}

#[test]
fn deadline_budget_is_installed_on_session_forks() {
    // Server forks inherit the serving resilience policy (turn budget);
    // with no fault injector this must not change any reply.
    let config = ServeConfig { turn_budget: Some(64), ..ServeConfig::default() };
    let mut server = Server::start(fig2_agent(), config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client.turn("s", "what drug treats Fever?").expect("turn");
    assert_eq!(reply.kind, "fulfilment");
    drop(client);
    server.shutdown();
}

/// Unique per-test durability directory under the system temp dir.
fn temp_durability_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("obcs_serve_durable_{}_{tag}_{n}", std::process::id()))
}

#[test]
fn durable_server_recovers_wal_mutations_and_serves_them() {
    use obcs_kb::{DurableKb, Value};
    use obcs_serve::DurabilityConfig;

    let dir = temp_durability_dir("recover");

    // First incarnation: a fresh durability directory is seeded from the
    // agent's KB, and startup reports no recovery.
    let durable_config =
        || ServeConfig { durability: Some(DurabilityConfig::at(&dir)), ..ServeConfig::default() };
    let mut server = Server::start(fig2_agent(), durable_config()).expect("bind");
    assert!(server.recovery().is_none(), "fresh directory, nothing recovered");
    let mut client = Client::connect(server.addr()).expect("connect");
    let before = client.turn("s", "show me the precaution").expect("turn");
    assert_eq!(before.kind, "elicitation");
    let before = client.turn("s", "Ibuprofen").expect("turn");
    assert!(!before.text.contains("durable"), "{before:?}");
    drop(client);
    server.shutdown();

    // Between incarnations a mutation lands in the WAL — and the handle
    // is dropped without a snapshot, a kill-style exit leaving the
    // record only in the log.
    {
        let (mut durable, _) = DurableKb::open(&dir).expect("open between runs");
        durable
            .insert(
                "precaution",
                vec![Value::Int(100), Value::Int(1), Value::text("a recovered durable warning")],
            )
            .expect("insert");
        durable.sync().expect("sync");
    }

    // Second incarnation: startup recovers snapshot + WAL tail and the
    // logged mutation shows up in served replies.
    let mut server = Server::start(fig2_agent(), durable_config()).expect("bind again");
    let report = server.recovery().expect("prior state recovered").clone();
    assert!(report.snapshot_loaded);
    assert_eq!(report.wal_records, 1, "the between-runs insert replayed from the WAL");
    let mut client = Client::connect(server.addr()).expect("connect");
    let after = client.turn("s", "show me the precaution").expect("turn");
    assert_eq!(after.kind, "elicitation");
    let after = client.turn("s", "Ibuprofen").expect("turn");
    assert!(
        after.text.contains("a recovered durable warning"),
        "the WAL-recovered row must be served: {after:?}"
    );
    drop(client);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn durable_shutdown_is_idempotent_and_leaves_a_recoverable_log() {
    use obcs_kb::DurableKb;
    use obcs_serve::DurabilityConfig;

    let dir = temp_durability_dir("double");
    let config =
        ServeConfig { durability: Some(DurabilityConfig::at(&dir)), ..ServeConfig::default() };
    let mut server = Server::start(fig2_agent(), config).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.turn("s", "what drug treats Fever?").expect("turn");
    drop(client);

    // Double shutdown: the second call joins nothing and re-syncs an
    // already-synced WAL — no panic, no deadlock, handle still usable.
    server.shutdown();
    server.shutdown();
    assert_eq!(server.stats().turns, 1, "handle stays usable after shutdown");

    // The directory still recovers cleanly after the server is gone.
    drop(server);
    let (recovered, report) = DurableKb::open(&dir).expect("recover after shutdown");
    assert_eq!(report.wal_truncated_bytes, 0, "graceful shutdown leaves no torn tail");
    assert!(recovered.kb().has_table("drug"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_compaction_under_live_traffic_sheds_nothing_and_stays_byte_identical() {
    use obcs_kb::{DurableKb, Value};
    use obcs_serve::DurabilityConfig;
    use std::time::{Duration, Instant};

    let dir = temp_durability_dir("compact");

    // Seed the directory, then land WAL records kill-style so the
    // compactor has a log worth folding into a fresh snapshot.
    Server::start(
        fig2_agent(),
        ServeConfig { durability: Some(DurabilityConfig::at(&dir)), ..ServeConfig::default() },
    )
    .expect("bind")
    .shutdown();
    {
        let (mut durable, _) = DurableKb::open(&dir).expect("open between runs");
        for i in 0..3 {
            durable
                .insert(
                    "precaution",
                    vec![Value::Int(100 + i), Value::Int(1), Value::text(format!("warning {i}"))],
                )
                .expect("insert");
        }
        durable.sync().expect("sync");
    }
    // The exact KB the server will recover and serve — the in-process
    // replicas below must fork from the same state to predict replies.
    let replica_kb = {
        let (durable, _) = DurableKb::open(&dir).expect("replica open");
        durable.into_kb()
    };

    let config = ServeConfig {
        durability: Some(DurabilityConfig::at(&dir).compact_every(Duration::from_millis(15))),
        ..ServeConfig::default()
    };
    let mut server = Server::start(fig2_agent(), config).expect("bind");
    let report = server.recovery().expect("prior state").clone();
    assert_eq!(report.wal_records, 3, "the seeded records replayed");
    let addr = server.addr();

    // Drive concurrent multi-turn traffic while the compactor fires:
    // every served reply must be byte-identical to an in-process replay
    // of the same session — compaction must be invisible on the wire.
    const THREADS: usize = 4;
    const LOOPS: usize = 5;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let replica_kb = replica_kb.clone();
            std::thread::spawn(move || {
                let mut base = fig2_agent();
                base.set_kb(replica_kb);
                let mut local = base.fork_session();
                let mut client = Client::connect(addr).expect("connect");
                let session = format!("compact-{t}");
                for _ in 0..LOOPS {
                    for utt in SCRIPT {
                        let expected = {
                            let reply = local.respond(utt);
                            encode_line(&wire(&session, &local, &reply))
                        };
                        let served = encode_line(&client.turn(&session, utt).expect("turn"));
                        assert_eq!(served, expected, "reply diverged during compaction");
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panics");
    }

    // At least one compaction must have committed (the log had records
    // and the interval is far shorter than the traffic run).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.compactions() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(server.compactions() >= 1, "the compactor never committed");
    let stats = server.stats();
    assert_eq!(stats.shed_turns, 0, "compaction must not shed turns");
    assert_eq!(stats.turns, (THREADS * LOOPS * SCRIPT.len()) as u64, "every turn served");
    server.shutdown();

    // The compacted directory: everything folded into an epoch-bumped
    // snapshot, nothing left to replay, state byte-identical.
    let (recovered, report) = DurableKb::open(&dir).expect("recover after compaction");
    assert_eq!(report.wal_records, 0, "the log was compacted away");
    assert!(report.epoch >= 1, "compaction bumped the epoch");
    assert_eq!(report.wal_discarded_records, 0);
    assert_eq!(recovered.kb().to_json(), replica_kb.to_json());
    std::fs::remove_dir_all(&dir).ok();
}
