//! Keeps `docs/PROTOCOL.md` honest: every fenced ```json block in the
//! spec must parse as a protocol message (`Request` or `Response`) and
//! survive an encode→decode round trip, so the examples cannot drift
//! from the serde types.

use obcs_serve::protocol::{decode_request, decode_response, encode_line, Request, Response};

fn spec_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    std::fs::read_to_string(path).expect("docs/PROTOCOL.md must exist")
}

/// Extract the contents of every fenced ```json block.
fn json_blocks(text: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        match (&mut current, line.trim()) {
            (None, "```json") => current = Some(String::new()),
            (Some(block), "```") => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            (Some(block), _) => {
                block.push_str(line);
                block.push('\n');
            }
            (None, _) => {}
        }
    }
    assert!(current.is_none(), "unterminated ```json block in PROTOCOL.md");
    blocks
}

#[test]
fn every_spec_example_round_trips_through_the_serde_types() {
    let blocks = json_blocks(&spec_text());
    assert!(blocks.len() >= 10, "PROTOCOL.md should carry worked examples, found {}", blocks.len());
    for (i, block) in blocks.iter().enumerate() {
        let as_request: Result<Request, _> = decode_request(block);
        let as_response: Result<Response, _> = decode_response(block);
        match (as_request, as_response) {
            (Ok(req), _) => {
                let back = decode_request(&encode_line(&req))
                    .unwrap_or_else(|e| panic!("example {i} re-decode failed: {e}"));
                assert_eq!(back, req, "example {i} did not round-trip");
            }
            (_, Ok(resp)) => {
                let back = decode_response(&encode_line(&resp))
                    .unwrap_or_else(|e| panic!("example {i} re-decode failed: {e}"));
                assert_eq!(back, resp, "example {i} did not round-trip");
            }
            (Err(req_err), Err(resp_err)) => panic!(
                "PROTOCOL.md example {i} parses as neither a Request \
                 ({req_err}) nor a Response ({resp_err}):\n{block}"
            ),
        }
    }
}

#[test]
fn spec_quotes_the_real_line_ceiling() {
    let spec = spec_text();
    let ceiling = obcs_serve::MAX_LINE_BYTES.to_string();
    assert!(
        spec.contains(&ceiling),
        "PROTOCOL.md must quote MAX_LINE_BYTES ({ceiling}) in its limits section"
    );
}

#[test]
fn spec_names_every_reply_kind() {
    use obcs_agent::ReplyKind;
    let spec = spec_text();
    for kind in [
        ReplyKind::Management,
        ReplyKind::Elicitation,
        ReplyKind::Fulfilment,
        ReplyKind::Proposal,
        ReplyKind::Disambiguation,
        ReplyKind::Fallback,
        ReplyKind::Closing,
        ReplyKind::Degraded,
    ] {
        let label = obcs_serve::kind_label(kind);
        assert!(spec.contains(label), "PROTOCOL.md must document reply kind `{label}`");
    }
}
