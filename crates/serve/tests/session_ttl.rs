//! Deterministic session-TTL eviction on the tick clock: every table
//! operation reads the clock once, so idleness is an exact function of
//! operation count.

use std::sync::Arc;

use obcs_agent::{AgentConfig, ConversationAgent};
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
use obcs_serve::{Admission, SessionConfig, SessionTable};
use obcs_telemetry::{NoopRecorder, Recorder, TickClock};

fn fig2_agent() -> ConversationAgent {
    let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { name: "Micromedex".to_string(), intent_confidence_threshold: 0.3 },
    )
}

fn served_text(a: Admission) -> String {
    match a {
        Admission::Served(reply) => reply.text,
        Admission::Shed => panic!("unexpected shed"),
    }
}

#[test]
fn idle_sessions_are_evicted_after_ttl_ticks() {
    let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    // One shard so every operation sweeps the same map; ttl of 4 ticks.
    let config = SessionConfig { shards: 1, ttl: 4, ..SessionConfig::default() };
    let table = SessionTable::with_clock(fig2_agent(), config, Box::new(TickClock::new()));

    // Tick 0: s1 opens and starts an elicitation (context to lose).
    let first = served_text(table.turn("s1", "show me the precaution", &rec));
    assert!(first.contains("which drug"), "{first}");
    assert_eq!(table.opened(), 1);

    // Ticks 1..=4: four turns on other sessions age s1 to the TTL edge
    // without crossing it (idle == ttl is still live).
    for i in 1..=4u32 {
        served_text(table.turn(&format!("other{i}"), "what drug treats Fever?", &rec));
    }
    assert_eq!(table.evicted(), 0);

    // Tick 5: one more turn pushes s1 past the TTL; the sweep drops it
    // (the younger sessions are all within TTL still).
    served_text(table.turn("other5", "what drug treats Fever?", &rec));
    assert_eq!(table.evicted(), 1, "s1 (and nothing else) expired");

    // Tick 6: s1 re-contacts. The sweep now also catches other1
    // (idle 5 > 4), then s1 is re-admitted as a brand-new session.
    let reply = served_text(table.turn("s1", "Ibuprofen", &rec));
    assert_eq!(table.evicted(), 2, "other1 aged out on the next sweep");
    // s1 came back as a *fresh* session: the pending elicitation is
    // gone, so the bare drug name no longer completes the precaution
    // question.
    assert!(!reply.contains("precaution info"), "context must be lost after eviction: {reply}");
    assert_eq!(table.opened(), 7, "s1 was re-admitted as a new session");
}

#[test]
fn recent_sessions_survive_the_sweep() {
    let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    let config = SessionConfig { shards: 1, ttl: 10, ..SessionConfig::default() };
    let table = SessionTable::with_clock(fig2_agent(), config, Box::new(TickClock::new()));

    let first = served_text(table.turn("s1", "show me the precaution", &rec));
    assert!(first.contains("which drug"), "{first}");
    for i in 0..5u32 {
        served_text(table.turn(&format!("other{i}"), "what drug treats Fever?", &rec));
    }
    // Within TTL: the elicitation context is intact and the bare drug
    // name completes the original question.
    let reply = served_text(table.turn("s1", "Ibuprofen", &rec));
    assert!(reply.contains("precaution"), "{reply}");
    assert_eq!(table.evicted(), 0);
    assert_eq!(table.opened(), 6);
}

#[test]
fn memory_ceiling_trims_oldest_log_records() {
    let rec: Arc<dyn Recorder> = Arc::new(NoopRecorder);
    // A ceiling small enough that a few turns overflow it.
    let config = SessionConfig { shards: 1, byte_ceiling: 160, ..SessionConfig::default() };
    let table = SessionTable::with_clock(fig2_agent(), config, Box::new(TickClock::new()));

    for _ in 0..12 {
        served_text(table.turn("s1", "what drug treats Fever?", &rec));
    }
    // The session survived 12 turns but its log stayed bounded: a
    // full unbounded log would hold 12 records.
    let log_len = table.log_len("s1").expect("session live");
    assert!(log_len < 12, "log must be trimmed, got {log_len} records");
    assert!(log_len >= 1, "the newest record is always kept");
}
