//! The socket server: a `std::net` accept loop with one handler thread
//! per connection (no async runtime — the vendored-deps build has no
//! tokio), speaking the NDJSON protocol of [`crate::protocol`] over a
//! shared [`SessionTable`].

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use obcs_agent::{AgentReply, ConversationAgent, ReplyKind};
use obcs_faults::ResilienceConfig;
use obcs_kb::{DurableKb, RecoveryReport};
use obcs_telemetry::{span, stage, CollectingRecorder, NoopRecorder, Recorder, TraceReport};

use crate::protocol::{
    decode_request, encode_line, Request, Response, StatsSnapshot, TurnReply, MAX_LINE_BYTES,
};
use crate::session::{shed_reply, Admission, SessionConfig, SessionTable};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` for an ephemeral port (tests, bench).
    pub addr: String,
    /// Session-table resource policy (shards, capacity, TTL, memory
    /// ceiling).
    pub session: SessionConfig,
    /// Per-turn deadline budget, in ticks of each fork's resilience
    /// clock, installed on the base agent before any fork is taken
    /// (`None` keeps the agent's current resilience policy).
    pub turn_budget: Option<u64>,
    /// When true, each connection runs under a tick-clock
    /// [`CollectingRecorder`]; reports merge into one [`TraceReport`]
    /// retrievable via [`ServerHandle::take_trace`].
    pub trace: bool,
    /// Durability directory (DESIGN.md §16). When set, startup recovers
    /// the KB from the directory's snapshot + WAL if one exists —
    /// replacing the agent's KB with the recovered one — or seeds the
    /// directory from the agent's KB if not, and shutdown fsyncs the
    /// WAL. `None` (the default) serves purely in memory, as before.
    pub durability: Option<DurabilityConfig>,
}

/// Where a durable server keeps its snapshot + WAL pair, and whether a
/// background compactor folds the WAL into fresh snapshots while the
/// server keeps taking turns.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding [`obcs_kb::SNAPSHOT_FILE`] and
    /// [`obcs_kb::WAL_FILE`] (created if absent).
    pub dir: PathBuf,
    /// Interval between background compaction checks. `None` (the
    /// default) disables the compactor; shutdown still leaves a
    /// recoverable snapshot + WAL pair, recovery just replays more
    /// records.
    pub compact_interval: Option<Duration>,
    /// Pending WAL records below which a compaction tick does nothing,
    /// so an idle log is not endlessly re-snapshotted.
    pub compact_min_records: usize,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`, with background compaction off.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig { dir: dir.into(), compact_interval: None, compact_min_records: 1 }
    }

    /// Enable background compaction roughly every `interval`.
    pub fn compact_every(mut self, interval: Duration) -> Self {
        self.compact_interval = Some(interval);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            session: SessionConfig::default(),
            turn_budget: ResilienceConfig::serving().turn_budget,
            trace: false,
            durability: None,
        }
    }
}

#[derive(Default)]
struct Counters {
    turns: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
    connections: AtomicU64,
    /// Background compactions committed. Process-local observability
    /// (see [`Server::compactions`]); deliberately *not* part of the
    /// wire [`StatsSnapshot`], whose shape is frozen by PROTOCOL.md.
    compactions: AtomicU64,
}

struct Inner {
    table: SessionTable,
    server_name: String,
    counters: Counters,
    traces: Mutex<Vec<TraceReport>>,
    trace: bool,
    shutdown: AtomicBool,
    /// Open durable handle when the server was started with a
    /// [`DurabilityConfig`]; shutdown fsyncs its WAL.
    durable: Option<Mutex<DurableKb>>,
}

impl Inner {
    fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            sessions_live: self.table.live(),
            sessions_opened: self.table.opened(),
            sessions_evicted: self.table.evicted(),
            sessions_ended: self.table.ended(),
            turns: self.counters.turns.load(Ordering::Relaxed),
            shed_turns: self.counters.shed.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            connections: self.counters.connections.load(Ordering::Relaxed),
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server —
/// call [`ServerHandle::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    compactor: Option<JoinHandle<()>>,
    recovery: Option<RecoveryReport>,
}

/// Alias kept for readability at call sites: `Server::start` returns the
/// handle you shut the server down with.
pub type ServerHandle = Server;

impl Server {
    /// Bind, install the serving resilience policy on `agent`, and start
    /// accepting connections. The agent becomes the base every session
    /// forks from.
    ///
    /// With [`ServeConfig::durability`] set, the agent's KB is first
    /// reconciled with the durability directory: an existing snapshot +
    /// WAL is recovered (torn tail truncated, generation counters and
    /// index policy restored — see [`Server::recovery`]) and installed
    /// on the agent; a fresh directory is seeded with a snapshot of the
    /// agent's KB. Durability failures surface as `std::io::Error` here
    /// rather than degrading to a silently non-durable server.
    pub fn start(mut agent: ConversationAgent, config: ServeConfig) -> std::io::Result<Server> {
        if let Some(budget) = config.turn_budget {
            agent.set_resilience(ResilienceConfig {
                turn_budget: Some(budget),
                ..ResilienceConfig::serving()
            });
        }
        let mut durable = None;
        let mut recovery = None;
        if let Some(durability) = &config.durability {
            if DurableKb::exists(&durability.dir) {
                let (d, report) =
                    DurableKb::open(&durability.dir).map_err(std::io::Error::other)?;
                agent.set_kb(d.kb().clone());
                durable = Some(Mutex::new(d));
                recovery = Some(report);
            } else {
                let d = DurableKb::create(&durability.dir, agent.kb().clone())
                    .map_err(std::io::Error::other)?;
                durable = Some(Mutex::new(d));
            }
        }
        let server_name = agent.config().name.clone();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            table: SessionTable::new(agent, config.session.clone()),
            server_name,
            counters: Counters::default(),
            traces: Mutex::new(Vec::new()),
            trace: config.trace,
            shutdown: AtomicBool::new(false),
            durable,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_inner = Arc::clone(&inner);
        let accept_conns = Arc::clone(&conns);
        let accept = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if accept_inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    accept_inner.counters.connections.fetch_add(1, Ordering::Relaxed);
                    let conn_inner = Arc::clone(&accept_inner);
                    let handle = std::thread::spawn(move || handle_connection(stream, conn_inner));
                    accept_conns.lock().unwrap_or_else(|e| e.into_inner()).push(handle);
                }
                Err(_) => {
                    if accept_inner.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                }
            }
        });

        // Background compaction (DESIGN.md §16): folds pending WAL
        // records into a fresh snapshot at the next epoch while turns
        // keep flowing. Turns never touch the DurableKb (the KB is
        // seeded at startup), so the compactor contends only for the
        // brief begin/finish critical sections.
        let compactor = match (&inner.durable, config.durability.as_ref()) {
            (Some(_), Some(durability)) => durability.compact_interval.map(|interval| {
                let inner = Arc::clone(&inner);
                let min_records = durability.compact_min_records;
                std::thread::spawn(move || compaction_loop(&inner, interval, min_records))
            }),
            _ => None,
        };

        Ok(Server { inner, addr, accept: Some(accept), conns, compactor, recovery })
    }

    /// What startup recovery did, when this server was started with a
    /// durability directory holding prior state: records replayed, torn
    /// bytes truncated, whether a snapshot was found. `None` for a
    /// non-durable server or a freshly seeded directory.
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// The bound address (resolves the ephemeral port when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current lifetime counters (same data as a wire `Stats` request).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats()
    }

    /// Background compactions committed since startup (0 when the
    /// compactor is disabled).
    pub fn compactions(&self) -> u64 {
        self.inner.counters.compactions.load(Ordering::Relaxed)
    }

    /// Merge and take the per-connection trace reports collected so far.
    /// Returns `None` when the server was started with `trace: false` or
    /// no traced connection has closed yet.
    pub fn take_trace(&self) -> Option<TraceReport> {
        let mut traces = self.inner.traces.lock().unwrap_or_else(|e| e.into_inner());
        if traces.is_empty() {
            return None;
        }
        Some(TraceReport::merge(std::mem::take(&mut *traces)))
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    /// Connection handlers notice shutdown within their read-timeout
    /// tick (250ms) even if the peer keeps the socket open. On a
    /// durable server, the WAL is fsynced after the last handler exits,
    /// so a graceful shutdown never leaves logged state in page cache
    /// only. Idempotent — a second call (or a call racing a first) just
    /// re-joins nothing and re-syncs an already-synced log; the handle
    /// stays usable for [`Server::stats`] / [`Server::take_trace`]
    /// afterwards.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.conns.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        if let Some(durable) = &self.inner.durable {
            let _ = durable.lock().unwrap_or_else(|e| e.into_inner()).sync();
        }
    }
}

/// The background compactor: every `interval`, if at least
/// `min_records` WAL records are pending, run the three-phase
/// compaction protocol — clone under a brief lock, stream the snapshot
/// to a tmp file with no lock held, swap by rename + epoch bump under a
/// second brief lock ([`obcs_kb::CompactionJob`]). Sleeps in short
/// ticks so shutdown is observed promptly.
fn compaction_loop(inner: &Inner, interval: Duration, min_records: usize) {
    let Some(durable) = &inner.durable else { return };
    let tick = Duration::from_millis(10);
    let mut elapsed = Duration::ZERO;
    while !inner.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(tick.min(interval));
        elapsed += tick.min(interval);
        if elapsed < interval {
            continue;
        }
        elapsed = Duration::ZERO;
        let job = {
            let mut d = durable.lock().unwrap_or_else(|e| e.into_inner());
            if d.pending_records() < min_records.max(1) {
                continue;
            }
            d.begin_compaction()
        };
        if job.write().is_err() {
            // Disk trouble streaming the tmp image; the live snapshot +
            // WAL pair is untouched and still recoverable. Retry at the
            // next interval.
            continue;
        }
        let committed = {
            let mut d = durable.lock().unwrap_or_else(|e| e.into_inner());
            d.finish_compaction(job)
        };
        if let Ok(true) = committed {
            inner.counters.compactions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The stable lowercase wire label for each engine reply kind — the
/// same vocabulary telemetry counts under `reply_kind`.
pub fn kind_label(kind: ReplyKind) -> &'static str {
    match kind {
        ReplyKind::Management => "management",
        ReplyKind::Elicitation => "elicitation",
        ReplyKind::Fulfilment => "fulfilment",
        ReplyKind::Proposal => "proposal",
        ReplyKind::Disambiguation => "disambiguation",
        ReplyKind::Fallback => "fallback",
        ReplyKind::Closing => "closing",
        ReplyKind::Degraded => "degraded",
    }
}

/// Convert an engine reply (plus session/intent context) to its wire
/// form. Public within the crate so the e2e test can render an
/// in-process replay through the identical code path.
pub(crate) fn wire_reply(
    session: &str,
    reply: &AgentReply,
    intent_name: Option<String>,
    shed: bool,
) -> TurnReply {
    TurnReply {
        session: session.to_string(),
        text: reply.text.clone(),
        kind: kind_label(reply.kind).to_string(),
        intent: intent_name,
        confidence: reply.confidence,
        found_results: reply.found_results,
        shed,
    }
}

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) {
    // Bounded reads so a handler can observe shutdown even when the
    // peer goes quiet without closing.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let collecting: Option<Arc<CollectingRecorder>> =
        if inner.trace { Some(Arc::new(CollectingRecorder::ticks())) } else { None };
    let recorder: Arc<dyn Recorder> = match &collecting {
        Some(c) => Arc::clone(c) as Arc<dyn Recorder>,
        None => Arc::new(NoopRecorder),
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_bounded_line(&mut reader, &mut line, &inner.shutdown) {
            LineRead::Eof => break,
            LineRead::TimedOut => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            LineRead::TooLarge => {
                inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: "too_large".to_string(),
                    message: format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                };
                if write_response(&mut writer, &resp).is_err() {
                    break;
                }
                // The oversized line was consumed; keep serving.
                continue;
            }
            LineRead::Line => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match decode_request(&line) {
            Err(detail) => {
                inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                Response::Error { code: "malformed".to_string(), message: detail }
            }
            Ok(Request::Hello { client: _ }) => Response::Welcome {
                server: inner.server_name.clone(),
                protocol: crate::protocol::PROTOCOL_VERSION,
            },
            Ok(Request::Turn { session, utterance }) => {
                serve_turn(&inner, &recorder, &session, &utterance)
            }
            Ok(Request::End { session }) => {
                let existed = inner.table.end(&session);
                Response::Ended { session, existed }
            }
            Ok(Request::Stats) => Response::Stats(inner.stats()),
        };
        if write_response(&mut writer, &response).is_err() {
            break;
        }
    }
    if let Some(c) = collecting {
        let report = c.take_report();
        inner.traces.lock().unwrap_or_else(|e| e.into_inner()).push(report);
    }
}

fn serve_turn(
    inner: &Inner,
    recorder: &Arc<dyn Recorder>,
    session: &str,
    utterance: &str,
) -> Response {
    let _serve = span(&**recorder, stage::SERVE_TURN);
    match inner.table.turn(session, utterance, recorder) {
        Admission::Served(reply) => {
            inner.counters.turns.fetch_add(1, Ordering::Relaxed);
            let intent_name = inner.table.intent_name(reply.intent);
            Response::Reply(wire_reply(session, &reply, intent_name, false))
        }
        Admission::Shed => {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            recorder.incr(obcs_telemetry::metric::SHED, "capacity");
            Response::Reply(wire_reply(session, &shed_reply(), None, true))
        }
    }
}

enum LineRead {
    Line,
    Eof,
    TimedOut,
    TooLarge,
}

/// `read_line` with a byte ceiling and timeout awareness. On `TooLarge`
/// the rest of the oversized line is drained so the stream stays framed.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shutdown: &AtomicBool,
) -> LineRead {
    // Read raw bytes up to the newline ourselves: BufReader::read_line
    // would buffer an unbounded line before returning.
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return LineRead::Eof;
                }
                if bytes.is_empty() {
                    return LineRead::TimedOut;
                }
                continue;
            }
            Err(_) => return LineRead::Eof,
        };
        if available.is_empty() {
            return if bytes.is_empty() { LineRead::Eof } else { LineRead::Line };
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(available.len());
        if bytes.len() + take > MAX_LINE_BYTES {
            reader.consume(take);
            if newline.is_some() {
                return LineRead::TooLarge;
            }
            // Drain the rest of the oversized line.
            bytes.clear();
            loop {
                let buf = match reader.fill_buf() {
                    Ok(b) => b,
                    Err(_) => return LineRead::TooLarge,
                };
                if buf.is_empty() {
                    return LineRead::TooLarge;
                }
                let pos = buf.iter().position(|&b| b == b'\n');
                let n = pos.map(|i| i + 1).unwrap_or(buf.len());
                reader.consume(n);
                if pos.is_some() {
                    return LineRead::TooLarge;
                }
            }
        }
        bytes.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            *line = String::from_utf8_lossy(&bytes).into_owned();
            return LineRead::Line;
        }
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    writer.write_all(encode_line(response).as_bytes())?;
    writer.flush()
}
