//! The sharded session table.
//!
//! Each live session owns a full engine fork (`fork_session` clones the
//! dialogue state and shares the immutable `Arc<Nlu>`), keyed by the
//! client-chosen session id and hashed across N independently locked
//! shards so concurrent connections only contend when their sessions
//! collide on a shard. The table enforces three resource policies
//! (DESIGN.md §15):
//!
//! * **TTL eviction** — sessions idle longer than `ttl` clock readings
//!   are dropped; idleness is measured on a pluggable
//!   [`Clock`], which keeps the eviction tests
//!   deterministic on a [`TickClock`].
//! * **Per-session memory ceiling** — the fork's interaction log is the
//!   only unbounded per-session allocation, so after every turn the
//!   oldest records are trimmed until the log's approximate byte size
//!   fits `byte_ceiling`.
//! * **Admission control** — when the table is at `capacity` live
//!   sessions (after reclaiming expired ones), *new* sessions are shed
//!   with a [`ReplyKind::Degraded`] apology instead of queuing;
//!   established sessions are never shed.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use obcs_agent::{AgentReply, ConversationAgent, ReplyKind};
use obcs_telemetry::{Clock, Recorder, TickClock};

/// Resource policy for the session table.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Number of independently locked shards the session map is split
    /// over. Turns on sessions in the same shard serialize.
    pub shards: usize,
    /// Maximum live sessions before admission control sheds new ones.
    pub capacity: usize,
    /// Idle lifetime, in readings of the table's clock. A session whose
    /// last turn is more than `ttl` readings in the past is evicted.
    pub ttl: u64,
    /// Approximate per-session byte budget for the fork's interaction
    /// log (utterance + response text); oldest records are trimmed
    /// beyond it.
    pub byte_ceiling: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { shards: 8, capacity: 1024, ttl: 100_000, byte_ceiling: 64 * 1024 }
    }
}

struct SessionEntry {
    agent: ConversationAgent,
    last_used: u64,
    log_bytes: usize,
}

/// How the table disposed of one turn request.
pub enum Admission {
    /// The turn reached an engine fork; here is its reply.
    Served(AgentReply),
    /// Admission control refused to open a new session; the caller
    /// should relay [`shed_reply`] and leave no trace of the session.
    Shed,
}

/// The degraded apology served for a shed turn. Kept as a function (not
/// a constant reply) so every shed turn gets a fresh value.
pub fn shed_reply() -> AgentReply {
    AgentReply {
        text: "I am sorry — the service is at capacity right now. \
               Please try again in a moment."
            .to_string(),
        kind: ReplyKind::Degraded,
        intent: None,
        confidence: None,
        found_results: false,
    }
}

/// One reserved live-session slot, counted in `live` from the moment
/// [`SessionTable::try_reserve`] succeeds. Dropping an uncommitted
/// reservation releases the slot, so an abandoned fork (a panic in
/// `fork_session`, a future early-return) can never leak capacity.
struct Reservation<'a> {
    live: &'a AtomicU64,
    committed: bool,
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if !self.committed {
            self.live.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// A sharded map of live sessions, each owning an engine fork.
pub struct SessionTable {
    base: Mutex<ConversationAgent>,
    shards: Vec<Mutex<HashMap<String, SessionEntry>>>,
    clock: Box<dyn Clock>,
    config: SessionConfig,
    live: AtomicU64,
    opened: AtomicU64,
    evicted: AtomicU64,
    ended: AtomicU64,
}

impl SessionTable {
    /// Build a table around a fully assembled base agent, with a
    /// [`TickClock`] driving TTL (one reading per table operation).
    pub fn new(base: ConversationAgent, config: SessionConfig) -> Self {
        SessionTable::with_clock(base, config, Box::new(TickClock::new()))
    }

    /// Like [`SessionTable::new`] but with an explicit clock — tests
    /// inject a [`TickClock`] they can reason about; a wall-clock server
    /// could inject a monotonic one.
    pub fn with_clock(
        base: ConversationAgent,
        config: SessionConfig,
        clock: Box<dyn Clock>,
    ) -> Self {
        let shards = config.shards.max(1);
        SessionTable {
            base: Mutex::new(base),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            clock,
            config: SessionConfig { shards, ..config },
            live: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            ended: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, session: &str) -> usize {
        let mut h = DefaultHasher::new();
        session.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Drop expired entries from one locked shard.
    fn sweep_shard(&self, shard: &mut HashMap<String, SessionEntry>, now: u64) {
        let ttl = self.config.ttl;
        let before = shard.len();
        shard.retain(|_, e| now.saturating_sub(e.last_used) <= ttl);
        let dropped = (before - shard.len()) as u64;
        if dropped > 0 {
            self.live.fetch_sub(dropped, Ordering::Relaxed);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Sweep every shard (used before shedding, so capacity pressure
    /// first reclaims idle sessions table-wide).
    ///
    /// Uses `try_lock`: the caller holds its own shard's lock, so
    /// *blocking* on another shard here can deadlock with a second
    /// at-capacity caller sweeping from that shard toward this one. A
    /// shard that is contended is being actively served — its holder
    /// swept it on entry, so skipping it loses nothing.
    fn sweep_all(&self, now: u64, skip: usize) {
        for (i, s) in self.shards.iter().enumerate() {
            if i == skip {
                continue;
            }
            let mut shard = match s.try_lock() {
                Ok(guard) => guard,
                Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
                Err(std::sync::TryLockError::WouldBlock) => continue,
            };
            self.sweep_shard(&mut shard, now);
        }
    }

    /// Reserve one live-session slot with a compare-exchange loop, so
    /// the check and the increment are a single atomic step. A plain
    /// load-then-`fetch_add` here would let N first-contact turns racing
    /// on *different* shards all pass the check at `capacity - 1` and
    /// over-admit past the configured capacity.
    fn try_reserve(&self) -> Option<Reservation<'_>> {
        let capacity = self.config.capacity as u64;
        let mut current = self.live.load(Ordering::Relaxed);
        loop {
            if current >= capacity {
                return None;
            }
            match self.live.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Reservation { live: &self.live, committed: false }),
                Err(actual) => current = actual,
            }
        }
    }

    /// Serve one turn. Opens a session on first contact (subject to
    /// admission control), then runs the engine fork with `recorder`
    /// installed for the duration of the call.
    pub fn turn(&self, session: &str, utterance: &str, recorder: &Arc<dyn Recorder>) -> Admission {
        let now = self.clock.now();
        let idx = self.shard_of(session);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        self.sweep_shard(&mut shard, now);

        if !shard.contains_key(session) {
            let reservation = match self.try_reserve() {
                Some(r) => Some(r),
                None => {
                    // At capacity: reclaim idle sessions everywhere
                    // before giving up on this one.
                    self.sweep_all(now, idx);
                    self.try_reserve()
                }
            };
            let Some(mut reservation) = reservation else {
                return Admission::Shed;
            };
            let fork = {
                let base = self.base.lock().unwrap_or_else(|e| e.into_inner());
                base.fork_session()
            };
            shard.insert(
                session.to_string(),
                SessionEntry { agent: fork, last_used: now, log_bytes: 0 },
            );
            reservation.committed = true;
            self.opened.fetch_add(1, Ordering::Relaxed);
        }

        let entry = match shard.get_mut(session) {
            Some(e) => e,
            None => return Admission::Shed,
        };
        entry.last_used = now;
        entry.agent.set_recorder(Arc::clone(recorder));
        let reply = entry.agent.respond(utterance);
        entry.log_bytes += utterance.len() + reply.text.len();
        // Trim the oldest records in one pass: compute the cut index,
        // then a single `drain`. Per-record `Vec::remove(0)` would be
        // O(n²) under sustained ceiling pressure.
        let records = &entry.agent.log.records;
        let mut cut = 0;
        while entry.log_bytes > self.config.byte_ceiling && records.len() - cut > 1 {
            let old = &records[cut];
            entry.log_bytes =
                entry.log_bytes.saturating_sub(old.utterance.len() + old.response.len());
            cut += 1;
        }
        if cut > 0 {
            entry.agent.log.records.drain(..cut);
        }
        Admission::Served(reply)
    }

    /// Close a session explicitly, returning whether it was live.
    pub fn end(&self, session: &str) -> bool {
        let idx = self.shard_of(session);
        let mut shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        let existed = shard.remove(session).is_some();
        if existed {
            self.live.fetch_sub(1, Ordering::Relaxed);
            self.ended.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Sessions currently live.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Sessions ever admitted.
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Sessions evicted by TTL.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Sessions closed by an explicit end.
    pub fn ended(&self) -> u64 {
        self.ended.load(Ordering::Relaxed)
    }

    /// The TTL the table enforces (clock readings).
    pub fn ttl(&self) -> u64 {
        self.config.ttl
    }

    /// Number of interaction-log records a live session currently holds,
    /// or `None` when the session is not live — introspection for the
    /// memory-ceiling tests and operational debugging.
    pub fn log_len(&self, session: &str) -> Option<usize> {
        let idx = self.shard_of(session);
        let shard = self.shards[idx].lock().unwrap_or_else(|e| e.into_inner());
        shard.get(session).map(|e| e.agent.log.records.len())
    }

    /// Resolve an engine intent id to its name via the base agent's
    /// conversation space (forks share the same space).
    pub fn intent_name(&self, id: Option<obcs_agent::IntentId>) -> Option<String> {
        let base = self.base.lock().unwrap_or_else(|e| e.into_inner());
        id.and_then(|i| base.space().intent(i)).map(|i| i.name.clone())
    }
}
