//! # obcs-serve — the concurrent socket serving layer
//!
//! Turns the single-process conversation engine into a long-lived
//! service: a `std::net` TCP server (thread-per-connection; the
//! vendored-deps build has no async runtime) speaking a newline-delimited
//! JSON protocol ([`protocol`], spec in `docs/PROTOCOL.md`), over a
//! sharded [`SessionTable`] in which every live session owns an engine
//! fork (`fork_session` + shared `Arc<Nlu>`). The table enforces TTL
//! eviction, per-session memory ceilings, and admission control that
//! sheds new sessions with a `ReplyKind::Degraded` apology when the
//! table is full; per-turn deadline budgets ride the `obcs-faults`
//! resilience clock installed on every fork. Architecture notes live in
//! DESIGN.md §15; `repro serve` drives the Table 5 intent mix over real
//! sockets and gates p50/p99 turn latency in BENCH_perf.json.
//!
//! ## Client handshake
//!
//! ```
//! use obcs_serve::{Client, ServeConfig, Server, PROTOCOL_VERSION};
//! use obcs_agent::{AgentConfig, ConversationAgent};
//! use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
//!
//! // Assemble an engine over the small Fig. 2 fixture world.
//! let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
//! let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
//! let agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig {
//!     name: "Micromedex".to_string(),
//!     intent_confidence_threshold: 0.3,
//! });
//!
//! // Serve it on an ephemeral port and shake hands over the socket.
//! let mut server = Server::start(agent, ServeConfig::default()).expect("bind");
//! let mut client = Client::connect(server.addr()).expect("connect");
//! let (name, protocol) = client.hello("doctest").expect("handshake");
//! assert_eq!(name, "Micromedex");
//! assert_eq!(protocol, PROTOCOL_VERSION);
//!
//! // Drive one turn, then shut down cleanly.
//! let reply = client.turn("s1", "what drug treats Fever?").expect("turn");
//! assert_eq!(reply.kind, "fulfilment");
//! assert!(reply.text.contains("Aspirin"));
//! drop(client);
//! server.shutdown();
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response, StatsSnapshot, TurnReply, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{kind_label, DurabilityConfig, ServeConfig, Server, ServerHandle};
pub use session::{Admission, SessionConfig, SessionTable};
