//! A minimal blocking client for the NDJSON protocol — used by the
//! `obcs-sim` load generator, the end-to-end tests, and as reference
//! code for anyone writing a client in another language.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{decode_response, encode_line, Request, Response, StatsSnapshot, TurnReply};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, peer closed).
    Io(std::io::Error),
    /// The server's line did not parse as a [`Response`].
    Decode(String),
    /// The server answered, but with a different response than the
    /// request calls for (including wire `Error` responses).
    Unexpected(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Decode(d) => write!(f, "bad response line: {d}"),
            ClientError::Unexpected(r) => write!(f, "unexpected response: {r:?}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One blocking connection to an `obcs-serve` server.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream) })
    }

    /// Send one request and read the matching response line.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.writer.write_all(encode_line(req).as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        decode_response(&line).map_err(ClientError::Decode)
    }

    /// Handshake: returns `(server_name, protocol_version)`.
    pub fn hello(&mut self, client_name: &str) -> Result<(String, u32), ClientError> {
        match self.request(&Request::Hello { client: client_name.to_string() })? {
            Response::Welcome { server, protocol } => Ok((server, protocol)),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Serve one turn under `session` and return the reply (shed turns
    /// come back as a normal [`TurnReply`] with `shed: true`).
    pub fn turn(&mut self, session: &str, utterance: &str) -> Result<TurnReply, ClientError> {
        let req = Request::Turn { session: session.to_string(), utterance: utterance.to_string() };
        match self.request(&req)? {
            Response::Reply(reply) => Ok(reply),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Close a session; returns whether the server still had it.
    pub fn end(&mut self, session: &str) -> Result<bool, ClientError> {
        match self.request(&Request::End { session: session.to_string() })? {
            Response::Ended { existed, .. } => Ok(existed),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fetch the server's lifetime counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
