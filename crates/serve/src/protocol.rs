//! The newline-delimited JSON wire protocol.
//!
//! Every message is one JSON object on one line, terminated by `\n`
//! (NDJSON). Requests are externally tagged by message name, mirroring
//! serde's enum encoding, so `{"Turn":{"session":"s1","utterance":"hi"}}`
//! is a turn request and `"Stats"` is a stats request. The full format,
//! with worked examples, lives in `docs/PROTOCOL.md`; the examples there
//! are round-tripped against these types by `tests/protocol_doc.rs` so
//! the spec cannot rot.

use serde::{Deserialize, Serialize};

/// The protocol revision spoken by this build. Servers echo it in
/// [`Response::Welcome`]; clients should refuse to proceed on a mismatch.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on the byte length of a single request line (including
/// the terminating newline). Longer lines are rejected with an
/// [`Response::Error`] of code `"too_large"` without being parsed.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A client→server message: one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Optional handshake. The server answers with [`Response::Welcome`]
    /// carrying its name and protocol version.
    Hello {
        /// Free-form client identifier, echoed nowhere; used for logs.
        client: String,
    },
    /// One conversation turn. Unknown session ids open a new session
    /// (subject to admission control); known ids continue the dialogue
    /// with full context (elicitation, disambiguation, repair).
    Turn {
        /// Client-chosen session identifier.
        session: String,
        /// The user utterance for this turn.
        utterance: String,
    },
    /// Close a session and release its engine fork immediately rather
    /// than waiting for TTL eviction.
    End {
        /// The session to close.
        session: String,
    },
    /// Request a [`StatsSnapshot`] of server-lifetime counters.
    Stats,
}

/// The payload of a successful [`Response::Reply`]: the engine's answer
/// for one served turn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TurnReply {
    /// The session the turn was served under (echoed from the request).
    pub session: String,
    /// The natural-language reply text.
    pub text: String,
    /// The reply kind label (`fulfilment`, `elicitation`, `proposal`,
    /// `disambiguation`, `fallback`, `management`, `closing`,
    /// `degraded`) — the same vocabulary the telemetry layer counts
    /// under `reply_kind`.
    pub kind: String,
    /// The accepted domain intent name, if the turn resolved one.
    pub intent: Option<String>,
    /// Classifier confidence for the detected intent, if any.
    pub confidence: Option<f64>,
    /// Whether fulfilment found any rows (true for non-fulfilment
    /// kinds).
    pub found_results: bool,
    /// True when admission control shed the turn before it reached the
    /// engine: the reply is a degraded apology and no session state was
    /// created or advanced.
    pub shed: bool,
}

/// Server-lifetime counters returned by [`Response::Stats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Sessions currently live in the session table.
    pub sessions_live: u64,
    /// Sessions ever opened (admitted).
    pub sessions_opened: u64,
    /// Sessions evicted by TTL expiry.
    pub sessions_evicted: u64,
    /// Sessions closed by an explicit `End` request.
    pub sessions_ended: u64,
    /// Turns served through the engine (excludes shed turns).
    pub turns: u64,
    /// Turns shed by admission control.
    pub shed_turns: u64,
    /// Request lines rejected as malformed or oversized.
    pub protocol_errors: u64,
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
}

/// A server→client message: one JSON object per line, answering the
/// request on the same position in the stream (the protocol is strictly
/// request/response per connection; there are no unsolicited messages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    Welcome {
        /// The serving agent's display name.
        server: String,
        /// The protocol revision; see [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// Answer to [`Request::Turn`] — including shed turns, which carry
    /// `shed: true` and a `degraded` kind rather than an error.
    Reply(TurnReply),
    /// Answer to [`Request::End`].
    Ended {
        /// The session that was asked to close (echoed).
        session: String,
        /// False when the session was unknown (already evicted, ended,
        /// or never opened) — the request is still not an error.
        existed: bool,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsSnapshot),
    /// A request line the server could not act on. The connection stays
    /// open; the client may continue with the next request.
    Error {
        /// Stable machine-readable code: `"malformed"` (not valid JSON
        /// for any request) or `"too_large"` (line over
        /// [`MAX_LINE_BYTES`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Encode any serializable message as one NDJSON line (newline
/// included).
pub fn encode_line<T: Serialize>(msg: &T) -> String {
    let mut line = serde_json::to_string(msg).unwrap_or_else(|_| "null".to_string());
    line.push('\n');
    line
}

/// Decode one request line. The caller is expected to have already
/// enforced [`MAX_LINE_BYTES`].
pub fn decode_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("{e:?}"))
}

/// Decode one response line (client side).
pub fn decode_response(line: &str) -> Result<Response, String> {
    serde_json::from_str(line.trim()).map_err(|e| format!("{e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let reqs = vec![
            Request::Hello { client: "test".into() },
            Request::Turn { session: "s1".into(), utterance: "what treats Fever?".into() },
            Request::End { session: "s1".into() },
            Request::Stats,
        ];
        for req in reqs {
            let line = encode_line(&req);
            assert!(line.ends_with('\n'));
            let back = decode_request(&line).expect("round trip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_round_trip() {
        let resps = vec![
            Response::Welcome { server: "Micromedex".into(), protocol: PROTOCOL_VERSION },
            Response::Reply(TurnReply {
                session: "s1".into(),
                text: "Aspirin".into(),
                kind: "fulfilment".into(),
                intent: Some("lookup".into()),
                confidence: Some(0.9),
                found_results: true,
                shed: false,
            }),
            Response::Reply(TurnReply {
                session: "s2".into(),
                text: "busy".into(),
                kind: "degraded".into(),
                intent: None,
                confidence: None,
                found_results: false,
                shed: true,
            }),
            Response::Ended { session: "s1".into(), existed: true },
            Response::Stats(StatsSnapshot::default()),
            Response::Error { code: "malformed".into(), message: "bad json".into() },
        ];
        for resp in resps {
            let back = decode_response(&encode_line(&resp)).expect("round trip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn optional_fields_tolerate_absence() {
        // A hand-written reply without intent/confidence must parse:
        // clients built against older servers rely on this.
        let line = r#"{"Reply":{"session":"s","text":"t","kind":"fallback","intent":null,"confidence":null,"found_results":false,"shed":false}}"#;
        let resp = decode_response(line).expect("nulls parse");
        match resp {
            Response::Reply(r) => {
                assert_eq!(r.intent, None);
                assert_eq!(r.confidence, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(decode_request("not json").is_err());
        assert!(decode_request(r#"{"Unknown":{}}"#).is_err());
    }
}
