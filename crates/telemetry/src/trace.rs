//! Trace reports: merged span/metric collections, text rendering, and
//! the JSONL interchange format.
//!
//! A [`TraceReport`] is what a
//! [`CollectingRecorder`](crate::CollectingRecorder) drains into. Reports
//! from per-shard recorders merge deterministically
//! ([`TraceReport::merge`]): span ids are renumbered in shard order (so
//! the merged span list equals what a single-threaded run would have
//! produced), counters add, and histograms add bucket-wise.
//!
//! The JSONL layout is one self-describing object per line:
//!
//! ```text
//! {"type":"meta","version":1,"unit":"ticks","spans":N,"counters":N,"histograms":N}
//! {"type":"span","id":0,"parent":null,"stage":"turn","dur":13}
//! {"type":"counter","name":"reply_kind","label":"Fulfilment","value":379}
//! {"type":"histogram","kind":"stage","name":"turn","label":"","count":400,"sum":5208,
//!  "min":3,"max":39,"p50":13,"p95":23,"p99":31}
//! ```
//!
//! [`validate_jsonl`] re-parses an exported trace with the crate's own
//! JSON reader and cross-checks the meta counts, span id sequence, and
//! parent references — the `repro trace` subcommand runs it after every
//! export so CI fails on a malformed trace.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::{self, Json};

/// One finished span: `id`s are dense and ordered by span *begin*;
/// `parent` points at the enclosing span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Dense index in begin order.
    pub id: u64,
    /// Enclosing span, if any.
    pub parent: Option<u64>,
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Duration in the report's [`unit`](TraceReport::unit). Start
    /// offsets are deliberately not kept: durations are invariant under
    /// replay sharding, absolute offsets are not.
    pub dur: u64,
}

/// Everything one traced run collected.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Duration unit: `"ns"` (wall clock) or `"ticks"` (deterministic).
    pub unit: String,
    /// Finished spans in begin order.
    pub spans: Vec<SpanEvent>,
    /// Counters keyed by `(name, label)`.
    pub counters: BTreeMap<(String, String), u64>,
    /// Ratio histograms (permille of `[0, 1]`) keyed by `(name, label)`.
    pub ratios: BTreeMap<(String, String), Histogram>,
    /// Per-stage span-duration histograms.
    pub stages: BTreeMap<String, Histogram>,
}

impl TraceReport {
    /// An empty report in `unit`.
    pub fn empty(unit: &str) -> Self {
        TraceReport {
            unit: unit.to_string(),
            spans: Vec::new(),
            counters: BTreeMap::new(),
            ratios: BTreeMap::new(),
            stages: BTreeMap::new(),
        }
    }

    /// Merges per-shard reports in shard order: span ids renumber with a
    /// running offset (shard order is session order, so the merged span
    /// list is identical to a single-shard run's), counters add, and
    /// histograms add bucket-wise. Panics if the units disagree.
    pub fn merge(shards: Vec<TraceReport>) -> TraceReport {
        let unit = shards.first().map(|s| s.unit.clone()).unwrap_or_else(|| "ticks".to_string());
        let mut out = TraceReport::empty(&unit);
        for shard in shards {
            assert_eq!(shard.unit, out.unit, "cannot merge traces with different units");
            let offset = out.spans.len() as u64;
            for mut span in shard.spans {
                span.id += offset;
                span.parent = span.parent.map(|p| p + offset);
                out.spans.push(span);
            }
            for (key, v) in shard.counters {
                *out.counters.entry(key).or_insert(0) += v;
            }
            for (key, h) in shard.ratios {
                out.ratios.entry(key).or_default().merge(&h);
            }
            for (stage, h) in shard.stages {
                out.stages.entry(stage).or_default().merge(&h);
            }
        }
        out
    }

    /// The per-stage latency table: count, p50/p95/p99, mean, total —
    /// stages sorted by total time, heaviest first.
    pub fn render_latency_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>8} {:>9} {:>9} {:>9} {:>10} {:>12}  [{}]\n",
            "stage", "count", "p50", "p95", "p99", "mean", "total", self.unit
        ));
        let mut rows: Vec<(&String, &Histogram)> = self.stages.iter().collect();
        rows.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then_with(|| a.0.cmp(b.0)));
        for (stage, h) in rows {
            out.push_str(&format!(
                "{:<22} {:>8} {:>9} {:>9} {:>9} {:>10.1} {:>12}\n",
                stage,
                h.count,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.mean(),
                h.sum
            ));
        }
        out
    }

    /// Counters grouped by name, labels sorted, descending by value
    /// within a name.
    pub fn render_counter_table(&self) -> String {
        let mut out = String::new();
        let mut by_name: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for ((name, label), &v) in &self.counters {
            by_name.entry(name).or_default().push((label, v));
        }
        for (name, mut rows) in by_name {
            rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            out.push_str(&format!("{name}:\n"));
            for (label, v) in rows {
                let label = if label.is_empty() { "(total)" } else { label };
                out.push_str(&format!("  {label:<40} {v:>8}\n"));
            }
        }
        out
    }

    /// Ratio metrics (e.g. per-intent classifier confidence): count,
    /// mean, and p50, rendered back in `[0, 1]` units.
    pub fn render_ratio_table(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for ((name, label), h) in &self.ratios {
            if name != last_name {
                out.push_str(&format!("{name}:\n"));
                last_name = name;
            }
            let label = if label.is_empty() { "(all)" } else { label };
            out.push_str(&format!(
                "  {:<40} {:>6}x  mean {:.3}  p50 {:.3}\n",
                label,
                h.count,
                h.mean() / 1000.0,
                h.quantile(0.5) as f64 / 1000.0
            ));
        }
        out
    }

    /// Serialises the report to JSONL (see the module docs for the
    /// layout). Output is byte-stable: equal reports produce equal text.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"version\":1,\"unit\":{},\"spans\":{},\"counters\":{},\"histograms\":{}}}\n",
            json::escape(&self.unit),
            self.spans.len(),
            self.counters.len(),
            self.ratios.len() + self.stages.len(),
        ));
        for s in &self.spans {
            let parent = s.parent.map(|p| p.to_string()).unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"stage\":{},\"dur\":{}}}\n",
                s.id,
                parent,
                json::escape(&s.stage),
                s.dur
            ));
        }
        for ((name, label), v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"label\":{},\"value\":{}}}\n",
                json::escape(name),
                json::escape(label),
                v
            ));
        }
        for (stage, h) in &self.stages {
            out.push_str(&hist_line("stage", stage, "", h));
        }
        for ((name, label), h) in &self.ratios {
            out.push_str(&hist_line("ratio", name, label, h));
        }
        out
    }
}

fn hist_line(kind: &str, name: &str, label: &str, h: &Histogram) -> String {
    format!(
        "{{\"type\":\"histogram\",\"kind\":{},\"name\":{},\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}\n",
        json::escape(kind),
        json::escape(name),
        json::escape(label),
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99),
    )
}

/// Summary counts from a validated trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of span lines.
    pub spans: usize,
    /// Number of counter lines.
    pub counters: usize,
    /// Number of histogram lines.
    pub histograms: usize,
}

/// Validates an exported JSONL trace: every line must parse as JSON, the
/// first line must be a `meta` record whose counts match the body, span
/// ids must be dense and in order with parents pointing backwards, and
/// every record must carry its required fields. Returns the body counts,
/// or a message naming the offending line.
pub fn validate_jsonl(text: &str) -> Result<TraceStats, String> {
    let mut lines = text.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("empty trace")?;
    let meta = parse_obj(meta_line, 1)?;
    if field_str(&meta, "type", 1)? != "meta" {
        return Err("line 1: first record must be \"meta\"".to_string());
    }
    if field_num(&meta, "version", 1)? != 1.0 {
        return Err("line 1: unsupported trace version".to_string());
    }
    let unit = field_str(&meta, "unit", 1)?;
    if unit != "ns" && unit != "ticks" {
        return Err(format!("line 1: unknown unit {unit:?}"));
    }

    let mut stats = TraceStats { spans: 0, counters: 0, histograms: 0 };
    for (idx, line) in lines {
        let n = idx + 1;
        let obj = parse_obj(line, n)?;
        match field_str(&obj, "type", n)? {
            "span" => {
                let id = field_num(&obj, "id", n)?;
                if id != stats.spans as f64 {
                    return Err(format!("line {n}: span id {id} out of sequence"));
                }
                match obj.get("parent") {
                    Some(Json::Null) => {}
                    Some(Json::Num(p)) if *p < id => {}
                    Some(_) => return Err(format!("line {n}: parent must be null or a prior id")),
                    None => return Err(format!("line {n}: span missing \"parent\"")),
                }
                if field_str(&obj, "stage", n)?.is_empty() {
                    return Err(format!("line {n}: empty stage name"));
                }
                field_num(&obj, "dur", n)?;
                stats.spans += 1;
            }
            "counter" => {
                field_str(&obj, "name", n)?;
                field_str(&obj, "label", n)?;
                field_num(&obj, "value", n)?;
                stats.counters += 1;
            }
            "histogram" => {
                let kind = field_str(&obj, "kind", n)?;
                if kind != "stage" && kind != "ratio" {
                    return Err(format!("line {n}: unknown histogram kind {kind:?}"));
                }
                field_str(&obj, "name", n)?;
                let count = field_num(&obj, "count", n)?;
                for key in ["sum", "min", "max", "p50", "p95", "p99"] {
                    if field_num(&obj, key, n)? < 0.0 {
                        return Err(format!("line {n}: negative {key:?}"));
                    }
                }
                if count > 0.0 && field_num(&obj, "min", n)? > field_num(&obj, "max", n)? {
                    return Err(format!("line {n}: min exceeds max"));
                }
                stats.histograms += 1;
            }
            other => return Err(format!("line {n}: unknown record type {other:?}")),
        }
    }

    for (key, actual) in
        [("spans", stats.spans), ("counters", stats.counters), ("histograms", stats.histograms)]
    {
        let declared = field_num(&meta, key, 1)?;
        if declared != actual as f64 {
            return Err(format!("meta declares {declared} {key}, body has {actual}"));
        }
    }
    Ok(stats)
}

fn parse_obj(line: &str, n: usize) -> Result<BTreeMap<String, Json>, String> {
    match json::parse(line) {
        Ok(Json::Obj(map)) => Ok(map),
        Ok(_) => Err(format!("line {n}: not a JSON object")),
        Err(e) => Err(format!("line {n}: {e}")),
    }
}

fn field_str<'a>(obj: &'a BTreeMap<String, Json>, key: &str, n: usize) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {n}: missing string field {key:?}"))
}

fn field_num(obj: &BTreeMap<String, Json>, key: &str, n: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("line {n}: missing numeric field {key:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{CollectingRecorder, Recorder};

    fn sample_report() -> TraceReport {
        let r = CollectingRecorder::ticks();
        for conf in [0.9, 0.4] {
            let turn = r.span_begin("turn");
            let c = r.span_begin("classify");
            r.span_end(c);
            r.incr("reply_kind", "Fulfilment");
            r.observe_ratio("confidence", "Uses of Drug", conf);
            r.span_end(turn);
        }
        r.take_report()
    }

    #[test]
    fn jsonl_roundtrip_validates() {
        let report = sample_report();
        let jsonl = report.to_jsonl();
        let stats = validate_jsonl(&jsonl).expect("valid trace");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.histograms, 3); // 2 stages + 1 ratio
    }

    #[test]
    fn jsonl_is_byte_stable() {
        assert_eq!(sample_report().to_jsonl(), sample_report().to_jsonl());
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let good = sample_report().to_jsonl();
        // Truncate a line mid-object.
        let broken = &good[..good.len() - 5];
        assert!(validate_jsonl(broken).is_err());
        // Flip the meta span count.
        let wrong_meta = good.replacen("\"spans\":4", "\"spans\":7", 1);
        assert!(validate_jsonl(&wrong_meta).expect_err("count").contains("declares"));
        // Out-of-sequence span id.
        let bad_id = good.replacen("\"id\":1", "\"id\":9", 1);
        assert!(validate_jsonl(&bad_id).expect_err("seq").contains("out of sequence"));
        // Unknown record type.
        let bad_type = good.replacen("\"type\":\"counter\"", "\"type\":\"mystery\"", 1);
        assert!(validate_jsonl(&bad_type).is_err());
        // Empty input.
        assert!(validate_jsonl("").is_err());
    }

    #[test]
    fn merge_renumbers_and_matches_single_run() {
        // Two shard recorders, each one turn …
        let shard = |conf: f64| {
            let r = CollectingRecorder::ticks();
            let turn = r.span_begin("turn");
            let c = r.span_begin("classify");
            r.span_end(c);
            r.incr("turns", "");
            r.observe_ratio("confidence", "", conf);
            r.span_end(turn);
            r.take_report()
        };
        let merged = TraceReport::merge(vec![shard(0.9), shard(0.4)]);
        // … must equal one recorder running both turns.
        assert_eq!(merged, sample_report_with_turns_counter());
        assert_eq!(merged.spans[2].id, 2);
        assert_eq!(merged.spans[3].parent, Some(2));
    }

    fn sample_report_with_turns_counter() -> TraceReport {
        let r = CollectingRecorder::ticks();
        for conf in [0.9, 0.4] {
            let turn = r.span_begin("turn");
            let c = r.span_begin("classify");
            r.span_end(c);
            r.incr("turns", "");
            r.observe_ratio("confidence", "", conf);
            r.span_end(turn);
        }
        r.take_report()
    }

    #[test]
    fn renderings_contain_the_data() {
        let report = sample_report();
        let latency = report.render_latency_table();
        assert!(latency.contains("turn"), "{latency}");
        assert!(latency.contains("classify"));
        let counters = report.render_counter_table();
        assert!(counters.contains("Fulfilment"));
        let ratios = report.render_ratio_table();
        assert!(ratios.contains("Uses of Drug"));
        assert!(ratios.contains("mean 0.650"), "{ratios}");
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        let m = TraceReport::merge(Vec::new());
        assert!(m.spans.is_empty());
        assert_eq!(m.unit, "ticks");
    }
}
