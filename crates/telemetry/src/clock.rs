//! Time sources for span measurement.
//!
//! Observability must serve two masters that pull in opposite directions:
//! operators want *wall-clock* latencies, while the reproduction's
//! determinism contract (DESIGN.md §7) wants traces that are bit-for-bit
//! identical across runs. The [`Clock`] trait reconciles them: a
//! [`CollectingRecorder`](crate::CollectingRecorder) measures spans
//! through whichever clock it was built with —
//!
//! * [`MonotonicClock`] reads `std::time::Instant` and reports
//!   nanoseconds — real latencies, machine-dependent;
//! * [`TickClock`] advances a counter by one *tick* per reading — span
//!   durations become a pure function of the instrumented call structure
//!   (how many recorder readings happened inside the span), so two
//!   identical replays produce identical traces on any machine at any
//!   parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source. `now` readings are `u64`s in the clock's
/// [`unit`](Clock::unit); implementations must be cheap and never go
/// backwards.
pub trait Clock: Send + Sync {
    /// The current reading. For virtual clocks a reading may itself
    /// advance time (see [`TickClock`]).
    fn now(&self) -> u64;

    /// The unit one reading step represents: `"ns"` or `"ticks"`.
    fn unit(&self) -> &'static str;
}

/// Wall-clock time in nanoseconds since the clock's creation.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is now.
    pub fn new() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }

    fn unit(&self) -> &'static str {
        "ns"
    }
}

/// A deterministic virtual clock: every reading returns the current
/// counter and advances it by one tick. Span durations measured through
/// it count the recorder readings taken inside the span — a structural
/// cost measure that is identical across runs, machines, and replay
/// parallelism (per-shard clocks all start at zero and sessions are
/// atomic, so a turn's tick footprint never depends on shard layout).
#[derive(Debug, Default)]
pub struct TickClock {
    ticks: AtomicU64,
}

impl TickClock {
    /// A tick clock starting at zero.
    pub fn new() -> Self {
        TickClock { ticks: AtomicU64::new(0) }
    }
}

impl Clock for TickClock {
    fn now(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    fn unit(&self) -> &'static str {
        "ticks"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_advances_one_per_reading() {
        let c = TickClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.now(), 1);
        assert_eq!(c.now(), 2);
        assert_eq!(c.unit(), "ticks");
    }

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert_eq!(c.unit(), "ns");
    }
}
