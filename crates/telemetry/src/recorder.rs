//! The [`Recorder`] trait and its two implementations.
//!
//! Instrumented code (the agent engine, NLQ, classifier, KB) holds a
//! `&dyn Recorder` and calls it unconditionally; the *recorder* decides
//! whether anything happens. [`NoopRecorder`] compiles every call down to
//! an immediate return, so serving with tracing off pays only a virtual
//! dispatch per instrumentation point. [`CollectingRecorder`] keeps
//! hierarchical spans (a well-nested open-span stack supplies parents),
//! labelled counters, ratio observations, and per-stage fixed-bucket
//! latency histograms, and drains into a
//! [`TraceReport`].
//!
//! A `CollectingRecorder` is internally synchronised but *logically
//! single-threaded*: the open-span stack assumes one conversation at a
//! time, so concurrent serving must use one recorder per thread (the
//! sharded traffic replay does exactly that) and merge the reports.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::clock::{Clock, MonotonicClock, TickClock};
use crate::hist::Histogram;
use crate::trace::{SpanEvent, TraceReport};

/// Opaque handle for a span opened with [`Recorder::span_begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The id handed out by disabled recorders; ending it is a no-op.
    pub const DISABLED: SpanId = SpanId(u64::MAX);
}

/// A sink for spans, counters, and observations.
///
/// All methods default to no-ops so that a disabled recorder is the
/// one-line `impl Recorder for NoopRecorder {}`.
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. Instrumentation may use it
    /// to skip *preparing* expensive attributes, never to skip the span
    /// calls themselves.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span for `stage` nested under the innermost open span.
    fn span_begin(&self, _stage: &'static str) -> SpanId {
        SpanId::DISABLED
    }

    /// Closes a span. Spans left open above `id` are closed with it
    /// (the recorder keeps traces well-nested even on early exits).
    fn span_end(&self, _id: SpanId) {}

    /// Adds `by` to the counter `name` partitioned by `label`.
    fn add(&self, _name: &'static str, _label: &str, _by: u64) {}

    /// Increments the counter `name{label}` by one.
    fn incr(&self, name: &'static str, label: &str) {
        self.add(name, label, 1);
    }

    /// Records a value in `[0, 1]` (a confidence, a rate) into the ratio
    /// histogram `name{label}`, at permille resolution.
    fn observe_ratio(&self, _name: &'static str, _label: &str, _value: f64) {}
}

/// The zero-cost recorder: every call returns immediately.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// RAII guard that ends its span on drop — the idiomatic way to cover
/// every exit path of an instrumented function.
#[must_use = "dropping the guard immediately would end the span at once"]
pub struct SpanGuard<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.rec.span_end(self.id);
    }
}

/// Opens a span on `rec` that ends when the returned guard drops.
pub fn span<'a>(rec: &'a dyn Recorder, stage: &'static str) -> SpanGuard<'a> {
    SpanGuard { rec, id: rec.span_begin(stage) }
}

/// An open span: index into the event list plus its start reading.
#[derive(Debug)]
struct OpenSpan {
    index: usize,
    start: u64,
}

#[derive(Debug, Default)]
struct Collected {
    spans: Vec<SpanEvent>,
    open: Vec<OpenSpan>,
    counters: BTreeMap<(String, String), u64>,
    ratios: BTreeMap<(String, String), Histogram>,
    stages: BTreeMap<String, Histogram>,
}

/// A recorder that collects everything, measuring spans through the
/// [`Clock`] it was built with.
pub struct CollectingRecorder {
    clock: Box<dyn Clock>,
    inner: Mutex<Collected>,
}

impl CollectingRecorder {
    /// A collecting recorder over an arbitrary clock.
    pub fn new(clock: Box<dyn Clock>) -> Self {
        CollectingRecorder { clock, inner: Mutex::new(Collected::default()) }
    }

    /// Wall-clock (nanosecond) collection — real latencies.
    pub fn wall() -> Self {
        Self::new(Box::new(MonotonicClock::new()))
    }

    /// Deterministic tick collection — structural latencies that are
    /// identical across runs and machines (see
    /// [`TickClock`]).
    pub fn ticks() -> Self {
        Self::new(Box::new(TickClock::new()))
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Collected> {
        // A poisoned recorder mutex means an instrumented panic already
        // unwound through it; the partial trace is still the best
        // diagnostic available, so keep collecting.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Drains everything collected so far into a report and resets the
    /// recorder (open spans are discarded).
    pub fn take_report(&self) -> TraceReport {
        let mut g = self.locked();
        let collected = std::mem::take(&mut *g);
        drop(g);
        TraceReport {
            unit: self.clock.unit().to_string(),
            spans: collected.spans,
            counters: collected.counters,
            ratios: collected.ratios,
            stages: collected.stages,
        }
    }
}

impl Recorder for CollectingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&self, stage: &'static str) -> SpanId {
        let start = self.clock.now();
        let mut g = self.locked();
        let index = g.spans.len();
        let parent = g.open.last().map(|o| o.index as u64);
        g.spans.push(SpanEvent { id: index as u64, parent, stage: stage.to_string(), dur: 0 });
        g.open.push(OpenSpan { index, start });
        SpanId(index as u64)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::DISABLED {
            return;
        }
        let end = self.clock.now();
        let mut g = self.locked();
        let Some(pos) = g.open.iter().rposition(|o| o.index as u64 == id.0) else {
            return; // double end — ignore
        };
        // Close the span and anything left open inside it, keeping the
        // trace well-nested.
        while g.open.len() > pos {
            let open = g.open.pop().expect("len checked above");
            let dur = end.saturating_sub(open.start);
            let stage = {
                let event = &mut g.spans[open.index];
                event.dur = dur;
                event.stage.clone()
            };
            g.stages.entry(stage).or_default().record(dur);
        }
    }

    fn add(&self, name: &'static str, label: &str, by: u64) {
        let mut g = self.locked();
        *g.counters.entry((name.to_string(), label.to_string())).or_insert(0) += by;
    }

    fn observe_ratio(&self, name: &'static str, label: &str, value: f64) {
        let permille = (value.clamp(0.0, 1.0) * 1000.0).round() as u64;
        let mut g = self.locked();
        g.ratios.entry((name.to_string(), label.to_string())).or_default().record(permille);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_inert() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        let id = r.span_begin("turn");
        assert_eq!(id, SpanId::DISABLED);
        r.span_end(id);
        r.incr("turns", "");
        r.observe_ratio("confidence", "x", 0.5);
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let r = CollectingRecorder::ticks();
        let turn = r.span_begin("turn");
        let classify = r.span_begin("classify");
        r.span_end(classify);
        let kb = r.span_begin("kb_execute");
        r.span_end(kb);
        r.span_end(turn);
        let report = r.take_report();
        assert_eq!(report.spans.len(), 3);
        assert_eq!(report.spans[0].stage, "turn");
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[1].stage, "classify");
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.spans[2].parent, Some(0));
        // Tick durations: the turn span contains all inner readings.
        assert!(report.spans[0].dur > report.spans[1].dur);
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages["turn"].count, 1);
    }

    #[test]
    fn ending_an_outer_span_closes_dangling_children() {
        let r = CollectingRecorder::ticks();
        let turn = r.span_begin("turn");
        let _leaked = r.span_begin("classify"); // never ended explicitly
        r.span_end(turn);
        let report = r.take_report();
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().all(|s| s.dur > 0), "all spans closed: {:?}", report.spans);
        // A second end of the same id is ignored.
        let r = CollectingRecorder::ticks();
        let t = r.span_begin("turn");
        r.span_end(t);
        r.span_end(t);
        assert_eq!(r.take_report().spans.len(), 1);
    }

    #[test]
    fn counters_and_ratios_accumulate() {
        let r = CollectingRecorder::ticks();
        r.incr("reply_kind", "Fulfilment");
        r.incr("reply_kind", "Fulfilment");
        r.add("reply_kind", "Fallback", 3);
        r.observe_ratio("confidence", "Uses of Drug", 0.84);
        r.observe_ratio("confidence", "Uses of Drug", 2.5); // clamped to 1.0
        let report = r.take_report();
        assert_eq!(report.counters[&("reply_kind".into(), "Fulfilment".into())], 2);
        assert_eq!(report.counters[&("reply_kind".into(), "Fallback".into())], 3);
        let h = &report.ratios[&("confidence".into(), "Uses of Drug".into())];
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1000);
        assert_eq!(h.min, 840);
    }

    #[test]
    fn tick_spans_are_deterministic() {
        let run = || {
            let r = CollectingRecorder::ticks();
            for _ in 0..5 {
                let turn = r.span_begin("turn");
                let inner = r.span_begin("classify");
                r.span_end(inner);
                r.span_end(turn);
            }
            r.take_report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn take_report_resets() {
        let r = CollectingRecorder::ticks();
        r.incr("turns", "");
        assert_eq!(r.take_report().counters.len(), 1);
        assert!(r.take_report().counters.is_empty());
    }

    #[test]
    fn guard_ends_span_on_drop() {
        let r = CollectingRecorder::ticks();
        {
            let _turn = span(&r, "turn");
            let _inner = span(&r, "classify");
        } // guards drop in reverse order: classify, then turn
        let report = r.take_report();
        assert_eq!(report.spans.len(), 2);
        assert!(report.spans.iter().all(|s| s.dur > 0));
        assert_eq!(report.spans[1].parent, Some(0));
    }
}
