//! Fixed-bucket latency histograms.
//!
//! The histogram trades exactness for a bounded, allocation-free
//! footprint: values land in log-linear buckets (every power-of-two range
//! is split into four linear sub-buckets, the HdrHistogram layout at 2
//! significant bits), so any `u64` maps to one of [`BUCKETS`] counters
//! with a relative quantile error of at most 25% (one sub-bucket width).
//! Values below 4 are exact. Merging two histograms is bucket-wise addition, which makes
//! per-shard aggregation order-insensitive — the property the sharded
//! traffic replay relies on for deterministic merged reports.

/// Sub-bucket resolution: each power-of-two range splits into
/// `1 << SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + ((msb - SUB_BITS) as usize) * SUB + sub
    }
}

/// The largest value that lands in bucket `idx` (inclusive upper bound).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        let low = (1u64 << (group + SUB_BITS)) + sub * (1u64 << group);
        // `low + width` overflows in the topmost bucket (its upper bound
        // is exactly `u64::MAX`), so add `width - 1` instead.
        low + ((1u64 << group) - 1)
    }
}

/// A fixed-bucket histogram over `u64` observations with exact count,
/// sum, min, and max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum: u64,
    /// Smallest observation (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observation (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { counts: vec![0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The mean observation, or 0.0 while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the ⌈q·count⌉-th smallest observation, clamped to
    /// the exact observed min/max. Returns 0 while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every observation of `other` into `self` (bucket-wise; the
    /// result is independent of merge order).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotonic() {
        // Every value maps to a bucket whose range contains it, and
        // bucket indexes never decrease as values grow.
        let mut last = 0usize;
        for v in [4u64, 5, 6, 7, 8, 9, 15, 16, 17, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at {v}");
            assert!(idx < BUCKETS);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "v {v} should be past bucket {}", idx - 1);
            }
            last = idx;
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        // Log-linear with 4 sub-buckets: a sub-bucket is 2^(msb-2) wide
        // and the value is at least 2^msb, so the upper bound overshoots
        // by at most a quarter of the value.
        for shift in 3..62 {
            let v = (1u64 << shift) + (1u64 << (shift - 1)) + 3;
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!((upper - v) as f64 <= v as f64 / 4.0, "v={v} upper={upper}");
        }
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((450..=600).contains(&p50), "p50 {p50}");
        assert!((900..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0) >= h.min);
        assert_eq!(h.quantile(1.0), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_equals_interleaved_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 9, 100, 5_000, 1 << 30] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 7, 70, 7_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, both);
        // Merge order does not matter.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(other_way, both);
    }
}
