//! A minimal JSON reader/writer so the trace format needs no external
//! (or vendored) dependency. The writer covers exactly what the exporter
//! emits; the reader is a small recursive-descent parser over the full
//! JSON grammar, used by the trace validator to prove that emitted lines
//! are well-formed. Numbers are held as `f64`, which is exact for every
//! count/duration below 2^53 — far beyond what a trace run produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Duplicate keys keep the last value.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("malformed number at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not emitted by the writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos - 1)),
            _ => {
                // Re-attach multi-byte UTF-8 sequences.
                let rest_start = *pos - 1;
                let len = utf8_len(c);
                let chunk = b
                    .get(rest_start..rest_start + len)
                    .and_then(|chunk| std::str::from_utf8(chunk).ok())
                    .ok_or_else(|| format!("invalid utf-8 at byte {rest_start}"))?;
                out.push_str(chunk);
                *pos = rest_start + len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xf0.. => 4,
        0xe0.. => 3,
        0xc0.. => 2,
        _ => 1,
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escaped_strings() {
        for s in ["plain", "with \"quotes\"", "tabs\tand\nnewlines", "unicode é☃", "back\\slash"]
        {
            let parsed = parse(&escape(s)).expect("parses");
            assert_eq!(parsed, Json::Str(s.to_string()), "roundtrip of {s:?}");
        }
    }

    #[test]
    fn parses_a_trace_like_object() {
        let line = r#"{"type":"span","id":3,"parent":null,"stage":"kb_execute","dur":17}"#;
        let Json::Obj(map) = parse(line).expect("parses") else {
            panic!("expected an object");
        };
        assert_eq!(map["type"].as_str(), Some("span"));
        assert_eq!(map["id"].as_num(), Some(3.0));
        assert_eq!(map["parent"], Json::Null);
        assert_eq!(map["dur"].as_num(), Some(17.0));
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let Json::Obj(map) =
            parse(r#"{"a":[1,2.5,-3,1e3,true,false,null],"b":{}}"#).expect("parses")
        else {
            panic!("expected an object");
        };
        assert_eq!(
            map["a"],
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.5),
                Json::Num(-3.0),
                Json::Num(1000.0),
                Json::Bool(true),
                Json::Bool(false),
                Json::Null,
            ])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "{", "{\"a\":}", "[1,]", "\"unterminated", "{\"a\":1} trailing", "nul", "1.2.3"]
        {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
