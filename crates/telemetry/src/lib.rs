//! # obcs-telemetry
//!
//! Zero-dependency tracing and metrics for the OBCS serving pipeline —
//! the turn-level observability layer behind `repro trace` (see
//! DESIGN.md §10 "Observability").
//!
//! The paper's §7 evaluation is built from per-turn behaviour observed
//! over seven months of production traffic: classification confidence,
//! repair rates, per-request latency. This crate makes the reproduction
//! report the same signals from inside the hot path:
//!
//! * [`Recorder`] — the instrumentation sink. [`NoopRecorder`] makes
//!   every call an immediate return (serving and benches);
//!   [`CollectingRecorder`] keeps hierarchical spans, labelled counters,
//!   and fixed-bucket histograms (replay and diagnostics).
//! * [`clock`] — span timing is pluggable: [`MonotonicClock`] measures
//!   wall nanoseconds, [`TickClock`] measures deterministic *ticks* so a
//!   traced replay is bit-for-bit reproducible on any machine at any
//!   parallelism (DESIGN.md §7's determinism contract, extended to
//!   traces).
//! * [`hist`] — log-linear fixed-bucket [`Histogram`]s with p50/p95/p99
//!   quantiles; merging is bucket-wise addition, so per-shard aggregation
//!   is order-insensitive.
//! * [`trace`] — [`TraceReport`] (drained from a recorder, merged across
//!   shards), text tables, JSONL export, and a self-contained
//!   [`validate_jsonl`] checker that CI runs against every exported
//!   trace.
//!
//! ## Example
//!
//! ```
//! use obcs_telemetry::{span, CollectingRecorder, Recorder};
//!
//! let rec = CollectingRecorder::ticks();
//! {
//!     let _turn = span(&rec, "turn");
//!     let _classify = span(&rec, "classify");
//!     rec.observe_ratio("confidence", "Uses of Drug", 0.84);
//! } // guards close the spans
//! let report = rec.take_report();
//! assert_eq!(report.spans.len(), 2);
//! assert_eq!(report.spans[1].parent, Some(0));
//! obcs_telemetry::validate_jsonl(&report.to_jsonl()).expect("well-formed trace");
//! ```

pub mod clock;
pub mod hist;
mod json;
pub mod recorder;
pub mod trace;

pub use clock::{Clock, MonotonicClock, TickClock};
pub use hist::Histogram;
pub use recorder::{span, CollectingRecorder, NoopRecorder, Recorder, SpanGuard, SpanId};
pub use trace::{validate_jsonl, SpanEvent, TraceReport, TraceStats};

/// The shared stage vocabulary: every instrumented crate names its spans
/// from here so traces aggregate under stable keys.
pub mod stage {
    /// One full `respond` turn (parent of everything below).
    pub const TURN: &str = "turn";
    /// Entity annotation over the utterance (`obcs-nlq` lexicon).
    pub const ANNOTATE: &str = "annotate";
    /// Intent classification (`obcs-classifier` predict).
    pub const CLASSIFY: &str = "classify";
    /// Dialogue-tree evaluation (`obcs-dialogue`).
    pub const DIALOGUE_EVAL: &str = "dialogue_eval";
    /// NL→SQL interpretation for dynamic queries (`obcs-nlq`).
    pub const NLQ_INTERPRET: &str = "nlq_interpret";
    /// Structured-query-template instantiation.
    pub const TEMPLATE_INSTANTIATE: &str = "template_instantiate";
    /// SQL execution against the knowledge base (`obcs-kb`).
    pub const KB_EXECUTE: &str = "kb_execute";
    /// Response verbalisation (`obcs-agent` NLG).
    pub const NLG: &str = "nlg";
    /// One served socket turn (`obcs-serve`): session lookup/admission,
    /// the engine [`TURN`] nested inside, and response encoding.
    pub const SERVE_TURN: &str = "serve_turn";
}

/// The shared counter/metric vocabulary.
pub mod metric {
    /// Counter: turns served (label empty).
    pub const TURNS: &str = "turns";
    /// Counter: replies by reply-kind label (`fulfilment`, `fallback`,
    /// `elicitation`, …).
    pub const REPLY_KIND: &str = "reply_kind";
    /// Counter: accepted domain intents by intent-name label.
    pub const INTENT: &str = "intent";
    /// Counter: repair turns by kind label (`fallback`,
    /// `disambiguation`, `elicitation`, `low_confidence`).
    pub const REPAIR: &str = "repair";
    /// Ratio histogram: classifier confidence by intent-name label.
    pub const CONFIDENCE: &str = "confidence";
    /// Counter: KB queries executed (label empty).
    pub const KB_QUERIES: &str = "kb_queries";
    /// Counter: KB rows returned (label empty).
    pub const KB_ROWS: &str = "kb_rows";
    /// Counter: injected faults by fault-kind label (`kb_failure`,
    /// `kb_timeout`, `classifier_collapse`, `annotation_dropout`).
    pub const FAULTS: &str = "fault";
    /// Counter: retry attempts by pipeline-stage label.
    pub const RETRIES: &str = "retry";
    /// Counter: injected faults cleared by retrying, by fault-kind label.
    pub const FAULT_RECOVERED: &str = "fault_recovered";
    /// Counter: degraded (apology/fallback) replies by cause label
    /// (`kb`, `classifier`, `annotator`, `nlq`, `engine`).
    pub const DEGRADED: &str = "degraded";
    /// Counter: non-injected pipeline errors swallowed on the historical
    /// template-skip path, by cause label.
    pub const PIPELINE_ERRORS: &str = "pipeline_error";
    /// Counter: cache lookups answered from a cache, by layer label
    /// (`kb_plan`, `kb_result`, `nlu_classify`, `nlu_recognize`).
    ///
    /// Cache counters are published *on demand* (end of a replay, stats
    /// endpoint) via `obcs_cache::record_stats`, never per turn: the hit
    /// pattern depends on shard layout, so per-turn recording would break
    /// the trace determinism contract (DESIGN.md §12).
    pub const CACHE_HITS: &str = "cache_hit";
    /// Counter: cache lookups that found nothing usable, by layer label.
    pub const CACHE_MISSES: &str = "cache_miss";
    /// Counter: cache entries evicted to stay within budget, by layer
    /// label.
    pub const CACHE_EVICTIONS: &str = "cache_evict";
    /// Counter: cache entries dropped on a generation mismatch, by layer
    /// label.
    pub const CACHE_INVALIDATIONS: &str = "cache_invalidate";
    /// Counter: turns shed by serving admission control before reaching
    /// the engine, by cause label (`capacity`).
    pub const SHED: &str = "shed";
    /// Counter: sessions evicted from the serving session table, by cause
    /// label (`ttl`, `end`).
    pub const SESSION_EVICTIONS: &str = "session_evict";
}
