//! Additional dialogue-tree flow tests: multi-topic context reuse, the
//! proposal queue exhausting, and glossary-driven definition repair edge
//! cases.

use obcs_core::testutil::fig2_fixture;
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
use obcs_dialogue::tree::TurnInput;
use obcs_dialogue::{AgentAction, ConversationContext, DialogueTree};
use obcs_ontology::ConceptId;

fn world() -> (obcs_ontology::Ontology, obcs_core::ConversationSpace, DialogueTree) {
    let (onto, kb, mapping) = fig2_fixture();
    let drug = onto.concept_id("Drug").expect("Drug concept");
    let sme = SmeFeedback::new().entity_only(drug);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
    let tree = DialogueTree::from_space(&space, &onto, "Tester");
    (onto, space, tree)
}

fn turn(
    intent: Option<obcs_core::IntentId>,
    utterance: &str,
    entities: &[(ConceptId, &str)],
) -> TurnInput {
    TurnInput {
        utterance: utterance.to_string(),
        intent,
        entities: entities.iter().map(|&(c, v)| (c, v.to_string())).collect(),
    }
}

#[test]
fn proposal_queue_exhausts_then_resets() {
    let (onto, space, tree) = world();
    let drug = onto.concept_id("Drug").unwrap();
    let mut ctx = ConversationContext::new();
    let proposal_count = tree
        .proposals
        .iter()
        .find(|(c, _)| *c == drug)
        .map(|(_, v)| v.len())
        .expect("drug has proposals");
    assert!(proposal_count >= 3, "fixture offers several lookups");

    let mut seen = Vec::new();
    for _ in 0..proposal_count {
        let action = tree.evaluate(&mut ctx, &turn(None, "aspirin", &[(drug, "Aspirin")]));
        match action {
            AgentAction::Propose { intent, .. } => {
                assert!(!seen.contains(&intent), "proposals never repeat");
                seen.push(intent);
            }
            other => panic!("expected Propose, got {other:?}"),
        }
        let action = tree.evaluate(&mut ctx, &turn(None, "no", &[]));
        assert!(matches!(action, AgentAction::Say { .. }));
    }
    // All proposals rejected → the agent asks for a new formulation and
    // clears the rejection list so a later mention starts over.
    let action = tree.evaluate(&mut ctx, &turn(None, "aspirin", &[(drug, "Aspirin")]));
    match action {
        AgentAction::Say { text } => assert!(text.contains("modify"), "{text}"),
        other => panic!("expected Say, got {other:?}"),
    }
    let action = tree.evaluate(&mut ctx, &turn(None, "aspirin", &[(drug, "Aspirin")]));
    assert!(
        matches!(action, AgentAction::Propose { intent, .. } if intent == seen[0]),
        "queue restarts from the top"
    );
    let _ = space;
}

#[test]
fn switching_topics_keeps_compatible_entities() {
    let (onto, space, tree) = world();
    let drug = onto.concept_id("Drug").unwrap();
    let prec = space.intent_by_name("Precautions of Drug").unwrap();
    let risks = space.intent_by_name("Risks of Drug").unwrap();
    let mut ctx = ConversationContext::new();
    let a1 = tree
        .evaluate(&mut ctx, &turn(Some(prec.id), "precautions for aspirin", &[(drug, "Aspirin")]));
    assert_eq!(a1, AgentAction::Fulfill { intent: prec.id });
    // New intent, no entity mentioned: Drug carries over, fulfils directly.
    let a2 = tree.evaluate(&mut ctx, &turn(Some(risks.id), "and the risks?", &[]));
    assert_eq!(a2, AgentAction::Fulfill { intent: risks.id });
    assert_eq!(ctx.entity(drug), Some("Aspirin"));
}

#[test]
fn affirm_without_pending_proposal_is_harmless() {
    let (_, _, tree) = world();
    let mut ctx = ConversationContext::new();
    let action = tree.evaluate(&mut ctx, &turn(None, "yes", &[]));
    match action {
        AgentAction::Say { text } => assert!(!text.is_empty()),
        other => panic!("expected Say, got {other:?}"),
    }
}

#[test]
fn definition_of_unknown_term_falls_through_to_domain() {
    let (onto, space, tree) = world();
    let drug = onto.concept_id("Drug").unwrap();
    let mut ctx = ConversationContext::new();
    // "what does Aspirin mean" captures a term with no glossary entry; the
    // engine treats it as domain input (here: an entity mention →
    // proposal).
    let action =
        tree.evaluate(&mut ctx, &turn(None, "what does Aspirin mean", &[(drug, "Aspirin")]));
    assert!(
        matches!(action, AgentAction::Propose { .. }),
        "unknown term falls through: {action:?}"
    );
    let _ = space;
}

#[test]
fn paraphrase_with_no_history_is_graceful() {
    let (_, _, tree) = world();
    let mut ctx = ConversationContext::new();
    let action = tree.evaluate(&mut ctx, &turn(None, "what did you say", &[]));
    match action {
        AgentAction::Say { text } => assert!(text.contains("haven't said"), "{text}"),
        other => panic!("expected Say, got {other:?}"),
    }
}

#[test]
fn elicitation_prompt_comes_from_logic_table() {
    let (onto, space, mut tree) = world();
    let drug = onto.concept_id("Drug").unwrap();
    let prec = space.intent_by_name("Precautions of Drug").unwrap();
    tree.logic.set_elicitation(prec.id, drug, "Which medication, exactly?");
    let mut ctx = ConversationContext::new();
    let action = tree.evaluate(&mut ctx, &turn(Some(prec.id), "precautions", &[]));
    match action {
        AgentAction::Elicit { prompt, .. } => {
            assert_eq!(prompt, "Which medication, exactly?");
        }
        other => panic!("expected Elicit, got {other:?}"),
    }
}
