//! Coverage tests for the conversation-management catalog: every pattern
//! must be reachable by at least one trigger, triggers must be
//! conflict-free, and the §6.3 management phrasings must resolve.

use obcs_dialogue::management::{normalize, ManagementAction, ManagementCatalog};
use obcs_dialogue::{ManagementPattern, PatternLevel};

#[test]
fn every_pattern_is_reachable_by_its_own_triggers() {
    let c = ManagementCatalog::standard();
    for p in &c.patterns {
        for t in &p.triggers {
            // Wildcards stand in for some concrete term.
            let probe = t.replace('*', "something");
            let hit = c
                .detect(&probe)
                .unwrap_or_else(|| panic!("trigger `{t}` of `{}` matched nothing", p.id));
            // The *first* matching pattern wins; it must at least be a
            // pattern with the same action, or the pattern itself.
            assert!(
                hit.id == p.id || hit.action == p.action || t.contains('*'),
                "trigger `{t}` of `{}` was captured by `{}`",
                p.id,
                hit.id
            );
        }
    }
}

#[test]
fn trigger_phrases_are_normalised_and_unique_per_action() {
    let c = ManagementCatalog::standard();
    for p in &c.patterns {
        for t in &p.triggers {
            // Each non-wildcard fragment must already be normalised (so
            // matching against normalised utterances can succeed).
            for fragment in t.split('*') {
                let f = fragment.trim();
                assert_eq!(f, normalize(f), "trigger `{t}` of `{}` is not normalised", p.id);
            }
        }
    }
    // No exact trigger appears under two different actions.
    let mut seen: Vec<(&str, ManagementAction)> = Vec::new();
    for p in &c.patterns {
        for t in &p.triggers {
            if let Some((prev, action)) = seen.iter().find(|(s, _)| s == t) {
                assert_eq!(*action, p.action, "trigger `{prev}` is claimed by two actions");
            }
            seen.push((t, p.action));
        }
    }
}

#[test]
fn paper_transcript_phrasings_resolve() {
    let c = ManagementCatalog::standard();
    let cases = [
        ("okay", ManagementAction::Acknowledgement),
        ("thanks", ManagementAction::Appreciation),
        ("never mind", ManagementAction::Abort),
        ("What did you say?", ManagementAction::RepeatRequest),
        ("what do you mean by effective?", ManagementAction::DefinitionRequest),
        ("no", ManagementAction::Deny),
        ("yes", ManagementAction::Affirm),
        ("goodbye", ManagementAction::Closing),
        ("hello", ManagementAction::Greeting),
        ("help", ManagementAction::HelpRequest),
    ];
    for (utterance, action) in cases {
        let p = c.detect(utterance).unwrap_or_else(|| panic!("`{utterance}` unmatched"));
        assert_eq!(p.action, action, "`{utterance}`");
    }
}

#[test]
fn levels_partition_a_and_b_pattern_ids() {
    let c = ManagementCatalog::standard();
    for p in &c.patterns {
        match p.level {
            PatternLevel::Conversation => assert!(p.id.starts_with('A'), "{}", p.id),
            PatternLevel::Sequence => assert!(p.id.starts_with('B'), "{}", p.id),
        }
    }
}

#[test]
fn catalog_is_extensible_without_breaking_detection() {
    let mut c = ManagementCatalog::standard();
    let before = c.patterns.len();
    c.add(ManagementPattern {
        id: "B9.0".into(),
        level: PatternLevel::Sequence,
        name: "Custom".into(),
        action: ManagementAction::Chitchat,
        triggers: vec!["tell me a story".into()],
        response: "No stories, only drug facts.".into(),
    });
    assert_eq!(c.patterns.len(), before + 1);
    assert_eq!(c.detect("tell me a story").unwrap().id, "B9.0");
    // Existing detection unchanged.
    assert_eq!(c.detect("thanks").unwrap().action, ManagementAction::Appreciation);
}

#[test]
fn long_domain_utterances_never_match_management() {
    let c = ManagementCatalog::standard();
    for u in [
        "show me drugs that treat psoriasis in children",
        "what is the dosage for tazarotene in plaque psoriasis",
        "is heparin compatible with normal saline in a y-site",
        "thanks to this drug my fever is gone, what was its dose again",
    ] {
        assert!(c.detect(u).is_none(), "`{u}` must reach the domain pipeline");
    }
}
