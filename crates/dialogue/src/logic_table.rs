//! The Dialogue Logic Table (paper §5.2 step 1, Tables 3–4): the
//! declarative specification from which the dialogue tree is generated.

use obcs_core::{ConversationSpace, IntentId};
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

/// One required entity of an intent, with its elicitation prompt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequiredEntity {
    pub concept: ConceptId,
    /// What the agent says to elicit this entity ("For which drug?").
    pub elicitation: String,
}

/// One row of the dialogue logic table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicRow {
    pub intent: IntentId,
    pub intent_name: String,
    /// One representative training example (helps designers read the
    /// table; Table 3 column 2).
    pub example: String,
    pub required: Vec<RequiredEntity>,
    pub optional: Vec<ConceptId>,
    /// Agent response template with `{entities}` / `{results}` markers.
    pub response_template: String,
}

/// The dialogue logic table of a conversation space.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DialogueLogicTable {
    pub rows: Vec<LogicRow>,
}

impl DialogueLogicTable {
    /// Generates the table from a bootstrapped conversation space (the
    /// automated path of §5.2 step 2). Elicitation prompts are derived
    /// from the concept names ("For which drug?").
    pub fn from_space(space: &ConversationSpace, onto: &Ontology) -> Self {
        let rows = space
            .intents
            .iter()
            .map(|intent| {
                let example = space
                    .training
                    .iter()
                    .find(|e| e.intent == intent.id)
                    .map(|e| e.text.clone())
                    .unwrap_or_default();
                LogicRow {
                    intent: intent.id,
                    intent_name: intent.name.clone(),
                    example,
                    required: intent
                        .required_entities
                        .iter()
                        .map(|&c| RequiredEntity {
                            concept: c,
                            elicitation: default_elicitation(onto, c),
                        })
                        .collect(),
                    optional: intent.optional_entities.clone(),
                    response_template: intent.response_template.clone(),
                }
            })
            .collect();
        DialogueLogicTable { rows }
    }

    pub fn row(&self, intent: IntentId) -> Option<&LogicRow> {
        self.rows.iter().find(|r| r.intent == intent)
    }

    /// Overrides the elicitation prompt of one intent's required entity
    /// (designer customisation, e.g. "Adult or pediatric?").
    pub fn set_elicitation(&mut self, intent: IntentId, concept: ConceptId, prompt: &str) {
        if let Some(row) = self.rows.iter_mut().find(|r| r.intent == intent) {
            if let Some(req) = row.required.iter_mut().find(|r| r.concept == concept) {
                req.elicitation = prompt.to_string();
            }
        }
    }

    /// Marks a concept as an optional entity for an intent.
    pub fn add_optional(&mut self, intent: IntentId, concept: ConceptId) {
        if let Some(row) = self.rows.iter_mut().find(|r| r.intent == intent) {
            if !row.optional.contains(&concept) {
                row.optional.push(concept);
            }
        }
    }

    /// Renders the table as aligned text (the repro harness prints this for
    /// Tables 3–4).
    pub fn render(&self, onto: &Ontology) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<38} | {:<44} | {:<22} | {:<28} | {}\n",
            "Intent Name",
            "Intent Example",
            "Required Entities",
            "Agent Elicitation",
            "Agent Response"
        ));
        for row in &self.rows {
            let required: Vec<&str> =
                row.required.iter().map(|r| onto.concept_name(r.concept)).collect();
            let elicit: Vec<&str> = row.required.iter().map(|r| r.elicitation.as_str()).collect();
            out.push_str(&format!(
                "{:<38} | {:<44} | {:<22} | {:<28} | {}\n",
                truncate(&row.intent_name, 38),
                truncate(&row.example, 44),
                truncate(&required.join(", "), 22),
                truncate(&elicit.join(" / "), 28),
                truncate(&row.response_template.replace('\n', " "), 44),
            ));
        }
        out
    }
}

/// "For which drug?" from a concept named `Drug`.
pub fn default_elicitation(onto: &Ontology, concept: ConceptId) -> String {
    let name = obcs_nlq::annotate::split_camel(onto.concept_name(concept)).to_lowercase();
    format!("For which {name}?")
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_core::testutil::fig2_fixture;
    use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};

    fn table() -> (Ontology, ConversationSpace, DialogueLogicTable) {
        let (onto, kb, mapping) = fig2_fixture();
        let space =
            bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
        let table = DialogueLogicTable::from_space(&space, &onto);
        (onto, space, table)
    }

    #[test]
    fn one_row_per_intent_with_examples() {
        let (_, space, table) = table();
        assert_eq!(table.rows.len(), space.intents.len());
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let row = table.row(prec.id).unwrap();
        assert!(!row.example.is_empty(), "example from training data");
        assert_eq!(row.required.len(), 1);
        assert_eq!(row.required[0].elicitation, "For which drug?");
    }

    #[test]
    fn elicitation_override() {
        let (onto, space, mut table) = table();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let drug = onto.concept_id("Drug").unwrap();
        table.set_elicitation(prec.id, drug, "Which medication do you mean?");
        assert_eq!(
            table.row(prec.id).unwrap().required[0].elicitation,
            "Which medication do you mean?"
        );
    }

    #[test]
    fn optional_entities_addable() {
        let (onto, space, mut table) = table();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let ind = onto.concept_id("Indication").unwrap();
        table.add_optional(prec.id, ind);
        table.add_optional(prec.id, ind); // idempotent
        assert_eq!(table.row(prec.id).unwrap().optional, vec![ind]);
    }

    #[test]
    fn render_contains_headers_and_rows() {
        let (onto, _, table) = table();
        let txt = table.render(&onto);
        assert!(txt.contains("Intent Name"));
        assert!(txt.contains("Precautions of Drug"));
        assert!(txt.contains("For which drug?"));
    }

    #[test]
    fn multi_hop_elicitation_splits_camel_case() {
        let (onto, _, _) = table();
        let dfi = onto.concept_id("DrugFoodInteraction").unwrap();
        assert_eq!(default_elicitation(&onto, dfi), "For which drug food interaction?");
    }
}
