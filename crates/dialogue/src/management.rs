//! Conversation-management patterns (paper §5.2 step 3).
//!
//! These are the domain-independent interaction patterns of the Natural
//! Conversation Framework \[24\] that the dialogue tree is augmented with:
//! sequence-level patterns (repairs, acknowledgements, aborts — the "B"
//! patterns, e.g. *B2.5.0 Definition Request Repair*) and
//! conversation-level patterns (openings, closings, capability checks —
//! the "A" patterns).
//!
//! **Substitution note (DESIGN.md):** the paper reuses the 32 + 39 generic
//! patterns of Moore & Arar's NCF template, which is published as a book,
//! not as data. This module ships a catalog implementing the pattern
//! *mechanism* faithfully — ids, levels, trigger phrases, response
//! templates, and the repair semantics the paper demonstrates (definition
//! request, repeat request, appreciation, closing, abort) — with a
//! representative catalog that covers every pattern family the paper's
//! transcripts exercise. The catalog is data-driven and extensible.

use serde::{Deserialize, Serialize};

/// Whether a pattern manages a single sequence or the whole conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternLevel {
    /// "B" patterns: repairs and acknowledgements within a sequence.
    Sequence,
    /// "A" patterns: openings, closings, capability management.
    Conversation,
}

/// The dialogue action a management pattern triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ManagementAction {
    /// User greets; agent greets back and offers help.
    Greeting,
    /// User asks what the agent can do.
    CapabilityCheck,
    /// User asks for help / instructions.
    HelpRequest,
    /// User thanks the agent; agent receipts and checks for a next topic.
    Appreciation,
    /// Positive acknowledgement ("okay", "got it").
    Acknowledgement,
    /// User affirms a proposal ("yes").
    Affirm,
    /// User declines / has no further topic ("no").
    Deny,
    /// User asks the agent to repeat its last utterance (B2.1 family).
    RepeatRequest,
    /// User asks what a term means (B2.5.0 Definition Request Repair).
    DefinitionRequest,
    /// User asks the agent to rephrase (paraphrase repair).
    ParaphraseRequest,
    /// User aborts the current sequence ("never mind").
    Abort,
    /// User closes the conversation ("goodbye").
    Closing,
    /// Social niceties the agent deflects politely ("how are you").
    Chitchat,
    /// User compliments the agent.
    Praise,
    /// User complains / insults; agent de-escalates.
    Complaint,
}

/// One management pattern of the catalog.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagementPattern {
    /// NCF-style pattern id, e.g. `B2.5.0`.
    pub id: String,
    pub level: PatternLevel,
    pub name: String,
    pub action: ManagementAction,
    /// Normalised trigger phrases. A phrase ending in `*` matches by
    /// prefix; otherwise the whole (normalised) utterance must match.
    pub triggers: Vec<String>,
    /// Agent response template; `{repeat}`, `{definition}`, `{term}` are
    /// substituted by the engine.
    pub response: String,
}

impl ManagementPattern {
    fn new(
        id: &str,
        level: PatternLevel,
        name: &str,
        action: ManagementAction,
        triggers: &[&str],
        response: &str,
    ) -> Self {
        ManagementPattern {
            id: id.to_string(),
            level,
            name: name.to_string(),
            action,
            triggers: triggers.iter().map(|s| s.to_string()).collect(),
            response: response.to_string(),
        }
    }

    /// Whether a normalised utterance triggers this pattern. A `*` in a
    /// trigger matches any non-empty span: `what do you mean by *` is a
    /// prefix pattern, `what does * mean` an infix pattern.
    pub fn matches(&self, normalized: &str) -> bool {
        self.triggers.iter().any(|t| wildcard_capture(t, normalized).is_some())
    }
}

/// The catalog of conversation-management patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManagementCatalog {
    pub patterns: Vec<ManagementPattern>,
}

impl Default for ManagementCatalog {
    fn default() -> Self {
        ManagementCatalog::standard()
    }
}

impl ManagementCatalog {
    /// The built-in catalog.
    pub fn standard() -> Self {
        use ManagementAction::*;
        use PatternLevel::*;
        let p = ManagementPattern::new;
        ManagementCatalog {
            patterns: vec![
                // --- Conversation-level (A) patterns ---
                p("A1.0", Conversation, "Opening Greeting", Greeting,
                  &["hello", "hello there", "hi", "hi there", "hey", "hey there", "good morning", "good afternoon", "good evening", "good day", "greetings"],
                  "Hello. This is {agent}. If this is your first time, just ask for help. How can I help you today?"),
                p("A1.1", Conversation, "Capability Check", CapabilityCheck,
                  &["what can you do", "what do you do", "what can i ask", "what can i ask you", "what are you capable of", "capabilities"],
                  "I can answer questions about {capabilities}. Try asking, for example: {example}"),
                p("A1.2", Conversation, "Help Request", HelpRequest,
                  &["help", "i need help", "help me", "help me out", "how do i use this", "how does this work", "how do i search", "instructions", "what should i type"],
                  "You can ask me about {capabilities}. For example: {example}"),
                p("A2.0", Conversation, "Closing", Closing,
                  &["goodbye", "bye", "bye bye", "bye now", "goodbye now", "see you", "see you later", "see ya", "quit", "exit", "that is all", "thats all", "thats all for today", "im done", "i am done"],
                  "Thank you for using {agent}. Goodbye."),
                p("A2.1", Conversation, "Identity Check", Chitchat,
                  &["who are you", "what are you", "are you a robot", "are you human", "whats your name", "what is your name"],
                  "I am {agent}, a conversational assistant for this knowledge base."),
                p("A2.2", Conversation, "Well-being Chitchat", Chitchat,
                  &["how are you", "hows it going", "how are you doing", "whats up"],
                  "I'm doing well, thank you. How can I help you today?"),
                p("A2.3", Conversation, "Praise Receipt", Praise,
                  &["good job", "well done", "you are great", "youre great", "awesome", "great", "nice", "perfect", "excellent"],
                  "Thank you! Anything else I can help with?"),
                p("A2.4", Conversation, "Complaint Receipt", Complaint,
                  &["you are useless", "youre useless", "this is wrong", "that is wrong", "you are not helping", "terrible", "this is terrible", "bad bot"],
                  "I'm sorry I couldn't help with that. Could you rephrase your question, or ask for help to see what I can do?"),
                // --- Sequence-level (B) patterns ---
                p("B1.0", Sequence, "Acknowledgement", Acknowledgement,
                  &["ok", "okay", "got it", "i see", "alright", "sure", "fine", "cool", "uh huh"],
                  "Anything else?"),
                p("B1.1", Sequence, "Appreciation", Appreciation,
                  &["thanks", "thank you", "thanks a lot", "thank you very much", "thx", "ty", "much appreciated"],
                  "You're welcome! Anything else?"),
                p("B1.2", Sequence, "Affirmation", Affirm,
                  &["yes", "yeah", "yep", "yes please", "sure thing", "correct", "right", "affirmative", "y"],
                  "{affirm}"),
                p("B1.3", Sequence, "Disconfirmation", Deny,
                  &["no", "nope", "no thanks", "no thank you", "nah", "negative", "n"],
                  "OK. Please modify your search."),
                p("B2.1.0", Sequence, "Repeat Request Repair", RepeatRequest,
                  &["what did you say", "can you repeat that", "repeat that", "say that again", "pardon", "sorry what", "come again", "repeat please"],
                  "I said: {repeat}"),
                p("B2.5.0", Sequence, "Definition Request Repair", DefinitionRequest,
                  &["what do you mean by *", "what does * mean", "define *", "definition of *", "meaning of *"],
                  "Oh. {term} is {definition}"),
                p("B2.6.0", Sequence, "Paraphrase Request Repair", ParaphraseRequest,
                  &["what do you mean", "can you rephrase", "rephrase that", "i dont understand", "i do not understand", "can you say that differently"],
                  "Let me put it differently: {repeat}"),
                p("B3.0", Sequence, "Sequence Abort", Abort,
                  &["never mind", "nevermind", "forget it", "cancel", "cancel that", "stop", "skip it", "drop it"],
                  "OK, never mind. What else can I help you with?"),
                // --- Additional NCF-style patterns (the paper's template
                // carries 32 sequence-level + 39 conversation-level
                // patterns; these extend coverage of the common families).
                p("A1.3", Conversation, "Opening With Request For Agent", Greeting,
                  &["is anyone there", "are you there", "anybody home", "you there"],
                  "I'm here. This is {agent}. How can I help you?"),
                p("A1.4", Conversation, "Return Greeting", Greeting,
                  &["hello again", "hi again", "im back", "i am back", "back again"],
                  "Welcome back. What can I help you with?"),
                p("A2.5", Conversation, "Origin Check", Chitchat,
                  &["where are you from", "who made you", "who built you", "who created you"],
                  "I was assembled from a domain ontology and its knowledge base."),
                p("A2.6", Conversation, "Age Check", Chitchat,
                  &["how old are you", "when were you born", "whats your age"],
                  "I'm as old as my last knowledge-base refresh."),
                p("A2.7", Conversation, "Feelings Check", Chitchat,
                  &["do you have feelings", "are you alive", "are you sentient", "do you sleep"],
                  "I only have answers, not feelings. What would you like to know?"),
                p("A3.0", Conversation, "Language Check", CapabilityCheck,
                  &["do you speak english", "what languages do you speak", "habla espanol", "parlez vous francais"],
                  "I currently understand English questions about this knowledge base."),
                p("A3.1", Conversation, "Scope Check", CapabilityCheck,
                  &["can you call a doctor", "can you prescribe", "can you order medication", "can you diagnose me"],
                  "I can only answer reference questions about {capabilities} — I can't take clinical actions."),
                p("A4.0", Conversation, "Closing Appreciation", Closing,
                  &["thanks goodbye", "thanks bye", "thank you goodbye", "thank you bye", "ok bye", "okay bye"],
                  "You're welcome. Thank you for using {agent}. Goodbye."),
                p("B1.4", Sequence, "Enthusiastic Acknowledgement", Acknowledgement,
                  &["wonderful", "fantastic", "amazing", "brilliant", "sweet"],
                  "Glad that helped. Anything else?"),
                p("B1.5", Sequence, "Continuer", Acknowledgement,
                  &["go on", "continue", "and then", "tell me more", "more"],
                  "That's the full answer I have. You can ask about a related topic."),
                p("B2.2.0", Sequence, "Partial Repeat Request", RepeatRequest,
                  &["the last part again", "repeat the last part", "what was the last part", "say the end again"],
                  "Here it is again: {repeat}"),
                p("B2.3.0", Sequence, "Hearing Check", RepeatRequest,
                  &["did you say something", "sorry i missed that", "i didnt catch that", "i did not catch that"],
                  "I said: {repeat}"),
                p("B2.7.0", Sequence, "Spelling Request", DefinitionRequest,
                  &["how do you spell *", "spell *", "spelling of *"],
                  "{term} is spelled exactly as shown: {term}."),
                p("B4.0", Sequence, "Hold Request", Acknowledgement,
                  &["hold on", "one moment", "wait", "give me a second", "just a minute", "hang on"],
                  "Take your time. I'll be here."),
                p("B5.0", Sequence, "Correction Marker", Abort,
                  &["thats wrong", "that is not right", "thats not what i asked", "that is not what i asked", "not what i meant"],
                  "Sorry about that. Could you rephrase your question?"),
                p("B6.0", Sequence, "Completion Check", CapabilityCheck,
                  &["is that all", "is that everything", "anything else i should know"],
                  "That's everything recorded for this request. You can ask about {capabilities}."),
            ],
        }
    }

    /// Finds the first pattern matching a raw utterance, if any.
    pub fn detect(&self, utterance: &str) -> Option<&ManagementPattern> {
        let normalized = normalize(utterance);
        if normalized.is_empty() {
            return None;
        }
        self.patterns.iter().find(|p| p.matches(&normalized))
    }

    /// Patterns at a given level.
    pub fn at_level(&self, level: PatternLevel) -> impl Iterator<Item = &ManagementPattern> {
        self.patterns.iter().filter(move |p| p.level == level)
    }

    /// Adds a custom pattern (designer extension).
    pub fn add(&mut self, pattern: ManagementPattern) {
        self.patterns.push(pattern);
    }

    /// Extracts the `*`-captured term from a definition-style utterance,
    /// e.g. "what do you mean by effective" → `effective`, "what does
    /// contraindication mean" → `contraindication`.
    pub fn captured_term(pattern: &ManagementPattern, utterance: &str) -> Option<String> {
        let normalized = normalize(utterance);
        pattern
            .triggers
            .iter()
            .filter(|t| t.contains('*'))
            .find_map(|t| wildcard_capture(t, &normalized).flatten())
    }
}

/// Matches a trigger (optionally containing one `*` wildcard) against a
/// normalised utterance. Returns `Some(capture)` on a match — `capture` is
/// `None` for exact triggers and `Some(span)` for wildcard triggers. The
/// wildcard span must be non-empty.
fn wildcard_capture(trigger: &str, normalized: &str) -> Option<Option<String>> {
    match trigger.split_once('*') {
        None => (normalized == trigger).then_some(None),
        Some((prefix, suffix)) => {
            let prefix = prefix.trim_end();
            let suffix = suffix.trim_start();
            let rest = normalized.strip_prefix(prefix)?;
            let middle = rest.strip_suffix(suffix)?;
            let middle = middle.trim();
            (!middle.is_empty()).then(|| Some(middle.to_string()))
        }
    }
}

/// Lowercase, alphanumeric words joined by single spaces.
pub fn normalize(utterance: &str) -> String {
    let mut out = String::with_capacity(utterance.len());
    let mut last_space = true;
    for ch in utterance.chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
            last_space = false;
        } else if !last_space {
            out.push(' ');
            last_space = true;
        }
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_both_levels() {
        let c = ManagementCatalog::standard();
        assert!(c.at_level(PatternLevel::Conversation).count() >= 6);
        assert!(c.at_level(PatternLevel::Sequence).count() >= 6);
    }

    #[test]
    fn greeting_detection() {
        let c = ManagementCatalog::standard();
        let p = c.detect("Hello!").unwrap();
        assert_eq!(p.action, ManagementAction::Greeting);
        assert!(c.detect("hello there my friend how do drugs work").is_none());
    }

    #[test]
    fn appreciation_and_acknowledgement() {
        let c = ManagementCatalog::standard();
        assert_eq!(c.detect("thanks").unwrap().action, ManagementAction::Appreciation);
        assert_eq!(c.detect("  OKAY ").unwrap().action, ManagementAction::Acknowledgement);
    }

    #[test]
    fn definition_request_with_term_capture() {
        let c = ManagementCatalog::standard();
        let p = c.detect("what do you mean by effective?").unwrap();
        assert_eq!(p.action, ManagementAction::DefinitionRequest);
        assert_eq!(p.id, "B2.5.0");
        assert_eq!(
            ManagementCatalog::captured_term(p, "what do you mean by effective?").as_deref(),
            Some("effective")
        );
    }

    #[test]
    fn bare_what_do_you_mean_is_paraphrase() {
        let c = ManagementCatalog::standard();
        let p = c.detect("what do you mean?").unwrap();
        // No captured term → pattern order puts definition first, but the
        // captured term is None, which the tree uses to fall back to
        // paraphrase behaviour.
        assert!(ManagementCatalog::captured_term(p, "what do you mean?").is_none());
    }

    #[test]
    fn repeat_and_abort_and_closing() {
        let c = ManagementCatalog::standard();
        assert_eq!(c.detect("What did you say?").unwrap().action, ManagementAction::RepeatRequest);
        assert_eq!(c.detect("never mind").unwrap().action, ManagementAction::Abort);
        assert_eq!(c.detect("goodbye").unwrap().action, ManagementAction::Closing);
    }

    #[test]
    fn yes_no_detection() {
        let c = ManagementCatalog::standard();
        assert_eq!(c.detect("yes").unwrap().action, ManagementAction::Affirm);
        assert_eq!(c.detect("no").unwrap().action, ManagementAction::Deny);
    }

    #[test]
    fn domain_queries_do_not_match() {
        let c = ManagementCatalog::standard();
        assert!(c.detect("show me drugs that treat psoriasis").is_none());
        assert!(c.detect("dosage for tazarotene").is_none());
        assert!(c.detect("").is_none());
        assert!(c.detect("   ?!").is_none());
    }

    #[test]
    fn prefix_trigger_requires_content() {
        let c = ManagementCatalog::standard();
        // "define" alone: prefix matches with empty remainder → captured
        // term is None but the pattern still matches the bare prefix.
        let p = c.detect("define aspirin").unwrap();
        assert_eq!(p.action, ManagementAction::DefinitionRequest);
        assert_eq!(
            ManagementCatalog::captured_term(p, "define aspirin").as_deref(),
            Some("aspirin")
        );
    }

    #[test]
    fn custom_pattern_extension() {
        let mut c = ManagementCatalog::standard();
        c.add(ManagementPattern::new(
            "B9.9",
            PatternLevel::Sequence,
            "Joke Request",
            ManagementAction::Chitchat,
            &["tell me a joke"],
            "I'm better at drug facts than jokes.",
        ));
        assert_eq!(c.detect("tell me a joke").unwrap().id, "B9.9");
    }

    #[test]
    fn normalize_strips_punctuation() {
        assert_eq!(normalize("  What did you SAY?! "), "what did you say");
        assert_eq!(normalize("™☃"), "");
    }
}
