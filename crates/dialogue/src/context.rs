//! Persistent conversation context (paper §4.1 "Dialogue", §5.2 step 3).
//!
//! The context captures the current state of the interaction — the active
//! intent, the entities collected so far, and the recent agent utterances
//! — and persists it across turns. This is what lets a user build a query
//! over several utterances ("show me drugs that treat psoriasis" /
//! "pediatric") and modify it incrementally ("I mean adult", "how about
//! for Fluocinonide?").

use obcs_core::IntentId;
use obcs_ontology::ConceptId;
use serde::{Deserialize, Serialize};

/// An entity captured in the conversation: a concept plus the instance
/// value the user mentioned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextEntity {
    pub concept: ConceptId,
    pub value: String,
    /// Turn number the entity was (last) mentioned.
    pub turn: usize,
}

/// The persistent conversation context.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConversationContext {
    /// Current turn counter (incremented by the engine per user utterance).
    pub turn: usize,
    /// The active domain intent, if any.
    pub intent: Option<IntentId>,
    /// Entities collected so far; at most one value per concept (the most
    /// recent mention wins — incremental modification).
    pub entities: Vec<ContextEntity>,
    /// The entity concept the agent is currently eliciting, if any.
    pub eliciting: Option<ConceptId>,
    /// An intent the agent proposed and awaits a yes/no on (entity-only
    /// flow, §6.1: "Would you like to see the precautions of …?").
    pub proposal: Option<IntentId>,
    /// Proposals already made (and rejected) for the current topic, so the
    /// agent proposes something different next time.
    pub rejected_proposals: Vec<IntentId>,
    /// The agent's last response (for repeat repair).
    pub last_agent_response: Option<String>,
    /// Terms used in the agent's last response (for definition repair).
    pub last_terms: Vec<String>,
}

impl ConversationContext {
    pub fn new() -> Self {
        ConversationContext::default()
    }

    /// Begins a new user turn.
    pub fn begin_turn(&mut self) {
        self.turn += 1;
    }

    /// Sets the active intent. Switching to a *different* intent clears the
    /// pending elicitation and any open proposal state (a "yes" after the
    /// switch must not fire an offer the user moved past) but keeps
    /// entities — the paper's context reuse: a dosage request after a
    /// treatment request inherits the condition and age group.
    pub fn set_intent(&mut self, intent: IntentId) {
        if self.intent != Some(intent) {
            self.eliciting = None;
            self.proposal = None;
            self.rejected_proposals.clear();
        }
        self.intent = Some(intent);
    }

    /// Adds or updates an entity; the most recent mention of a concept
    /// replaces the previous value (incremental modification, §6.3
    /// "I mean pediatric").
    pub fn put_entity(&mut self, concept: ConceptId, value: impl Into<String>) {
        let value = value.into();
        let turn = self.turn;
        match self.entities.iter_mut().find(|e| e.concept == concept) {
            Some(e) => {
                e.value = value;
                e.turn = turn;
            }
            None => self.entities.push(ContextEntity { concept, value, turn }),
        }
    }

    /// The current value of an entity concept.
    pub fn entity(&self, concept: ConceptId) -> Option<&str> {
        self.entities.iter().find(|e| e.concept == concept).map(|e| e.value.as_str())
    }

    /// All `(concept, value)` pairs, e.g. for template instantiation.
    pub fn entity_values(&self) -> Vec<(ConceptId, String)> {
        self.entities.iter().map(|e| (e.concept, e.value.clone())).collect()
    }

    /// Whether every concept in the slice has a value.
    pub fn has_all(&self, concepts: &[ConceptId]) -> bool {
        concepts.iter().all(|c| self.entity(*c).is_some())
    }

    /// The first concept in the slice lacking a value.
    pub fn first_missing(&self, concepts: &[ConceptId]) -> Option<ConceptId> {
        concepts.iter().copied().find(|c| self.entity(*c).is_none())
    }

    /// Records the agent's response for repeat/definition repair.
    pub fn record_response(&mut self, text: &str, terms: Vec<String>) {
        self.last_agent_response = Some(text.to_string());
        self.last_terms = terms;
    }

    /// Clears everything except the turn counter (conversation restart,
    /// "never mind" abort).
    pub fn reset_topic(&mut self) {
        self.intent = None;
        self.entities.clear();
        self.eliciting = None;
        self.proposal = None;
        self.rejected_proposals.clear();
        // Repair state goes too: after an abort, "repeat that" must not
        // replay the abandoned topic's answer.
        self.last_agent_response = None;
        self.last_terms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DRUG: ConceptId = ConceptId(0);
    const AGE: ConceptId = ConceptId(1);
    const COND: ConceptId = ConceptId(2);

    #[test]
    fn entities_persist_and_update() {
        let mut ctx = ConversationContext::new();
        ctx.begin_turn();
        ctx.put_entity(COND, "psoriasis");
        ctx.begin_turn();
        ctx.put_entity(AGE, "adult");
        assert_eq!(ctx.entity(COND), Some("psoriasis"));
        assert_eq!(ctx.entity(AGE), Some("adult"));
        // Incremental modification: "I mean pediatric".
        ctx.begin_turn();
        ctx.put_entity(AGE, "pediatric");
        assert_eq!(ctx.entity(AGE), Some("pediatric"));
        assert_eq!(ctx.entities.len(), 2, "no duplicate entries");
    }

    #[test]
    fn slot_checks() {
        let mut ctx = ConversationContext::new();
        ctx.put_entity(DRUG, "aspirin");
        assert!(ctx.has_all(&[DRUG]));
        assert!(!ctx.has_all(&[DRUG, AGE]));
        assert_eq!(ctx.first_missing(&[DRUG, AGE, COND]), Some(AGE));
        assert_eq!(ctx.first_missing(&[DRUG]), None);
    }

    #[test]
    fn intent_switch_clears_elicitation_only() {
        let mut ctx = ConversationContext::new();
        ctx.put_entity(COND, "psoriasis");
        ctx.set_intent(IntentId(1));
        ctx.eliciting = Some(AGE);
        // Same intent: elicitation survives.
        ctx.set_intent(IntentId(1));
        assert_eq!(ctx.eliciting, Some(AGE));
        // New intent: elicitation cleared, entities kept (context reuse).
        ctx.set_intent(IntentId(2));
        assert!(ctx.eliciting.is_none());
        assert_eq!(ctx.entity(COND), Some("psoriasis"));
    }

    #[test]
    fn intent_switch_drops_proposal_state() {
        let mut ctx = ConversationContext::new();
        ctx.proposal = Some(IntentId(5));
        ctx.rejected_proposals.push(IntentId(6));
        // Same intent set twice: the proposal survives the first call.
        ctx.set_intent(IntentId(1));
        assert!(ctx.proposal.is_none(), "switch to a new intent drops the offer");
        assert!(ctx.rejected_proposals.is_empty());
        ctx.proposal = Some(IntentId(7));
        ctx.set_intent(IntentId(1));
        assert_eq!(ctx.proposal, Some(IntentId(7)), "re-setting the same intent keeps it");
    }

    #[test]
    fn reset_topic_clears_entities_keeps_turns() {
        let mut ctx = ConversationContext::new();
        ctx.begin_turn();
        ctx.begin_turn();
        ctx.put_entity(DRUG, "aspirin");
        ctx.set_intent(IntentId(3));
        ctx.record_response("Here are the precautions", vec!["precaution".into()]);
        ctx.reset_topic();
        assert_eq!(ctx.turn, 2);
        assert!(ctx.intent.is_none());
        assert!(ctx.entities.is_empty());
        assert!(ctx.last_agent_response.is_none(), "abort forgets the last response");
        assert!(ctx.last_terms.is_empty());
    }

    #[test]
    fn response_recording() {
        let mut ctx = ConversationContext::new();
        ctx.record_response("Here are drugs: Effective: X", vec!["effective".into()]);
        assert!(ctx.last_agent_response.as_deref().unwrap().contains("drugs"));
        assert_eq!(ctx.last_terms, vec!["effective"]);
    }

    #[test]
    fn entity_values_for_templates() {
        let mut ctx = ConversationContext::new();
        ctx.put_entity(DRUG, "aspirin");
        ctx.put_entity(COND, "fever");
        let vals = ctx.entity_values();
        assert_eq!(vals.len(), 2);
        assert!(vals.contains(&(DRUG, "aspirin".to_string())));
    }
}
