//! The dialogue tree (paper §5, Fig. 10): the decision structure that maps
//! (detected intent, entities, context) to the agent's next action.
//!
//! The tree is generated from the [`DialogueLogicTable`] (domain nodes with
//! slot filling) and augmented with the [`ManagementCatalog`] (generic
//! conversation-management nodes). Evaluation is deterministic: management
//! patterns are checked first, then the domain intent with slot filling,
//! then entity-only proposals, then fallback.

use obcs_core::{ConversationSpace, IntentId};
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::context::ConversationContext;
use crate::logic_table::DialogueLogicTable;
use crate::management::{ManagementAction, ManagementCatalog};

/// What the dialogue tree tells the engine to do next.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AgentAction {
    /// Say a fixed response (management patterns, repairs).
    Say { text: String },
    /// Ask the user for a missing required entity (slot filling).
    Elicit { intent: IntentId, concept: ConceptId, prompt: String },
    /// All required entities are present: execute the intent's templates
    /// and respond with results.
    Fulfill { intent: IntentId },
    /// Entity-only input: propose a dependent-concept intent and await
    /// yes/no (paper §6.1, User 480 transcript).
    Propose { intent: IntentId, text: String },
    /// The conversation is over (closing pattern matched).
    Close { text: String },
    /// Nothing matched.
    Fallback { text: String },
}

/// Inputs for one turn, produced by the engine's NLU (classifier + entity
/// recognition).
#[derive(Debug, Clone, Default)]
pub struct TurnInput {
    pub utterance: String,
    /// The detected domain intent, if its confidence cleared the engine's
    /// threshold.
    pub intent: Option<IntentId>,
    /// Entities recognised in the utterance.
    pub entities: Vec<(ConceptId, String)>,
}

/// A glossary term for definition-request repair (B2.5.0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlossaryEntry {
    pub term: String,
    pub definition: String,
}

/// The dialogue tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DialogueTree {
    pub logic: DialogueLogicTable,
    pub catalog: ManagementCatalog,
    /// Agent self-identification used in openings/closings.
    pub agent_name: String,
    /// Short description of what the agent can answer.
    pub capabilities: String,
    /// An example utterance offered on help requests.
    pub help_example: String,
    pub glossary: Vec<GlossaryEntry>,
    /// For entity-only intents: the ordered intents to propose for a
    /// concept (derived from completion metadata).
    pub proposals: Vec<(ConceptId, Vec<IntentId>)>,
    /// Map from entity-only intent to its concept.
    entity_only: Vec<(IntentId, ConceptId)>,
}

impl DialogueTree {
    /// Builds the tree from a bootstrapped conversation space (§5.2 steps
    /// 1–3).
    pub fn from_space(space: &ConversationSpace, onto: &Ontology, agent_name: &str) -> Self {
        let logic = DialogueLogicTable::from_space(space, onto);
        // Proposals: for each key concept, the lookup intents that require
        // it, in intent order.
        let mut proposals: Vec<(ConceptId, Vec<IntentId>)> = Vec::new();
        for &key in &space.key_concepts {
            let intents: Vec<IntentId> = space
                .intents
                .iter()
                .filter(|i| i.is_query() && i.required_entities == [key])
                .map(|i| i.id)
                .collect();
            if !intents.is_empty() {
                proposals.push((key, intents));
            }
        }
        let entity_only = space
            .intents
            .iter()
            .filter_map(|i| match i.goal {
                obcs_core::intents::IntentGoal::EntityOnly(c) => Some((i.id, c)),
                _ => None,
            })
            .collect();
        // Glossary from concept descriptions.
        let glossary = onto
            .concepts()
            .iter()
            .filter_map(|c| {
                c.description.as_ref().map(|d| GlossaryEntry {
                    term: crate::management::normalize(&obcs_nlq::annotate::split_camel(&c.name)),
                    definition: d.clone(),
                })
            })
            .collect();
        let capabilities = {
            let topics: Vec<String> = space
                .intents
                .iter()
                .filter(|i| i.is_query())
                .take(4)
                .map(|i| i.name.to_lowercase())
                .collect();
            topics.join(", ")
        };
        let help_example = space
            .training
            .first()
            .map(|e| e.text.clone())
            .unwrap_or_else(|| "show me information about an entity".to_string());
        DialogueTree {
            logic,
            catalog: ManagementCatalog::standard(),
            agent_name: agent_name.to_string(),
            capabilities,
            help_example,
            glossary,
            proposals,
            entity_only,
        }
    }

    /// Adds a glossary term (normalised).
    pub fn add_glossary(&mut self, term: &str, definition: &str) {
        self.glossary.push(GlossaryEntry {
            term: crate::management::normalize(term),
            definition: definition.to_string(),
        });
    }

    fn definition_of(&self, term: &str) -> Option<&str> {
        let norm = crate::management::normalize(term);
        self.glossary.iter().find(|g| g.term == norm).map(|g| g.definition.as_str())
    }

    /// Evaluates one turn (Fig. 10). Mutates the context (entities, active
    /// intent, pending elicitation/proposal) and returns the action.
    pub fn evaluate(&self, ctx: &mut ConversationContext, input: &TurnInput) -> AgentAction {
        ctx.begin_turn();

        // 1. Conversation-management nodes (step-3 augmentation).
        if let Some(pattern) = self.catalog.detect(&input.utterance) {
            match pattern.action {
                ManagementAction::Greeting => {
                    return AgentAction::Say {
                        text: pattern.response.replace("{agent}", &self.agent_name),
                    };
                }
                ManagementAction::CapabilityCheck | ManagementAction::HelpRequest => {
                    return AgentAction::Say {
                        text: pattern
                            .response
                            .replace("{capabilities}", &self.capabilities)
                            .replace("{example}", &format!("\"{}\"", self.help_example)),
                    };
                }
                ManagementAction::Appreciation | ManagementAction::Acknowledgement => {
                    ctx.proposal = None;
                    return AgentAction::Say { text: pattern.response.clone() };
                }
                ManagementAction::RepeatRequest | ManagementAction::ParaphraseRequest => {
                    let text = match &ctx.last_agent_response {
                        Some(prev) => pattern.response.replace("{repeat}", prev),
                        None => "I haven't said anything yet.".to_string(),
                    };
                    return AgentAction::Say { text };
                }
                ManagementAction::DefinitionRequest => {
                    if let Some(term) = ManagementCatalog::captured_term(pattern, &input.utterance)
                    {
                        if let Some(def) = self.definition_of(&term) {
                            return AgentAction::Say {
                                text: pattern
                                    .response
                                    .replace("{term}", &capitalize(&term))
                                    .replace("{definition}", def),
                            };
                        }
                        // Unknown term: fall through to domain handling —
                        // "what is aspirin" is a domain query, not a repair.
                    } else if let Some(prev) = &ctx.last_agent_response {
                        return AgentAction::Say {
                            text: format!("Let me put it differently: {prev}"),
                        };
                    }
                }
                ManagementAction::Abort => {
                    ctx.reset_topic();
                    return AgentAction::Say { text: pattern.response.clone() };
                }
                ManagementAction::Closing => {
                    return AgentAction::Close {
                        text: pattern.response.replace("{agent}", &self.agent_name),
                    };
                }
                ManagementAction::Affirm => {
                    if let Some(proposal) = ctx.proposal.take() {
                        ctx.set_intent(proposal);
                        return self.slot_fill(ctx, proposal);
                    }
                    return AgentAction::Say { text: "Great. What would you like to know?".into() };
                }
                ManagementAction::Deny => {
                    if let Some(rejected) = ctx.proposal.take() {
                        ctx.rejected_proposals.push(rejected);
                        return AgentAction::Say { text: "OK. Please modify your search.".into() };
                    }
                    return AgentAction::Close {
                        text: format!("Thank you for using {}. Goodbye.", self.agent_name),
                    };
                }
                ManagementAction::Chitchat
                | ManagementAction::Praise
                | ManagementAction::Complaint => {
                    return AgentAction::Say {
                        text: pattern.response.replace("{agent}", &self.agent_name),
                    };
                }
            }
        }

        // 2. Merge recognised entities into the persistent context.
        for (concept, value) in &input.entities {
            ctx.put_entity(*concept, value.clone());
        }

        // 3. Domain intent handling with slot filling.
        if let Some(intent_id) = input.intent {
            if let Some((_, concept)) = self.entity_only.iter().find(|(id, _)| *id == intent_id) {
                return self.propose_for(ctx, *concept);
            }
            ctx.set_intent(intent_id);
            return self.slot_fill(ctx, intent_id);
        }

        // 4. No intent, but the user supplied entities.
        if !input.entities.is_empty() {
            // Answering a pending elicitation (Fig. 10b) or incrementally
            // modifying the previous query (§6.3 "I mean pediatric").
            if let Some(active) = ctx.intent {
                ctx.eliciting = None;
                return self.slot_fill(ctx, active);
            }
            // Entity-only without a prior topic: propose (User 480 flow).
            let concept = input.entities[0].0;
            return self.propose_for(ctx, concept);
        }

        // 5. Fallback.
        AgentAction::Fallback {
            text: "I'm sorry, I didn't understand that. You can ask for help to see what I can do."
                .to_string(),
        }
    }

    /// Slot filling for a domain intent (Fig. 10): elicit the first missing
    /// required entity, else fulfill.
    fn slot_fill(&self, ctx: &mut ConversationContext, intent: IntentId) -> AgentAction {
        let Some(row) = self.logic.row(intent) else {
            return AgentAction::Fallback {
                text: "I recognised your request but cannot handle it yet.".to_string(),
            };
        };
        let required: Vec<ConceptId> = row.required.iter().map(|r| r.concept).collect();
        match ctx.first_missing(&required) {
            Some(missing) => {
                ctx.eliciting = Some(missing);
                let prompt = row
                    .required
                    .iter()
                    .find(|r| r.concept == missing)
                    .map(|r| r.elicitation.clone())
                    .expect("missing concept is in required list");
                AgentAction::Elicit { intent, concept: missing, prompt }
            }
            None => {
                ctx.eliciting = None;
                AgentAction::Fulfill { intent }
            }
        }
    }

    /// Proposes the next dependent intent for a key concept the user named
    /// without an intent.
    fn propose_for(&self, ctx: &mut ConversationContext, concept: ConceptId) -> AgentAction {
        let Some((_, intents)) = self.proposals.iter().find(|(c, _)| *c == concept) else {
            return AgentAction::Fallback {
                text: "I recognised that entity but have no further information about it."
                    .to_string(),
            };
        };
        let next = intents.iter().find(|i| !ctx.rejected_proposals.contains(i)).copied();
        match next {
            Some(intent) => {
                ctx.proposal = Some(intent);
                let name = self
                    .logic
                    .row(intent)
                    .map(|r| {
                        // "Precautions of Drug" reads as "precautions" when
                        // proposed about a specific drug.
                        let n = r.intent_name.to_lowercase();
                        n.trim_end_matches(" of drug").trim_end_matches(" for drug").to_string()
                    })
                    .unwrap_or_default();
                let value = ctx.entity(concept).unwrap_or("it").to_string();
                AgentAction::Propose {
                    intent,
                    text: format!("Would you like to see the {name} of {value}?"),
                }
            }
            None => {
                ctx.rejected_proposals.clear();
                AgentAction::Say { text: "OK. Please modify your search.".to_string() }
            }
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_core::testutil::fig2_fixture;
    use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};

    fn tree() -> (Ontology, ConversationSpace, DialogueTree) {
        let (mut onto, kb, mapping) = fig2_fixture();
        let drug = onto.concept_id("Drug").unwrap();
        onto.set_description(drug, "a substance used to treat a condition").unwrap();
        let sme = SmeFeedback::new().entity_only(drug);
        let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        let tree = DialogueTree::from_space(&space, &onto, "Micromedex");
        (onto, space, tree)
    }

    fn turn(
        intent: Option<IntentId>,
        utterance: &str,
        entities: &[(ConceptId, &str)],
    ) -> TurnInput {
        TurnInput {
            utterance: utterance.to_string(),
            intent,
            entities: entities.iter().map(|&(c, v)| (c, v.to_string())).collect(),
        }
    }

    #[test]
    fn greeting_identifies_agent() {
        let (_, _, tree) = tree();
        let mut ctx = ConversationContext::new();
        let action = tree.evaluate(&mut ctx, &turn(None, "hello", &[]));
        match action {
            AgentAction::Say { text } => assert!(text.contains("Micromedex")),
            other => panic!("expected Say, got {other:?}"),
        }
    }

    #[test]
    fn slot_filling_elicits_then_fulfills() {
        let (onto, space, tree) = tree();
        let drug = onto.concept_id("Drug").unwrap();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let mut ctx = ConversationContext::new();
        // "show me precautions" without a drug: elicit (Fig. 10a).
        let action = tree.evaluate(&mut ctx, &turn(Some(prec.id), "show me precautions", &[]));
        match action {
            AgentAction::Elicit { concept, prompt, .. } => {
                assert_eq!(concept, drug);
                assert_eq!(prompt, "For which drug?");
            }
            other => panic!("expected Elicit, got {other:?}"),
        }
        // The user answers with a bare entity (Fig. 10b).
        let action = tree.evaluate(&mut ctx, &turn(None, "aspirin", &[(drug, "Aspirin")]));
        assert_eq!(action, AgentAction::Fulfill { intent: prec.id });
    }

    #[test]
    fn complete_request_fulfills_immediately() {
        let (onto, space, tree) = tree();
        let drug = onto.concept_id("Drug").unwrap();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let mut ctx = ConversationContext::new();
        let action = tree.evaluate(
            &mut ctx,
            &turn(Some(prec.id), "precautions for aspirin", &[(drug, "Aspirin")]),
        );
        assert_eq!(action, AgentAction::Fulfill { intent: prec.id });
    }

    #[test]
    fn incremental_modification_refires_intent() {
        let (onto, space, tree) = tree();
        let drug = onto.concept_id("Drug").unwrap();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let mut ctx = ConversationContext::new();
        tree.evaluate(
            &mut ctx,
            &turn(Some(prec.id), "precautions for aspirin", &[(drug, "Aspirin")]),
        );
        // "how about for Ibuprofen?" — entity only, intent persists (§6.3).
        let action =
            tree.evaluate(&mut ctx, &turn(None, "how about for ibuprofen", &[(drug, "Ibuprofen")]));
        assert_eq!(action, AgentAction::Fulfill { intent: prec.id });
        assert_eq!(ctx.entity(drug), Some("Ibuprofen"));
    }

    #[test]
    fn definition_repair_uses_glossary() {
        let (_, _, mut tree) = tree();
        tree.add_glossary(
            "effective",
            "the capacity for beneficial change of a given intervention.",
        );
        let mut ctx = ConversationContext::new();
        let action = tree.evaluate(&mut ctx, &turn(None, "what do you mean by effective?", &[]));
        match action {
            AgentAction::Say { text } => {
                assert!(text.contains("Effective is the capacity"), "{text}");
            }
            other => panic!("expected Say, got {other:?}"),
        }
    }

    #[test]
    fn repeat_repair_replays_last_response() {
        let (_, _, tree) = tree();
        let mut ctx = ConversationContext::new();
        ctx.record_response("Here are the drugs: A, B", vec![]);
        let action = tree.evaluate(&mut ctx, &turn(None, "what did you say?", &[]));
        match action {
            AgentAction::Say { text } => assert!(text.contains("Here are the drugs")),
            other => panic!("expected Say, got {other:?}"),
        }
    }

    #[test]
    fn entity_only_proposal_flow_like_user_480() {
        let (onto, space, tree) = tree();
        let drug = onto.concept_id("Drug").unwrap();
        let general = space.intent_by_name("DRUG_GENERAL").unwrap();
        let mut ctx = ConversationContext::new();
        // "cogentin" — entity-only intent detected.
        let action =
            tree.evaluate(&mut ctx, &turn(Some(general.id), "aspirin", &[(drug, "Aspirin")]));
        let first_proposal = match action {
            AgentAction::Propose { intent, text } => {
                assert!(text.contains("Would you like to see"), "{text}");
                assert!(text.contains("Aspirin"), "{text}");
                intent
            }
            other => panic!("expected Propose, got {other:?}"),
        };
        // "no" → rejection prompt.
        let action = tree.evaluate(&mut ctx, &turn(None, "no", &[]));
        assert_eq!(action, AgentAction::Say { text: "OK. Please modify your search.".into() });
        // Mentioning the entity again proposes a *different* intent.
        let action = tree.evaluate(&mut ctx, &turn(None, "aspirin", &[(drug, "Aspirin")]));
        match action {
            AgentAction::Propose { intent, .. } => assert_ne!(intent, first_proposal),
            other => panic!("expected second Propose, got {other:?}"),
        }
        // "yes" → fulfilment of the proposed intent.
        let action = tree.evaluate(&mut ctx, &turn(None, "yes", &[]));
        match action {
            AgentAction::Fulfill { .. } => {}
            other => panic!("expected Fulfill, got {other:?}"),
        }
    }

    #[test]
    fn abort_resets_topic() {
        let (onto, space, tree) = tree();
        let drug = onto.concept_id("Drug").unwrap();
        let prec = space.intent_by_name("Precautions of Drug").unwrap();
        let mut ctx = ConversationContext::new();
        tree.evaluate(
            &mut ctx,
            &turn(Some(prec.id), "precautions for aspirin", &[(drug, "Aspirin")]),
        );
        tree.evaluate(&mut ctx, &turn(None, "never mind", &[]));
        assert!(ctx.intent.is_none());
        assert!(ctx.entities.is_empty());
    }

    #[test]
    fn closing_and_fallback() {
        let (_, _, tree) = tree();
        let mut ctx = ConversationContext::new();
        let action = tree.evaluate(&mut ctx, &turn(None, "goodbye", &[]));
        assert!(matches!(action, AgentAction::Close { .. }));
        let action = tree.evaluate(&mut ctx, &turn(None, "apfjhd", &[]));
        assert!(matches!(action, AgentAction::Fallback { .. }));
    }

    #[test]
    fn help_mentions_capabilities_and_example() {
        let (_, _, tree) = tree();
        let mut ctx = ConversationContext::new();
        let action = tree.evaluate(&mut ctx, &turn(None, "help", &[]));
        match action {
            AgentAction::Say { text } => {
                assert!(text.contains("You can ask me about"), "{text}");
            }
            other => panic!("expected Say, got {other:?}"),
        }
    }
}
