//! # obcs-dialogue
//!
//! The dialogue layer of the conversation system (paper §5): the
//! structural representation of conversation flow, built in three steps —
//!
//! 1. a **Dialogue Logic Table** specifying, per intent, its examples,
//!    required entities with elicitation prompts, optional entities, and
//!    response template (Tables 3–4) ([`logic_table`]);
//! 2. a **dialogue tree** generated from the table, implementing slot
//!    filling: if every required entity of the detected intent is present
//!    in the conversation context, the response fires; otherwise the agent
//!    elicits the missing entity (Fig. 10) ([`tree`]);
//! 3. augmentation with **conversation-management** nodes — the
//!    domain-independent interaction patterns of the Natural Conversation
//!    Framework \[24\]: openings, closings, appreciations, repeat and
//!    definition-request repairs, acknowledgements, aborts
//!    ([`management`]).
//!
//! Persistent [`context`] carries intents and entities across turns so
//! users can build a query over multiple utterances and modify it
//! incrementally ("I mean pediatric").
//!
//! Crate role: DESIGN.md §2; as-built notes: §5.

pub mod context;
pub mod logic_table;
pub mod management;
pub mod tree;

pub use context::ConversationContext;
pub use logic_table::{DialogueLogicTable, LogicRow};
pub use management::{ManagementCatalog, ManagementPattern, PatternLevel};
pub use tree::{AgentAction, DialogueTree};
