//! The SME feedback applied to the bootstrapped MDX conversation space
//! (paper §4.2.2, §4.3.2, §6.1): renames to the product intent names of
//! Table 5, pruning of unrealistic generated patterns, labelled prior user
//! queries as training augmentation, the DRUG_GENERAL entity-only intent,
//! and the conversation-management intents.

use obcs_core::SmeFeedback;
use obcs_ontology::Ontology;

/// The 13 conversation-management intents registered with the classifier
/// (the paper's §6.1 management intents), as `(name, response)`.
pub const MANAGEMENT_INTENTS: &[(&str, &str)] = &[
    ("Greeting", "Hello. This is {agent}. How can I help you today?"),
    (
        "Capability Check",
        "I can answer drug reference questions: treatments, dosing, interactions, and more.",
    ),
    ("Help Request", "Try asking, for example: \"show me drugs that treat psoriasis\"."),
    ("Appreciation", "You're welcome! Anything else?"),
    ("Acknowledgement", "Anything else?"),
    ("Affirmation", "Great."),
    ("Disconfirmation", "OK. Please modify your search."),
    ("Repeat Request", "Let me repeat that for you."),
    ("Definition Request", "Let me define that term."),
    ("Paraphrase Request", "Let me put that differently."),
    ("Abort", "OK, never mind. What else can I help you with?"),
    ("Closing", "Thank you for using {agent}. Goodbye."),
    ("Chitchat", "I'm a drug reference assistant — let's talk medications."),
];

/// Training phrasings for each management intent (SME-labelled, since the
/// classifier needs examples across all 36 intents for Table 5).
const MANAGEMENT_EXAMPLES: &[(&str, &[&str])] = &[
    (
        "Greeting",
        &["hello", "hi there", "hey", "good morning", "greetings to you", "hello micromedex"],
    ),
    (
        "Capability Check",
        &[
            "what can you do",
            "what do you know",
            "what questions can i ask",
            "tell me your capabilities",
            "what are you able to answer",
        ],
    ),
    (
        "Help Request",
        &[
            "help",
            "i need help",
            "how does this work",
            "show me instructions",
            "how do i search",
            "what should i type",
        ],
    ),
    (
        "Appreciation",
        &[
            "thanks",
            "thank you",
            "thanks a lot",
            "thank you so much",
            "appreciate it",
            "many thanks",
        ],
    ),
    ("Acknowledgement", &["ok", "okay", "got it", "understood", "i see", "alright then"]),
    ("Affirmation", &["yes", "yes please", "yeah", "sure", "that would be great", "correct"]),
    (
        "Disconfirmation",
        &["no", "nope", "no thanks", "not that", "that is not what i want", "wrong"],
    ),
    (
        "Repeat Request",
        &[
            "what did you say",
            "please repeat",
            "say that again",
            "repeat the last answer",
            "come again please",
            "pardon me",
        ],
    ),
    (
        "Definition Request",
        &[
            "what do you mean by effective",
            "what does contraindication mean",
            "define black box warning",
            "meaning of adverse effect",
            "what do you mean by iv compatibility",
        ],
    ),
    (
        "Paraphrase Request",
        &[
            "what do you mean",
            "i don't understand",
            "can you rephrase",
            "please say that differently",
            "that was confusing",
        ],
    ),
    ("Abort", &["never mind", "forget it", "cancel that", "stop", "skip this", "drop it"]),
    ("Closing", &["goodbye", "bye", "see you later", "i'm done", "that's all for today", "exit"]),
    (
        "Chitchat",
        &[
            "how are you",
            "who are you",
            "are you a robot",
            "tell me about yourself",
            "what's your name",
        ],
    ),
];

/// Prior user queries labelled by SMEs (Fig. 8 augmentation): phrasings the
/// automatic generator would not produce.
const PRIOR_QUERIES: &[(&str, &[&str])] = &[
    (
        "Dose Adjustments for Drug",
        &[
            "find dose adjustment for aspirin",
            "give me the increased dosage for aspirin",
            "how do i perform a dose adjustment for aspirin",
            "i want to see the modifications to dosing for aspirin",
            "renal dosing changes for metformin",
        ],
    ),
    (
        "Adverse Effects of Drug",
        &[
            "what are the side effects of cogentin",
            "cogentin adverse effects",
            "side effects of ibuprofen",
            "does amoxicillin cause rash",
            "negative reactions to warfarin",
        ],
    ),
    (
        "Drugs That Treat Condition",
        &[
            "show me drugs that treat psoriasis",
            "what can i give for fever",
            "treatment options for acne",
            "what's used for bronchitis",
            "best medication for hypertension",
            "medications for migraine",
            "meds for fever",
            "drugs for psoriasis",
        ],
    ),
    (
        "Dosages of Drug",
        &[
            "how much aspirin should i give",
            "how much amoxicillin can i give",
            "dosing of warfarin",
        ],
    ),
    (
        "Drug Dosage for Condition",
        &[
            "give me the dosage for tazarotene for acne",
            "dosage for tazarotene",
            "how much ibuprofen for fever",
            "tazarotene dosing in psoriasis",
            "aspirin dose for headache",
            "dose of amoxicillin to treat otitis media",
            "dose of aspirin to treat fever",
        ],
    ),
    (
        "Uses of Drug",
        &[
            "what is aspirin used for",
            "uses of benazepril",
            "what is tazarotene for",
            "why would someone take metformin",
            "indication for adalimumab",
            "what does aspirin do",
            "what does metformin do",
            "why take ibuprofen",
        ],
    ),
    (
        "Drug-Drug Interactions",
        &[
            "what are the drug interactions for aspirin",
            "does warfarin interact with aspirin",
            "drug-drug interactions of amiodarone",
            "can i combine ibuprofen and warfarin",
            "interactions between sertraline and tramadol",
        ],
    ),
    (
        "IV Compatibility of Drug",
        &[
            "iv compatibility of heparin",
            "is heparin compatible with normal saline",
            "y-site compatibility for furosemide",
            "can i run morphine with d5w",
        ],
    ),
    (
        "Administration of Drug",
        &[
            "how do i administer adalimumab",
            "how should tazarotene be applied",
            "administration instructions for insulin glargine",
            "how to take omeprazole",
        ],
    ),
    (
        "Regulatory Status for Drug",
        &[
            "regulatory status for oxycodone",
            "is tramadol a controlled substance",
            "what schedule is morphine",
            "is loratadine over the counter",
        ],
    ),
    (
        "Precautions of Drug",
        &[
            "show me the precautions for benazepril",
            "is aspirin safe to give in pregnancy",
            "precautions for methotrexate",
            "cautions for warfarin in elderly",
        ],
    ),
];

/// Intent names the generated space produces that SMEs prune as unlikely
/// real-world requests (§4.2.2).
const PRUNED: &[&str] = &["Dosages of Condition", "Toxicologys of Condition"];

/// Renames from generated names to the paper's product intent names
/// (Table 5 / Fig. 12).
const RENAMES: &[(&str, &str)] = &[
    ("Dosages of Drug for Condition", "Drug Dosage for Condition"),
    ("Administrations of Drug", "Administration of Drug"),
    ("Iv Compatibilitys of Drug", "IV Compatibility of Drug"),
    ("Drugs That Treats Condition", "Drugs That Treat Condition"),
    ("Drug Interactions of Drug", "Drug-Drug Interactions"),
    ("Dose Adjustments of Drug", "Dose Adjustments for Drug"),
    ("Regulatory Status of Drug", "Regulatory Status for Drug"),
    ("Pharmacokinetics of Drug", "Pharmacokinetics"),
    ("Toxicologys of Drug", "Toxicology of Drug"),
    ("Toxicologys of Drug for Condition", "Drug Toxicology for Condition"),
    ("Conditions Is Treated By Drug", "Conditions Treated by Drug"),
    ("Mechanism Of Actions of Drug", "Mechanism of Action of Drug"),
    ("Monitorings of Drug", "Monitoring of Drug"),
];

/// Builds the full MDX SME feedback.
pub fn mdx_sme_feedback(onto: &Ontology) -> SmeFeedback {
    let mut fb = SmeFeedback::new();
    for name in PRUNED {
        fb = fb.prune(name);
    }
    for (from, to) in RENAMES {
        fb = fb.rename(from, to);
    }
    for (name, response) in MANAGEMENT_INTENTS {
        fb = fb.management_intent(name, response);
    }
    for (intent, examples) in MANAGEMENT_EXAMPLES {
        for e in *examples {
            fb = fb.labelled_query(intent, e);
        }
    }
    for (intent, queries) in PRIOR_QUERIES {
        for q in *queries {
            fb = fb.labelled_query(intent, q);
        }
    }
    // Concept synonyms (Table 2) ride along with the feedback.
    for (canonical, synonyms) in crate::synonyms::concept_synonyms().iter() {
        let refs: Vec<&str> = synonyms.iter().map(String::as_str).collect();
        fb = fb.synonym(canonical, &refs);
    }
    // DRUG_GENERAL: keyword-only drug mentions (§6.1).
    let drug = onto.concept_id("Drug").expect("Drug concept");
    fb = fb.entity_only(drug);
    fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::build_mdx_ontology;

    #[test]
    fn feedback_is_complete() {
        let onto = build_mdx_ontology();
        let fb = mdx_sme_feedback(&onto);
        assert_eq!(fb.pruned_intents.len(), 2);
        assert_eq!(fb.renames.len(), 13);
        assert_eq!(fb.management_intents.len(), 13);
        assert!(fb.labelled_queries.len() > 80);
        assert_eq!(fb.entity_only_concepts.len(), 1);
        assert!(!fb.synonyms.is_empty());
    }

    #[test]
    fn every_management_intent_has_examples() {
        for (name, _) in MANAGEMENT_INTENTS {
            assert!(
                MANAGEMENT_EXAMPLES.iter().any(|(n, ex)| n == name && ex.len() >= 5),
                "management intent `{name}` lacks examples"
            );
        }
    }

    #[test]
    fn prior_queries_target_renamed_names() {
        // Every prior-query intent name must be a post-rename product name
        // or an auto-generated name that survives.
        let renamed: Vec<&str> = RENAMES.iter().map(|&(_, to)| to).collect();
        let auto_survivors =
            ["Uses of Drug", "Adverse Effects of Drug", "Precautions of Drug", "Dosages of Drug"];
        for (intent, _) in PRIOR_QUERIES {
            assert!(
                renamed.contains(intent) || auto_survivors.contains(intent),
                "prior queries target unknown intent `{intent}`"
            );
        }
    }
}
