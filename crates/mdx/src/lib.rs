//! # obcs-mdx
//!
//! The Micromedex (MDX) use case of the paper (§6): a synthetic,
//! full-scale medical knowledge base and the Conversational MDX agent
//! assembled on top of it through the ontology-driven bootstrapping
//! pipeline.
//!
//! The real Micromedex content is proprietary; this crate generates a
//! *synthetic equivalent at the same structural scale* (see DESIGN.md):
//!
//! * a hand-curated medical domain ontology with exactly the dimensions
//!   the paper reports — **59 concepts, 178 data properties, 58
//!   relationships** including functional, isA and unionOf ([`ontology`]);
//! * a seeded synthetic KB with drugs (including every drug and condition
//!   the paper's transcripts mention — Tazarotene, Fluocinonide,
//!   Benztropine Mesylate a.k.a. Cogentin, psoriasis, …), conditions,
//!   dosages, interactions, risks and the other dependent content sets
//!   ([`data`]);
//! * the domain synonym dictionaries of Table 2 plus brand-name and
//!   base-with-salt synonyms (§6.1) ([`synonyms`]);
//! * the SME feedback of §4.2.2/§6.1: intent renames to the product
//!   names of Table 5, pruning of unrealistic patterns, labelled prior
//!   user queries, the DRUG_GENERAL entity-only intent, and the 13
//!   conversation-management intents ([`sme`]);
//! * the assembled [`ConversationalMdx`] agent ([`assemble`]).
//!
//! Crate role: DESIGN.md §2; synthetic-data substitutions: §1 and §5.

pub mod assemble;
pub mod data;
pub mod ontology;
pub mod sme;
pub mod synonyms;

pub use assemble::ConversationalMdx;
