//! Assembly of Conversational MDX: ontology + synthetic KB + bootstrapped
//! conversation space + dialogue customisation + online agent.

use obcs_agent::{AgentConfig, ConversationAgent};
use obcs_core::templates::{template_for_pattern, LabeledTemplate};
use obcs_core::{bootstrap, BootstrapConfig, ConversationSpace};
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::Ontology;

use crate::data::{build_mdx_kb, MdxDataConfig};
use crate::ontology::build_mdx_ontology;
use crate::sme::mdx_sme_feedback;
use crate::synonyms::drug_instance_synonyms;

/// The assembled Conversational MDX system.
pub struct ConversationalMdx {
    pub agent: ConversationAgent,
}

impl ConversationalMdx {
    /// Builds the full system with the default scale (150 drugs).
    pub fn new(seed: u64) -> Self {
        Self::with_config(MdxDataConfig { seed, ..MdxDataConfig::default() })
    }

    /// Builds with a custom data configuration (smaller scales for tests).
    pub fn with_config(config: MdxDataConfig) -> Self {
        let (onto, kb, mapping, space) = Self::bootstrap_space(config);
        let mut agent = ConversationAgent::new(
            onto,
            kb,
            mapping,
            space,
            AgentConfig { name: "Micromedex".into(), intent_confidence_threshold: 0.15 },
        );
        Self::customise(&mut agent);
        ConversationalMdx { agent }
    }

    /// Runs the offline pipeline and returns all artifacts (used by the
    /// repro harness, which needs the pieces separately).
    pub fn bootstrap_space(
        config: MdxDataConfig,
    ) -> (Ontology, KnowledgeBase, OntologyMapping, ConversationSpace) {
        let onto = build_mdx_ontology();
        let kb = build_mdx_kb(config);
        let mapping = OntologyMapping::infer(&onto, &kb);
        let sme = mdx_sme_feedback(&onto);
        let mut space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        Self::add_age_group_slots(&onto, &kb, &mapping, &mut space);
        Self::add_optional_entities(&onto, &mut space);
        (onto, kb, mapping, space)
    }

    /// SME slot customisation (§6.2, Table 4): treatment and dosage
    /// requests additionally require the Age Group entity, so the agent
    /// elicits "Adult or pediatric?" — realised by adding `AgeGroup` to the
    /// intents' required entities and regenerating their templates with the
    /// extra filter (the join routes through the Dosage records).
    fn add_age_group_slots(
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
        space: &mut ConversationSpace,
    ) {
        let age_group = onto.concept_id("AgeGroup").expect("AgeGroup concept");
        for intent_name in ["Drugs That Treat Condition", "Drug Dosage for Condition"] {
            let Some(intent) = space.intents.iter_mut().find(|i| i.name == intent_name) else {
                continue;
            };
            if !intent.required_entities.contains(&age_group) {
                intent.required_entities.push(age_group);
            }
            let id = intent.id;
            // Extend the grounding patterns and regenerate templates.
            if let obcs_core::intents::IntentGoal::Query(patterns) = &mut intent.goal {
                for p in patterns.iter_mut() {
                    if !p.required.contains(&age_group) {
                        p.required.push(age_group);
                    }
                }
                let regenerated: Vec<LabeledTemplate> = patterns
                    .iter()
                    .filter_map(|p| {
                        template_for_pattern(p, onto, kb, mapping)
                            .ok()
                            .map(|t| LabeledTemplate { topic: p.topic.clone(), template: t })
                    })
                    .collect();
                if let Some(slot) = space.templates.iter_mut().find(|t| t.intent == id) {
                    slot.templates = regenerated;
                }
            }
        }
    }

    /// Optional entities (Table 4): captured when present, never elicited.
    /// "severe adverse effects of aspirin" narrows the adverse-effect
    /// lookup by the Severity instance in the utterance.
    fn add_optional_entities(onto: &Ontology, space: &mut ConversationSpace) {
        let optional: &[(&str, &str)] = &[
            ("Adverse Effects of Drug", "Severity"),
            ("Drugs That Treat Condition", "Efficacy"),
            ("Precautions of Drug", "PatientPopulation"),
            ("IV Compatibility of Drug", "Solution"),
        ];
        for (intent_name, concept_name) in optional {
            let Ok(concept) = onto.concept_id(concept_name) else { continue };
            if let Some(intent) = space.intents.iter_mut().find(|i| &i.name == intent_name) {
                if !intent.optional_entities.contains(&concept) {
                    intent.optional_entities.push(concept);
                }
            }
        }
    }

    /// Online-side customisation: elicitation prompts, glossary, and
    /// instance synonyms.
    fn customise(agent: &mut ConversationAgent) {
        // Elicitation prompts of Table 4.
        let (age_group, condition) = {
            let space = agent.space();
            let find = |name: &str| {
                space.intent_by_name(name).map(|i| (i.id, i.required_entities.clone()))
            };
            (find("Drugs That Treat Condition"), find("Drug Dosage for Condition"))
        };
        let tree = agent.tree_mut();
        if let Some((id, required)) = age_group {
            // Last required entity is AgeGroup (appended by the SME slot
            // customisation).
            if let Some(&age) = required.last() {
                tree.logic.set_elicitation(id, age, "Adult or pediatric?");
            }
            if let Some(&first) = required.first() {
                tree.logic.set_elicitation(id, first, "For which condition?");
            }
        }
        if let Some((id, required)) = condition {
            if let Some(&age) = required.last() {
                tree.logic.set_elicitation(id, age, "Adult or pediatric?");
            }
        }
        // Glossary terms for definition-request repair (§6.3 line 8-9).
        tree.add_glossary(
            "effective",
            "the capacity for beneficial change (or therapeutic effect) of a given intervention.",
        );
        tree.add_glossary(
            "contraindication",
            "a condition or factor that makes a particular treatment inadvisable.",
        );
        tree.add_glossary(
            "black box warning",
            "the strongest warning the FDA requires, indicating a serious or life-threatening risk.",
        );
        tree.add_glossary(
            "iv compatibility",
            "whether two intravenous preparations can be administered together without degradation.",
        );
        // Brand and base-with-salt synonyms resolve to the canonical drug.
        let drug_concept = {
            // The agent's space no longer exposes the ontology directly;
            // DRUG_GENERAL's required entity is the Drug concept.
            agent.space().intent_by_name("DRUG_GENERAL").map(|i| i.required_entities[0])
        };
        if let Some(drug_concept) = drug_concept {
            for (canonical, synonym) in drug_instance_synonyms() {
                agent.nlu_mut().add_instance_synonym(drug_concept, &canonical, &synonym);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced-scale system shared by tests (bootstrap is the expensive
    /// part; build it once).
    fn mdx() -> ConversationalMdx {
        ConversationalMdx::with_config(MdxDataConfig { drugs: 80, seed: 7 })
    }

    #[test]
    fn space_matches_paper_inventory() {
        let (_, _, _, space) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let inv = space.inventory();
        assert_eq!(inv.lookup_intents, 14, "paper: 14 lookup intents; {inv:?}");
        assert_eq!(inv.relationship_intents, 8, "paper: 8 relationship intents; {inv:?}");
        assert_eq!(inv.management_intents, 13, "{inv:?}");
        assert_eq!(inv.entity_only_intents, 1, "DRUG_GENERAL; {inv:?}");
        assert_eq!(inv.intents_total, 36, "paper §7.1: 36 intents; {inv:?}");
        assert_eq!(inv.entities, 59, "one entity per concept; {inv:?}");
        assert!(inv.training_examples > 400, "{inv:?}");
    }

    #[test]
    fn table5_intent_names_exist() {
        let (_, _, _, space) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        for name in [
            "Drug Dosage for Condition",
            "Administration of Drug",
            "IV Compatibility of Drug",
            "Drugs That Treat Condition",
            "Uses of Drug",
            "Adverse Effects of Drug",
            "Drug-Drug Interactions",
            "DRUG_GENERAL",
            "Dose Adjustments for Drug",
            "Regulatory Status for Drug",
            "Pharmacokinetics",
        ] {
            assert!(space.intent_by_name(name).is_some(), "missing intent `{name}`");
        }
    }

    #[test]
    fn treatment_request_requires_condition_and_age_group() {
        let (onto, _, _, space) =
            ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 80, seed: 7 });
        let treat = space.intent_by_name("Drugs That Treat Condition").unwrap();
        let condition = onto.concept_id("Condition").unwrap();
        let age = onto.concept_id("AgeGroup").unwrap();
        assert_eq!(treat.required_entities, vec![condition, age]);
        let tpl = &space.templates_for(treat.id)[0];
        assert!(tpl.template.sql().contains("'<@Condition>'"), "{}", tpl.template.sql());
        assert!(tpl.template.sql().contains("'<@AgeGroup>'"), "{}", tpl.template.sql());
    }

    #[test]
    fn transcript_flow_treatment_with_elicitation() {
        let mut m = mdx();
        // §6.3 lines 02-05.
        let r = m.agent.respond("show me drugs that treat psoriasis");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Elicitation, "{r:?}");
        assert_eq!(r.text, "Adult or pediatric?");
        let r = m.agent.respond("adult");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Fulfilment, "{r:?}");
        assert!(r.text.contains("Acitretin") || r.text.contains("Adalimumab"), "{}", r.text);
        // Incremental modification (line 06): "I mean pediatric".
        let r = m.agent.respond("I mean pediatric");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Fulfilment, "{r:?}");
        assert!(r.text.contains("Tazarotene") || r.text.contains("Fluocinonide"), "{}", r.text);
    }

    #[test]
    fn transcript_flow_definition_and_dosage() {
        let mut m = mdx();
        m.agent.respond("show me drugs that treat psoriasis");
        m.agent.respond("pediatric");
        // Line 08: definition request.
        let r = m.agent.respond("what do you mean by effective?");
        assert!(r.text.contains("beneficial change"), "{}", r.text);
        // Line 12: dosage with context reuse (psoriasis + pediatric carried
        // over).
        let r = m.agent.respond("dosage for Tazarotene");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Fulfilment, "{r:?}");
        assert!(r.text.contains("Tazorac"), "{}", r.text);
        // Line 14: incremental drug switch.
        let r = m.agent.respond("how about for Fluocinonide?");
        assert!(r.text.contains("0.1% cream"), "{}", r.text);
    }

    #[test]
    fn transcript_flow_user_480_keyword_search() {
        let mut m = mdx();
        // "cogentin" resolves through the brand synonym to Benztropine
        // Mesylate and triggers a proposal.
        let r = m.agent.respond("cogentin");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Proposal, "{r:?}");
        assert!(r.text.contains("Benztropine Mesylate"), "{}", r.text);
        let r = m.agent.respond("no");
        assert!(r.text.contains("modify your search"), "{}", r.text);
        // "cogentin adverse effects" now carries intent + entity.
        let r = m.agent.respond("cogentin adverse effects");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Fulfilment, "{r:?}");
    }

    #[test]
    fn partial_drug_name_disambiguation() {
        let mut m = mdx();
        let r = m.agent.respond("calcium");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Disambiguation, "{r:?}");
        assert!(r.text.contains("Calcium Carbonate"), "{}", r.text);
        assert!(r.text.contains("Calcium Citrate"), "{}", r.text);
        let r = m.agent.respond("calcium carbonate");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Proposal, "{r:?}");
    }

    #[test]
    fn optional_severity_narrows_adverse_effects() {
        let mut m = mdx();
        let baseline = m.agent.respond("adverse effects of Aspirin");
        assert_eq!(baseline.kind, obcs_agent::ReplyKind::Fulfilment);
        let baseline_lines = baseline.text.lines().count();
        m.agent.reset();
        // "severe" is a Severity instance: captured as an optional entity,
        // the lookup narrows to severe effects only (Table 4).
        let narrowed = m.agent.respond("severe adverse effects of Aspirin");
        assert_eq!(narrowed.kind, obcs_agent::ReplyKind::Fulfilment, "{narrowed:?}");
        assert!(
            narrowed.text.lines().count() <= baseline_lines,
            "severity filter must not widen the result:\n{}\nvs\n{}",
            narrowed.text,
            baseline.text
        );
    }

    #[test]
    fn side_effects_synonym_resolves() {
        let mut m = mdx();
        let r = m.agent.respond("what are the side effects of aspirin");
        assert_eq!(r.kind, obcs_agent::ReplyKind::Fulfilment, "{r:?}");
        assert!(r.found_results, "{r:?}");
    }
}
