//! MDX synonym dictionaries (paper Table 2 + §6.1 brand and base-with-salt
//! synonyms).

use obcs_core::entities::SynonymDict;

use crate::data::CURATED_DRUGS;

/// The concept-level synonym dictionary of Table 2, extended with the
/// domain vocabulary the §6.3 transcripts exercise ("side effects").
pub fn concept_synonyms() -> SynonymDict {
    let mut dict = SynonymDict::new();
    dict.add("Adverse Effect", &["side effect", "side effects", "adverse reaction", "AE"]);
    dict.add("Condition", &["disease", "finding", "disorder", "indication"]);
    dict.add("Drug", &["medicine", "meds", "medication", "substance"]);
    dict.add("Precaution", &["caution", "safe to give", "warnings to consider"]);
    dict.add(
        "Dose Adjustment",
        &["dosing modification", "dose reduction", "increased dosage", "modifications to dosing"],
    );
    dict.add("Dosage", &["dose", "dosing", "dose amount"]);
    dict.add(
        "Use",
        &[
            "uses",
            "indication for use",
            "what is it for",
            "indications",
            "indicated use",
            "purpose",
            "used for",
        ],
    );
    dict.add("Drug Interaction", &["interaction", "interactions"]);
    dict.add("Iv Compatibility", &["iv compatibility", "y-site compatibility", "iv compat"]);
    dict.add("Administration", &["how to give", "how to take", "administration instructions"]);
    dict.add("Regulatory Status", &["regulatory", "schedule status", "legal status"]);
    dict.add("Black Box Warning", &["boxed warning", "black box"]);
    dict.add("Contra Indication", &["contraindication", "contraindications", "do not use with"]);
    dict.add("Mechanism Of Action", &["mechanism", "how it works", "moa", "pharmacology"]);
    dict.add(
        "Pharmacokinetics",
        &[
            "pk",
            "kinetics",
            "half life",
            "metabolism",
            "pharmacokinetic profile",
            "how it is metabolized",
        ],
    );
    dict.add("Toxicology", &["overdose", "poisoning", "tox", "toxicity", "too much"]);
    dict.add("Monitoring", &["labs to monitor", "monitoring parameters"]);
    dict
}

/// Instance-level synonyms: every curated drug answers to its brand name
/// and its base-with-salt description (§6.1: Cyclogel → Cyclopentolate).
/// Returns `(canonical drug name, synonym)` pairs.
pub fn drug_instance_synonyms() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (name, brand, salt, _) in CURATED_DRUGS {
        if !brand.eq_ignore_ascii_case(name) {
            out.push((name.to_string(), brand.to_string()));
        }
        if !salt.eq_ignore_ascii_case(name) {
            out.push((name.to_string(), salt.to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_entries_present() {
        let dict = concept_synonyms();
        assert!(dict.synonyms_of("Adverse Effect").iter().any(|s| s == "side effect"));
        assert!(dict.synonyms_of("Drug").iter().any(|s| s == "medication"));
        assert!(dict.synonyms_of("Dose Adjustment").iter().any(|s| s == "dosing modification"));
    }

    #[test]
    fn cogentin_maps_to_benztropine() {
        let syn = drug_instance_synonyms();
        assert!(syn.iter().any(|(c, s)| c == "Benztropine Mesylate" && s == "Cogentin"));
        assert!(syn.iter().any(|(c, s)| c == "Cyclopentolate" && s == "Cyclogel"));
        assert!(syn
            .iter()
            .any(|(c, s)| c == "Cyclopentolate" && s == "Cyclopentolate Hydrochloride"));
    }

    #[test]
    fn no_self_synonyms() {
        for (c, s) in drug_instance_synonyms() {
            assert_ne!(c.to_lowercase(), s.to_lowercase());
        }
    }
}
