//! Synthetic MDX knowledge-base generation.
//!
//! The real Micromedex content is proprietary; this module generates a
//! seeded synthetic equivalent with the same *shape*: a drug reference
//! with ~150 drugs, ~48 conditions, categorical attribute vocabularies,
//! and one content set per dependent concept. Every drug, brand, and
//! condition mentioned in the paper's transcripts is included verbatim so
//! the §6.3 conversations replay against this KB.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Curated drugs: `(name, brand, base_salt, class)`. Contains every drug
/// of the paper's transcripts (Tazarotene/Tazorac, Fluocinonide,
/// Benztropine Mesylate/Cogentin, Cyclopentolate/Cyclogel, …).
pub const CURATED_DRUGS: &[(&str, &str, &str, &str)] = &[
    ("Aspirin", "Bayer", "Acetylsalicylic Acid", "NSAID"),
    ("Ibuprofen", "Advil", "Ibuprofen", "NSAID"),
    ("Acetaminophen", "Tylenol", "Acetaminophen", "Analgesic"),
    ("Tazarotene", "Tazorac", "Tazarotene", "Retinoid"),
    ("Fluocinonide", "Vanos", "Fluocinonide", "Corticosteroid"),
    ("Acitretin", "Soriatane", "Acitretin", "Retinoid"),
    ("Adalimumab", "Humira", "Adalimumab", "TNF Inhibitor"),
    ("Salicylic Acid", "Compound W", "Salicylic Acid", "Keratolytic"),
    ("Benztropine Mesylate", "Cogentin", "Benztropine Mesylate", "Anticholinergic"),
    ("Cyclopentolate", "Cyclogel", "Cyclopentolate Hydrochloride", "Mydriatic"),
    ("Benazepril", "Lotensin", "Benazepril Hydrochloride", "ACE Inhibitor"),
    ("Calcium Carbonate", "Tums", "Calcium Carbonate", "Antacid"),
    ("Calcium Citrate", "Citracal", "Calcium Citrate", "Calcium Supplement"),
    ("Citicoline", "Cognizin", "Citicoline Sodium", "Nootropic"),
    ("Pancreatin", "Creon", "Pancreatin", "Digestive Enzyme"),
    ("Warfarin", "Coumadin", "Warfarin Sodium", "Anticoagulant"),
    ("Heparin", "Hep-Lock", "Heparin Sodium", "Anticoagulant"),
    ("Amoxicillin", "Amoxil", "Amoxicillin Trihydrate", "Penicillin Antibiotic"),
    ("Azithromycin", "Zithromax", "Azithromycin Dihydrate", "Macrolide Antibiotic"),
    ("Ciprofloxacin", "Cipro", "Ciprofloxacin Hydrochloride", "Fluoroquinolone"),
    ("Doxycycline", "Vibramycin", "Doxycycline Hyclate", "Tetracycline"),
    ("Metformin", "Glucophage", "Metformin Hydrochloride", "Biguanide"),
    ("Insulin Glargine", "Lantus", "Insulin Glargine", "Insulin"),
    ("Lisinopril", "Zestril", "Lisinopril", "ACE Inhibitor"),
    ("Losartan", "Cozaar", "Losartan Potassium", "ARB"),
    ("Amlodipine", "Norvasc", "Amlodipine Besylate", "Calcium Channel Blocker"),
    ("Metoprolol", "Lopressor", "Metoprolol Tartrate", "Beta Blocker"),
    ("Atenolol", "Tenormin", "Atenolol", "Beta Blocker"),
    ("Atorvastatin", "Lipitor", "Atorvastatin Calcium", "Statin"),
    ("Simvastatin", "Zocor", "Simvastatin", "Statin"),
    ("Omeprazole", "Prilosec", "Omeprazole Magnesium", "Proton Pump Inhibitor"),
    ("Pantoprazole", "Protonix", "Pantoprazole Sodium", "Proton Pump Inhibitor"),
    ("Ranitidine", "Zantac", "Ranitidine Hydrochloride", "H2 Blocker"),
    ("Ondansetron", "Zofran", "Ondansetron Hydrochloride", "Antiemetic"),
    ("Prednisone", "Deltasone", "Prednisone", "Corticosteroid"),
    ("Hydrocortisone", "Cortef", "Hydrocortisone", "Corticosteroid"),
    ("Albuterol", "Ventolin", "Albuterol Sulfate", "Beta Agonist"),
    ("Montelukast", "Singulair", "Montelukast Sodium", "Leukotriene Antagonist"),
    ("Fluticasone", "Flonase", "Fluticasone Propionate", "Corticosteroid"),
    ("Cetirizine", "Zyrtec", "Cetirizine Hydrochloride", "Antihistamine"),
    ("Loratadine", "Claritin", "Loratadine", "Antihistamine"),
    ("Diphenhydramine", "Benadryl", "Diphenhydramine Hydrochloride", "Antihistamine"),
    ("Sertraline", "Zoloft", "Sertraline Hydrochloride", "SSRI"),
    ("Fluoxetine", "Prozac", "Fluoxetine Hydrochloride", "SSRI"),
    ("Escitalopram", "Lexapro", "Escitalopram Oxalate", "SSRI"),
    ("Venlafaxine", "Effexor", "Venlafaxine Hydrochloride", "SNRI"),
    ("Gabapentin", "Neurontin", "Gabapentin", "Anticonvulsant"),
    ("Lamotrigine", "Lamictal", "Lamotrigine", "Anticonvulsant"),
    ("Levetiracetam", "Keppra", "Levetiracetam", "Anticonvulsant"),
    ("Sumatriptan", "Imitrex", "Sumatriptan Succinate", "Triptan"),
    ("Morphine", "MS Contin", "Morphine Sulfate", "Opioid"),
    ("Oxycodone", "OxyContin", "Oxycodone Hydrochloride", "Opioid"),
    ("Tramadol", "Ultram", "Tramadol Hydrochloride", "Opioid"),
    ("Naloxone", "Narcan", "Naloxone Hydrochloride", "Opioid Antagonist"),
    ("Levothyroxine", "Synthroid", "Levothyroxine Sodium", "Thyroid Hormone"),
    ("Methotrexate", "Trexall", "Methotrexate Sodium", "Antimetabolite"),
    ("Cyclosporine", "Neoral", "Cyclosporine", "Immunosuppressant"),
    ("Tacrolimus", "Prograf", "Tacrolimus", "Immunosuppressant"),
    ("Furosemide", "Lasix", "Furosemide", "Loop Diuretic"),
    ("Hydrochlorothiazide", "Microzide", "Hydrochlorothiazide", "Thiazide Diuretic"),
    ("Spironolactone", "Aldactone", "Spironolactone", "Potassium-Sparing Diuretic"),
    ("Digoxin", "Lanoxin", "Digoxin", "Cardiac Glycoside"),
    ("Amiodarone", "Pacerone", "Amiodarone Hydrochloride", "Antiarrhythmic"),
    ("Clopidogrel", "Plavix", "Clopidogrel Bisulfate", "Antiplatelet"),
];

/// Name fragments for generated (non-curated) drugs.
const DRUG_PREFIXES: &[&str] = &[
    "Cardio", "Neuro", "Gastro", "Pulmo", "Derma", "Osteo", "Hema", "Nephro", "Hepato", "Immuno",
    "Endo", "Rheuma", "Onco",
];
const DRUG_STEMS: &[&str] =
    &["vast", "pril", "sart", "olol", "zol", "micin", "cyclin", "dipine", "xaban", "tinib"];
const DRUG_SUFFIXES: &[&str] = &["in", "ol", "ide", "ate", "one", "ium"];

/// Curated conditions: `(name, icd_code, category)`.
pub const CONDITIONS: &[(&str, &str, &str)] = &[
    ("Psoriasis", "L40", "dermatologic"),
    ("Fever", "R50", "general"),
    ("Acne", "L70", "dermatologic"),
    ("Bronchitis", "J40", "respiratory"),
    ("Hypertension", "I10", "cardiovascular"),
    ("Migraine", "G43", "neurologic"),
    ("Asthma", "J45", "respiratory"),
    ("Diabetes Mellitus", "E11", "endocrine"),
    ("Hyperlipidemia", "E78", "endocrine"),
    ("Depression", "F32", "psychiatric"),
    ("Anxiety", "F41", "psychiatric"),
    ("Epilepsy", "G40", "neurologic"),
    ("Parkinsonism", "G20", "neurologic"),
    ("Atrial Fibrillation", "I48", "cardiovascular"),
    ("Heart Failure", "I50", "cardiovascular"),
    ("Pneumonia", "J18", "respiratory"),
    ("Urinary Tract Infection", "N39", "genitourinary"),
    ("Otitis Media", "H66", "infectious"),
    ("Sinusitis", "J32", "respiratory"),
    ("Pharyngitis", "J02", "respiratory"),
    ("Gastroesophageal Reflux", "K21", "gastrointestinal"),
    ("Peptic Ulcer", "K27", "gastrointestinal"),
    ("Nausea", "R11", "gastrointestinal"),
    ("Constipation", "K59", "gastrointestinal"),
    ("Diarrhea", "R19", "gastrointestinal"),
    ("Eczema", "L30", "dermatologic"),
    ("Urticaria", "L50", "dermatologic"),
    ("Allergic Rhinitis", "J30", "respiratory"),
    ("Osteoarthritis", "M19", "musculoskeletal"),
    ("Rheumatoid Arthritis", "M06", "musculoskeletal"),
    ("Gout", "M10", "musculoskeletal"),
    ("Osteoporosis", "M81", "musculoskeletal"),
    ("Hypothyroidism", "E03", "endocrine"),
    ("Hyperthyroidism", "E05", "endocrine"),
    ("Anemia", "D64", "hematologic"),
    ("Deep Vein Thrombosis", "I82", "cardiovascular"),
    ("Pulmonary Embolism", "I26", "cardiovascular"),
    ("Stroke", "I63", "neurologic"),
    ("Insomnia", "G47", "neurologic"),
    ("Glaucoma", "H40", "ophthalmic"),
    ("Conjunctivitis", "H10", "ophthalmic"),
    ("Pain", "R52", "general"),
    ("Headache", "R51", "neurologic"),
    ("Obesity", "E66", "endocrine"),
    ("Chronic Kidney Disease", "N18", "renal"),
    ("Hepatitis", "K75", "hepatic"),
    ("Tuberculosis", "A15", "infectious"),
    ("Influenza", "J11", "infectious"),
];

/// Hand-pinned treatment facts used by the paper's transcripts:
/// `(condition, drugs)`.
pub const PINNED_TREATMENTS: &[(&str, &[&str])] = &[
    ("Psoriasis", &["Acitretin", "Adalimumab", "Fluocinonide", "Salicylic Acid", "Tazarotene"]),
    ("Fever", &["Aspirin", "Ibuprofen", "Acetaminophen"]),
    ("Acne", &["Tazarotene", "Doxycycline", "Salicylic Acid"]),
    ("Parkinsonism", &["Benztropine Mesylate"]),
    ("Bronchitis", &["Amoxicillin", "Azithromycin", "Doxycycline"]),
    ("Hypertension", &["Benazepril", "Lisinopril", "Losartan", "Amlodipine", "Metoprolol"]),
];

/// Pinned dosage texts (paper §6.3 lines 13 & 15): `(drug, condition,
/// age group, description)`.
pub const PINNED_DOSAGES: &[(&str, &str, &str, &str)] = &[
    (
        "Tazarotene",
        "Psoriasis",
        "pediatric",
        "Plaque psoriasis Tazorac(R) gel (12 years and older); initial, apply 0.05% gel \
         TOPICALLY every night to affected area; may increase to 0.1% gel or cream \
         TOPICALLY every night if indicated and tolerated.",
    ),
    (
        "Fluocinonide",
        "Psoriasis",
        "pediatric",
        "Plaque psoriasis 12 years or older; TOPICAL, apply 0.1% cream once or twice \
         daily to the affected area for maximum of 2 consecutive weeks and 60 grams/week.",
    ),
];

/// Categorical vocabularies for the satellite tables:
/// `(table, extra columns (name excluded), values per row)`.
struct SatSpec {
    table: &'static str,
    extra: &'static [(&'static str, ColumnType)],
    rows: &'static [&'static [&'static str]],
}

macro_rules! sat {
    ($table:literal, [$(($col:literal, $ty:ident)),*], [$($row:expr),* $(,)?]) => {
        SatSpec {
            table: $table,
            extra: &[$(($col, ColumnType::$ty)),*],
            rows: &[$($row),*],
        }
    };
}

fn satellite_specs() -> Vec<SatSpec> {
    vec![
        sat!(
            "age_group",
            [("min_age", Int), ("max_age", Int)],
            [
                &["adult", "18", "64"],
                &["pediatric", "0", "17"],
                &["geriatric", "65", "120"],
                &["neonatal", "0", "0"],
            ]
        ),
        sat!(
            "dose_unit",
            [("system", Text), ("abbreviation", Text)],
            [
                &["milligram", "metric", "mg"],
                &["milliliter", "metric", "mL"],
                &["microgram", "metric", "mcg"],
                &["gram", "metric", "g"],
                &["unit", "iu", "U"],
            ]
        ),
        sat!(
            "frequency",
            [("per_day", Int), ("interval_hours", Int)],
            [
                &["once daily", "1", "24"],
                &["twice daily", "2", "12"],
                &["three times daily", "3", "8"],
                &["every night", "1", "24"],
                &["every 6 hours", "4", "6"],
                &["weekly", "0", "168"],
            ]
        ),
        sat!(
            "therapy_duration",
            [("days", Int), ("note_text", Text)],
            [
                &["3 days", "3", "short course"],
                &["7 days", "7", "standard course"],
                &["2 weeks", "14", "extended course"],
                &["4 weeks", "28", "long course"],
                &["chronic", "0", "ongoing therapy"],
            ]
        ),
        sat!(
            "route",
            [("site", Text), ("invasive", Text)],
            [
                &["ORAL", "mouth", "no"],
                &["TOPICAL", "skin", "no"],
                &["INTRAVENOUS", "vein", "yes"],
                &["INTRAMUSCULAR", "muscle", "yes"],
                &["SUBCUTANEOUS", "subcutis", "yes"],
                &["OPHTHALMIC", "eye", "no"],
            ]
        ),
        sat!(
            "dose_form",
            [("physical_state", Text), ("strength_note", Text)],
            [
                &["tablet", "solid", "fixed strengths"],
                &["capsule", "solid", "fixed strengths"],
                &["gel", "semisolid", "0.05% and 0.1%"],
                &["cream", "semisolid", "0.1%"],
                &["solution", "liquid", "varied"],
                &["injection", "liquid", "varied"],
            ]
        ),
        sat!(
            "severity",
            [("rank", Int), ("action_required", Text)],
            [
                &["mild", "1", "monitor"],
                &["moderate", "2", "consider alternatives"],
                &["severe", "3", "discontinue"],
            ]
        ),
        sat!(
            "incidence",
            [("rate", Text)],
            [&["common", ">10%"], &["uncommon", "1-10%"], &["rare", "<1%"],]
        ),
        sat!(
            "organ_system",
            [("body_region", Text), ("icd_chapter", Text)],
            [
                &["gastrointestinal", "abdomen", "XI"],
                &["dermatologic", "skin", "XII"],
                &["neurologic", "nervous system", "VI"],
                &["cardiovascular", "heart", "IX"],
                &["renal", "kidney", "XIV"],
                &["hepatic", "liver", "XI"],
            ]
        ),
        sat!(
            "efficacy",
            [("rank", Int), ("definition", Text)],
            [
                &["effective", "1", "evidence favors efficacy"],
                &["possibly effective", "2", "evidence is inconclusive"],
                &["ineffective", "3", "evidence is against efficacy"],
            ]
        ),
        sat!(
            "evidence_rating",
            [("description", Text)],
            [
                &["category A", "randomized controlled trials"],
                &["category B", "nonrandomized studies"],
                &["category C", "expert opinion"],
            ]
        ),
        sat!(
            "recommendation",
            [("strength", Text)],
            [&["recommended", "strong"], &["conditional", "weak"], &["not recommended", "against"],]
        ),
        sat!(
            "absorption",
            [("description", Text)],
            [
                &["rapid", "peak within 1 hour"],
                &["moderate", "peak in 1-4 hours"],
                &["slow", "peak after 4 hours"],
            ]
        ),
        sat!(
            "distribution",
            [("description", Text)],
            [
                &["wide", "crosses most membranes"],
                &["plasma-bound", "high protein binding"],
                &["limited", "low volume of distribution"],
            ]
        ),
        sat!(
            "metabolism",
            [("description", Text)],
            [
                &["hepatic CYP3A4", "major oxidative pathway"],
                &["hepatic CYP2D6", "polymorphic pathway"],
                &["renal", "excreted largely unchanged"],
                &["plasma esterases", "hydrolysis in blood"],
            ]
        ),
        sat!(
            "excretion",
            [("description", Text)],
            [&["renal", "urine"], &["biliary", "feces"], &["mixed", "urine and feces"],]
        ),
        sat!(
            "half_life",
            [("hours", Int)],
            [&["short", "2"], &["intermediate", "8"], &["long", "24"], &["very long", "72"],]
        ),
        sat!(
            "toxic_dose",
            [("threshold", Text)],
            [
                &["low threshold", ">2x therapeutic dose"],
                &["moderate threshold", ">5x therapeutic dose"],
                &["high threshold", ">10x therapeutic dose"],
            ]
        ),
        sat!(
            "clinical_effect",
            [("description", Text)],
            [
                &["CNS depression", "sedation to coma"],
                &["arrhythmia", "cardiac conduction changes"],
                &["hepatotoxicity", "transaminase elevation"],
                &["nephrotoxicity", "acute kidney injury"],
            ]
        ),
        sat!(
            "overdose_treatment",
            [("description", Text)],
            [
                &["activated charcoal", "within 1 hour of ingestion"],
                &["supportive care", "airway, breathing, circulation"],
                &["specific antidote", "per toxin"],
                &["hemodialysis", "for dialyzable agents"],
            ]
        ),
        sat!(
            "lab_test",
            [("specimen", Text), ("units", Text)],
            [
                &["INR", "blood", "ratio"],
                &["serum creatinine", "blood", "mg/dL"],
                &["liver function panel", "blood", "U/L"],
                &["complete blood count", "blood", "cells/uL"],
                &["blood glucose", "blood", "mg/dL"],
            ]
        ),
        sat!(
            "schedule",
            [("authority", Text), ("restrictions", Text)],
            [
                &["Schedule II", "DEA", "no refills"],
                &["Schedule IV", "DEA", "limited refills"],
                &["Rx only", "FDA", "prescription required"],
                &["OTC", "FDA", "none"],
            ]
        ),
        sat!(
            "approval_status",
            [("description", Text)],
            [
                &["approved", "full marketing approval"],
                &["investigational", "trials ongoing"],
                &["withdrawn", "removed from market"],
            ]
        ),
        sat!(
            "solution",
            [("tonicity", Text), ("abbreviation", Text)],
            [
                &["normal saline", "isotonic", "NS"],
                &["dextrose 5%", "isotonic", "D5W"],
                &["lactated ringers", "isotonic", "LR"],
                &["half normal saline", "hypotonic", "1/2NS"],
            ]
        ),
        sat!(
            "compatibility_result",
            [("description", Text)],
            [
                &["compatible", "no precipitation or loss"],
                &["incompatible", "precipitation or degradation"],
                &["variable", "depends on concentration"],
            ]
        ),
        sat!(
            "patient_population",
            [("criteria", Text), ("note_text", Text)],
            [
                &["pregnancy", "pregnant patients", "weigh risk and benefit"],
                &["lactation", "breastfeeding patients", "consider infant exposure"],
                &["elderly", "age 65 and older", "start low, go slow"],
                &["renal impairment", "reduced kidney function", "adjust dose"],
                &["hepatic impairment", "reduced liver function", "adjust dose"],
            ]
        ),
        sat!(
            "pregnancy_category",
            [("risk_summary", Text), ("authority", Text)],
            [
                &["category A", "no demonstrated fetal risk", "FDA"],
                &["category B", "no evidence of risk in humans", "FDA"],
                &["category C", "risk cannot be ruled out", "FDA"],
                &["category D", "positive evidence of risk", "FDA"],
                &["category X", "contraindicated in pregnancy", "FDA"],
            ]
        ),
        sat!(
            "lactation_risk",
            [("description", Text)],
            [
                &["compatible", "usual doses pose minimal risk"],
                &["caution", "monitor the infant"],
                &["avoid", "significant infant exposure"],
            ]
        ),
        sat!(
            "renal_function",
            [("crcl_range", Text), ("stage", Text)],
            [
                &["normal renal function", "CrCl > 60", "stage 1-2"],
                &["moderate impairment", "CrCl 30-60", "stage 3"],
                &["severe impairment", "CrCl < 30", "stage 4-5"],
            ]
        ),
        sat!(
            "hepatic_function",
            [("child_pugh", Text), ("stage", Text)],
            [
                &["normal hepatic function", "none", "none"],
                &["mild impairment", "Child-Pugh A", "compensated"],
                &["moderate impairment", "Child-Pugh B", "significant"],
                &["severe impairment", "Child-Pugh C", "decompensated"],
            ]
        ),
        sat!(
            "drug_class",
            [("atc_code", Text), ("description", Text)],
            [
                &["NSAID", "M01A", "nonsteroidal anti-inflammatory"],
                &["Retinoid", "D05B", "vitamin A derivative"],
                &["Corticosteroid", "D07A", "anti-inflammatory steroid"],
                &["ACE Inhibitor", "C09A", "angiotensin converting enzyme inhibitor"],
                &["Beta Blocker", "C07A", "beta adrenergic antagonist"],
                &["Statin", "C10AA", "HMG-CoA reductase inhibitor"],
                &["SSRI", "N06AB", "selective serotonin reuptake inhibitor"],
                &["Opioid", "N02A", "opioid receptor agonist"],
                &["Antibiotic", "J01", "antibacterial"],
                &["Anticoagulant", "B01A", "blood thinner"],
            ]
        ),
        sat!(
            "drug_target",
            [("target_type", Text)],
            [
                &["COX-1", "enzyme"],
                &["COX-2", "enzyme"],
                &["retinoic acid receptor", "nuclear receptor"],
                &["ACE", "enzyme"],
                &["beta-1 receptor", "GPCR"],
                &["serotonin transporter", "transporter"],
                &["mu opioid receptor", "GPCR"],
                &["HMG-CoA reductase", "enzyme"],
            ]
        ),
        sat!(
            "interaction_effect",
            [("description", Text)],
            [
                &["increased bleeding", "additive anticoagulation"],
                &["reduced efficacy", "antagonism or induction"],
                &["QT prolongation", "additive cardiac effect"],
                &["serotonin syndrome", "additive serotonergic effect"],
                &["increased levels", "metabolic inhibition"],
            ]
        ),
        sat!(
            "food",
            [("category", Text), ("note_text", Text)],
            [
                &["grapefruit juice", "fruit", "CYP3A4 inhibition"],
                &["dairy", "calcium-rich", "chelation reduces absorption"],
                &["alcohol", "beverage", "additive CNS or hepatic effects"],
                &["high-fat meal", "meal", "alters absorption"],
            ]
        ),
        sat!(
            "warning_source",
            [("region", Text)],
            [&["FDA", "United States"], &["EMA", "Europe"],]
        ),
    ]
}

/// Size knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct MdxDataConfig {
    /// Total drugs (curated + generated).
    pub drugs: usize,
    pub seed: u64,
}

impl Default for MdxDataConfig {
    fn default() -> Self {
        MdxDataConfig { drugs: 150, seed: 20200614 }
    }
}

/// Builds the full synthetic MDX knowledge base.
pub fn build_mdx_kb(config: MdxDataConfig) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    create_schema(&mut kb);
    populate_satellites(&mut kb);
    populate_standalone(&mut kb);
    populate_conditions(&mut kb);
    let drug_names = populate_drugs(&mut kb, &mut rng, config.drugs);
    populate_bridges(&mut kb, &mut rng, &drug_names);
    populate_dependents(&mut kb, &mut rng, &drug_names);
    // Stats-guided secondary indexes (DESIGN.md §14): hash on PK/FK join
    // keys, ordered on high-cardinality text (e.g. drug.name for
    // LIKE-prefix). Purely an access-path change — results are
    // byte-identical to scans (the index-oracle property).
    kb.auto_index();
    kb
}

fn create_schema(kb: &mut KnowledgeBase) {
    use ColumnType::*;
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", Int)
            .column("name", Text)
            .column("brand", Text)
            .column("base_salt", Text)
            .column("description", Text)
            .column("drug_class_name", Text)
            .column("approval_year", Int)
            .primary_key("drug_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("condition")
            .column("condition_id", Int)
            .column("name", Text)
            .column("icd_code", Text)
            .column("description", Text)
            .column("category", Text)
            .primary_key("condition_id"),
    )
    .expect("mdx schema");
    // Satellite tables.
    for spec in satellite_specs() {
        let mut s = TableSchema::new(spec.table)
            .column(format!("{}_id", spec.table), Int)
            .column("name", Text)
            .primary_key(format!("{}_id", spec.table));
        for (col, ty) in spec.extra {
            s = s.column(*col, *ty);
        }
        kb.create_table(s).expect("mdx schema");
    }
    // Bridges.
    for bridge in ["treats", "may_cause"] {
        kb.create_table(
            TableSchema::new(bridge)
                .column(format!("{bridge}_id"), Int)
                .column("drug_id", Int)
                .column("condition_id", Int)
                .primary_key(format!("{bridge}_id"))
                .foreign_key("drug_id", "drug", "drug_id")
                .foreign_key("condition_id", "condition", "condition_id"),
        )
        .expect("mdx schema");
    }
    // Dependent tables: (table, satellite fk tables, extra text columns).
    let dependents: &[(&str, &[&str], &[&str])] = &[
        (
            "administration",
            &["route", "dose_form"],
            &["description", "instructions", "timing", "note"],
        ),
        (
            "adverse_effect",
            &["severity", "incidence", "organ_system"],
            &["description", "effect", "onset", "note"],
        ),
        (
            "dose_adjustment",
            &["renal_function", "hepatic_function"],
            &["description", "adjustment", "rationale", "note"],
        ),
        ("drug_interaction", &[], &["description", "summary", "onset", "note"]),
        (
            "iv_compatibility",
            &["solution", "compatibility_result"],
            &["description", "result_note", "study_basis", "note"],
        ),
        (
            "mechanism_of_action",
            &["drug_class", "drug_target"],
            &["description", "pathway", "pharmacology", "note"],
        ),
        ("monitoring", &["lab_test"], &["description", "parameter", "target_range", "note"]),
        (
            "pharmacokinetics",
            &["absorption", "distribution", "metabolism", "excretion", "half_life"],
            &["description", "profile", "kinetics_note", "note"],
        ),
        (
            "precaution",
            &["patient_population", "pregnancy_category", "lactation_risk"],
            &["description", "detail", "applies_to", "note"],
        ),
        (
            "regulatory_status",
            &["schedule", "approval_status"],
            &["description", "status_note", "region", "note"],
        ),
        ("risk", &[], &["description", "summary", "severity_note", "note"]),
        (
            "use",
            &["efficacy", "evidence_rating", "recommendation"],
            &["description", "indication_note", "evidence_note", "note"],
        ),
    ];
    for (table, sats, cols) in dependents {
        let mut s = TableSchema::new(*table)
            .column(format!("{table}_id"), Int)
            .column("drug_id", Int)
            .primary_key(format!("{table}_id"))
            .foreign_key("drug_id", "drug", "drug_id");
        for sat in *sats {
            s = s.column(format!("{sat}_id"), Int).foreign_key(
                format!("{sat}_id"),
                *sat,
                format!("{sat}_id"),
            );
        }
        for col in *cols {
            s = s.column(*col, Text);
        }
        kb.create_table(s).expect("mdx schema");
    }
    // Dosage and toxicology additionally reference condition (Fig. 6).
    kb.create_table(
        TableSchema::new("dosage")
            .column("dosage_id", Int)
            .column("drug_id", Int)
            .column("condition_id", Int)
            .column("age_group_id", Int)
            .column("dose_unit_id", Int)
            .column("frequency_id", Int)
            .column("therapy_duration_id", Int)
            .column("description", Text)
            .column("amount", Text)
            .column("regimen", Text)
            .column("note", Text)
            .primary_key("dosage_id")
            .foreign_key("drug_id", "drug", "drug_id")
            .foreign_key("condition_id", "condition", "condition_id")
            .foreign_key("age_group_id", "age_group", "age_group_id")
            .foreign_key("dose_unit_id", "dose_unit", "dose_unit_id")
            .foreign_key("frequency_id", "frequency", "frequency_id")
            .foreign_key("therapy_duration_id", "therapy_duration", "therapy_duration_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("toxicology")
            .column("toxicology_id", Int)
            .column("drug_id", Int)
            .column("condition_id", Int)
            .column("toxic_dose_id", Int)
            .column("clinical_effect_id", Int)
            .column("overdose_treatment_id", Int)
            .column("description", Text)
            .column("presentation", Text)
            .column("management", Text)
            .column("note", Text)
            .primary_key("toxicology_id")
            .foreign_key("drug_id", "drug", "drug_id")
            .foreign_key("condition_id", "condition", "condition_id")
            .foreign_key("toxic_dose_id", "toxic_dose", "toxic_dose_id")
            .foreign_key("clinical_effect_id", "clinical_effect", "clinical_effect_id")
            .foreign_key("overdose_treatment_id", "overdose_treatment", "overdose_treatment_id"),
    )
    .expect("mdx schema");
    // Hierarchy children: shared-PK specialisations.
    kb.create_table(
        TableSchema::new("contra_indication")
            .column("risk_id", Int)
            .column("description", Text)
            .column("basis", Text)
            .column("note", Text)
            .primary_key("risk_id")
            .foreign_key("risk_id", "risk", "risk_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("black_box_warning")
            .column("risk_id", Int)
            .column("warning_source_id", Int)
            .column("description", Text)
            .column("boxed_text", Text)
            .column("note", Text)
            .primary_key("risk_id")
            .foreign_key("risk_id", "risk", "risk_id")
            .foreign_key("warning_source_id", "warning_source", "warning_source_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("drug_drug_interaction")
            .column("drug_interaction_id", Int)
            .column("interaction_effect_id", Int)
            .column("description", Text)
            .column("management", Text)
            .column("documentation", Text)
            .primary_key("drug_interaction_id")
            .foreign_key("drug_interaction_id", "drug_interaction", "drug_interaction_id")
            .foreign_key("interaction_effect_id", "interaction_effect", "interaction_effect_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("drug_food_interaction")
            .column("drug_interaction_id", Int)
            .column("food_id", Int)
            .column("mechanism", Text)
            .column("management", Text)
            .column("documentation", Text)
            .primary_key("drug_interaction_id")
            .foreign_key("drug_interaction_id", "drug_interaction", "drug_interaction_id")
            .foreign_key("food_id", "food", "food_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("drug_lab_interaction")
            .column("drug_interaction_id", Int)
            .column("note_text", Text)
            .column("effect_on_test", Text)
            .column("documentation", Text)
            .primary_key("drug_interaction_id")
            .foreign_key("drug_interaction_id", "drug_interaction", "drug_interaction_id"),
    )
    .expect("mdx schema");
    // Standalone metadata.
    kb.create_table(
        TableSchema::new("citation")
            .column("citation_id", Int)
            .column("title", Text)
            .column("source", Text)
            .column("year", Int)
            .primary_key("citation_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("content_version")
            .column("content_version_id", Int)
            .column("version", Text)
            .column("released", Text)
            .column("editor", Text)
            .primary_key("content_version_id"),
    )
    .expect("mdx schema");
    kb.create_table(
        TableSchema::new("disclaimer")
            .column("disclaimer_id", Int)
            .column("title", Text)
            .column("body_text", Text)
            .column("audience", Text)
            .primary_key("disclaimer_id"),
    )
    .expect("mdx schema");
}

fn populate_satellites(kb: &mut KnowledgeBase) {
    for spec in satellite_specs() {
        for (i, row) in spec.rows.iter().enumerate() {
            let mut values = vec![Value::Int(i as i64), Value::text(row[0])];
            for (k, (_, ty)) in spec.extra.iter().enumerate() {
                let raw = row[k + 1];
                values.push(match ty {
                    ColumnType::Int => Value::Int(raw.parse().expect("numeric satellite value")),
                    _ => Value::text(raw),
                });
            }
            kb.insert(spec.table, values).expect("satellite row");
        }
    }
}

fn populate_standalone(kb: &mut KnowledgeBase) {
    for (i, (title, source, year)) in [
        ("Drug Reference Compendium", "editorial board", 2018),
        ("Toxicology Sources Review", "editorial board", 2019),
        ("Interaction Evidence Survey", "editorial board", 2019),
    ]
    .iter()
    .enumerate()
    {
        kb.insert(
            "citation",
            vec![
                Value::Int(i as i64),
                Value::text(*title),
                Value::text(*source),
                Value::Int(*year),
            ],
        )
        .expect("citation row");
    }
    kb.insert(
        "content_version",
        vec![
            Value::Int(0),
            Value::text("2019.07"),
            Value::text("2019-07-01"),
            Value::text("editorial board"),
        ],
    )
    .expect("version row");
    kb.insert(
        "disclaimer",
        vec![
            Value::Int(0),
            Value::text("Clinical decision support"),
            Value::text("Content is synthetic and for reproduction research only."),
            Value::text("clinicians"),
        ],
    )
    .expect("disclaimer row");
}

fn populate_conditions(kb: &mut KnowledgeBase) {
    for (i, (name, icd, category)) in CONDITIONS.iter().enumerate() {
        kb.insert(
            "condition",
            vec![
                Value::Int(i as i64),
                Value::text(*name),
                Value::text(*icd),
                Value::text(format!("{name} ({icd})")),
                Value::text(*category),
            ],
        )
        .expect("condition row");
    }
}

fn populate_drugs(kb: &mut KnowledgeBase, rng: &mut ChaCha8Rng, total: usize) -> Vec<String> {
    let mut names = Vec::new();
    for (i, (name, brand, salt, class)) in CURATED_DRUGS.iter().enumerate() {
        kb.insert(
            "drug",
            vec![
                Value::Int(i as i64),
                Value::text(*name),
                Value::text(*brand),
                Value::text(*salt),
                Value::text(format!("{name} ({class})")),
                Value::text(*class),
                Value::Int(1960 + (i as i64 * 7) % 60),
            ],
        )
        .expect("drug row");
        names.push(name.to_string());
    }
    // Generated tail: synthetic but plausible names, deterministic. The
    // prefix×stem×suffix space holds only ~780 distinct compositions, so
    // "large world" sizes (tens of thousands of drugs) must not rely on
    // rejection sampling alone: after a few collisions the base name gets
    // a deterministic numeric disambiguator instead of spinning forever.
    let mut taken: std::collections::HashSet<String> = names.iter().cloned().collect();
    while names.len() < total {
        let id = names.len() as i64;
        let mut name = String::new();
        for attempt in 0..8 {
            let base = capitalize(&format!(
                "{}{}{}",
                DRUG_PREFIXES[rng.gen_range(0..DRUG_PREFIXES.len())].to_lowercase(),
                DRUG_STEMS[rng.gen_range(0..DRUG_STEMS.len())],
                DRUG_SUFFIXES[rng.gen_range(0..DRUG_SUFFIXES.len())]
            ));
            let candidate = if attempt < 4 { base } else { format!("{base} {id}") };
            if taken.insert(candidate.clone()) {
                name = candidate;
                break;
            }
        }
        if name.is_empty() {
            // The `{base} {id}` form is unique per id; reaching here
            // would mean the same id retried, which cannot happen.
            unreachable!("drug name generation failed to disambiguate");
        }
        let class =
            ["Antibiotic", "Statin", "Beta Blocker", "SSRI", "NSAID"][rng.gen_range(0..5usize)];
        kb.insert(
            "drug",
            vec![
                Value::Int(id),
                Value::text(&name),
                Value::text(format!("{name}-XR")),
                Value::text(format!("{name} Hydrochloride")),
                Value::text(format!("{name} ({class})")),
                Value::text(class),
                Value::Int(1980 + (id * 3) % 40),
            ],
        )
        .expect("drug row");
        names.push(name);
    }
    names
}

fn condition_id(name: &str) -> i64 {
    CONDITIONS.iter().position(|(n, _, _)| *n == name).expect("pinned condition exists") as i64
}

fn drug_id(names: &[String], name: &str) -> i64 {
    names.iter().position(|n| n == name).expect("pinned drug exists") as i64
}

fn populate_bridges(kb: &mut KnowledgeBase, rng: &mut ChaCha8Rng, drugs: &[String]) {
    let mut treats_id = 0i64;
    let mut seen: std::collections::HashSet<(i64, i64)> = std::collections::HashSet::new();
    for (condition, pinned_drugs) in PINNED_TREATMENTS {
        let cid = condition_id(condition);
        for d in *pinned_drugs {
            let did = drug_id(drugs, d);
            if seen.insert((did, cid)) {
                kb.insert("treats", vec![Value::Int(treats_id), Value::Int(did), Value::Int(cid)])
                    .expect("treats row");
                treats_id += 1;
            }
        }
    }
    // Random coverage for the remaining drugs.
    let mut may_cause_id = 0i64;
    for (did, _) in drugs.iter().enumerate() {
        let did = did as i64;
        for _ in 0..rng.gen_range(1..=3) {
            let cid = rng.gen_range(0..CONDITIONS.len()) as i64;
            if seen.insert((did, cid)) {
                kb.insert("treats", vec![Value::Int(treats_id), Value::Int(did), Value::Int(cid)])
                    .expect("treats row");
                treats_id += 1;
            }
        }
        if rng.gen_bool(0.4) {
            let cid = rng.gen_range(0..CONDITIONS.len()) as i64;
            kb.insert(
                "may_cause",
                vec![Value::Int(may_cause_id), Value::Int(did), Value::Int(cid)],
            )
            .expect("may_cause row");
            may_cause_id += 1;
        }
    }
}

fn populate_dependents(kb: &mut KnowledgeBase, rng: &mut ChaCha8Rng, drugs: &[String]) {
    let sat_len = |table: &str| kb.table(table).expect("satellite table").len() as i64;
    let n = |rng: &mut ChaCha8Rng, table: &str, kb: &KnowledgeBase| {
        Value::Int(rng.gen_range(0..kb.table(table).expect("satellite").len() as i64))
    };
    let _ = sat_len;

    // --- Dosage (keyed off the treats bridge so dosage rows are for
    // conditions the drug actually treats). Pinned texts first.
    let treats_rows: Vec<(i64, i64)> = kb
        .table("treats")
        .expect("treats")
        .rows
        .iter()
        .map(|r| (r[1].as_int().expect("drug id"), r[2].as_int().expect("condition id")))
        .collect();
    let age_groups = kb.table("age_group").expect("age_group").len() as i64;
    let mut dosage_id = 0i64;
    let mut pinned_pairs: Vec<(i64, i64, i64)> = Vec::new();
    for (drug, condition, age, text) in PINNED_DOSAGES {
        let did = drug_id(drugs, drug);
        let cid = condition_id(condition);
        let aid = match *age {
            "adult" => 0,
            "pediatric" => 1,
            other => panic!("unknown pinned age group {other}"),
        };
        pinned_pairs.push((did, cid, aid));
        kb.insert(
            "dosage",
            vec![
                Value::Int(dosage_id),
                Value::Int(did),
                Value::Int(cid),
                Value::Int(aid),
                Value::Int(0),
                Value::Int(3), // every night
                Value::Int(2), // 2 weeks
                Value::text(*text),
                Value::text("0.05% gel"),
                Value::text("apply nightly"),
                Value::text("titrate as tolerated"),
            ],
        )
        .expect("dosage row");
        dosage_id += 1;
    }
    for &(did, cid) in &treats_rows {
        for aid in 0..2i64 {
            if pinned_pairs.contains(&(did, cid, aid)) {
                continue;
            }
            if rng.gen_bool(0.85) {
                let amount =
                    format!("{} mg", [5, 10, 20, 25, 50, 100, 250, 500][rng.gen_range(0..8usize)]);
                let freq = rng.gen_range(0..6i64);
                kb.insert(
                    "dosage",
                    vec![
                        Value::Int(dosage_id),
                        Value::Int(did),
                        Value::Int(cid),
                        Value::Int(aid % age_groups),
                        Value::Int(rng.gen_range(0..5)),
                        Value::Int(freq),
                        Value::Int(rng.gen_range(0..5)),
                        Value::text(format!(
                            "{} {amount} for {}, {} age group",
                            drugs[did as usize],
                            CONDITIONS[cid as usize].0,
                            if aid == 0 { "adult" } else { "pediatric" }
                        )),
                        Value::text(amount),
                        Value::text("per protocol"),
                        Value::text("see full monograph"),
                    ],
                )
                .expect("dosage row");
                dosage_id += 1;
            }
        }
    }

    // --- Risk with union partition.
    let mut risk_id = 0i64;
    for (did, name) in drugs.iter().enumerate() {
        for _ in 0..rng.gen_range(1..=2) {
            let is_ci = rng.gen_bool(0.6);
            kb.insert(
                "risk",
                vec![
                    Value::Int(risk_id),
                    Value::Int(did as i64),
                    Value::text(format!(
                        "{} risk: {}",
                        if is_ci { "contraindication" } else { "black box" },
                        name
                    )),
                    Value::text(format!("{name} risk summary {risk_id}")),
                    Value::text(["low", "medium", "high"][rng.gen_range(0..3usize)]),
                    Value::text("see monograph"),
                ],
            )
            .expect("risk row");
            if is_ci {
                kb.insert(
                    "contra_indication",
                    vec![
                        Value::Int(risk_id),
                        Value::text(format!("{name} is contraindicated in hypersensitivity")),
                        Value::text("hypersensitivity"),
                        Value::text("absolute"),
                    ],
                )
                .expect("ci row");
            } else {
                kb.insert(
                    "black_box_warning",
                    vec![
                        Value::Int(risk_id),
                        Value::Int(rng.gen_range(0..2)),
                        Value::text(format!("{name} carries a boxed warning")),
                        Value::text(format!("Serious risk associated with {name}.")),
                        Value::text("boxed"),
                    ],
                )
                .expect("bbw row");
            }
            risk_id += 1;
        }
    }

    // --- DrugInteraction with isA children.
    let mut ia_id = 0i64;
    for (did, name) in drugs.iter().enumerate() {
        for _ in 0..rng.gen_range(1..=3) {
            let kind = rng.gen_range(0..3);
            let partner = &drugs[rng.gen_range(0..drugs.len())];
            kb.insert(
                "drug_interaction",
                vec![
                    Value::Int(ia_id),
                    Value::Int(did as i64),
                    Value::text(match kind {
                        0 => format!("{name} interacts with {partner}"),
                        1 => format!("{name} interacts with food"),
                        _ => format!("{name} affects laboratory tests"),
                    }),
                    Value::text(format!("interaction summary {ia_id}")),
                    Value::text(["rapid", "delayed"][rng.gen_range(0..2usize)]),
                    Value::text("monitor closely"),
                ],
            )
            .expect("interaction row");
            match kind {
                0 => kb
                    .insert(
                        "drug_drug_interaction",
                        vec![
                            Value::Int(ia_id),
                            n(rng, "interaction_effect", kb),
                            Value::text(format!("{name} is contraindicated with {partner}")),
                            Value::text("avoid combination"),
                            Value::text("established"),
                        ],
                    )
                    .expect("ddi row"),
                1 => kb
                    .insert(
                        "drug_food_interaction",
                        vec![
                            Value::Int(ia_id),
                            n(rng, "food", kb),
                            Value::text("altered absorption"),
                            Value::text("separate administration"),
                            Value::text("probable"),
                        ],
                    )
                    .expect("dfi row"),
                _ => kb
                    .insert(
                        "drug_lab_interaction",
                        vec![
                            Value::Int(ia_id),
                            Value::text(format!("{name} may alter test results")),
                            Value::text("false elevation"),
                            Value::text("theoretical"),
                        ],
                    )
                    .expect("dli row"),
            }
            ia_id += 1;
        }
    }

    // --- Toxicology (links to Condition per Fig. 6): one record per drug.
    for (tox_id, (did, name)) in drugs.iter().enumerate().enumerate() {
        {
            let tox_id = tox_id as i64;
            kb.insert(
                "toxicology",
                vec![
                    Value::Int(tox_id),
                    Value::Int(did as i64),
                    Value::Int(rng.gen_range(0..CONDITIONS.len() as i64)),
                    n(rng, "toxic_dose", kb),
                    n(rng, "clinical_effect", kb),
                    n(rng, "overdose_treatment", kb),
                    Value::text(format!("{name} overdose profile")),
                    Value::text("nausea, vomiting, lethargy"),
                    Value::text("supportive care"),
                    Value::text("contact poison control"),
                ],
            )
            .expect("toxicology row");
        }
    }

    // --- Remaining per-drug content sets.
    struct Gen<'a> {
        table: &'a str,
        sats: &'a [&'a str],
        min: usize,
        max: usize,
        text: fn(&str, i64) -> [String; 4],
    }
    let generators: &[Gen] = &[
        Gen {
            table: "administration",
            sats: &["route", "dose_form"],
            min: 1,
            max: 2,
            text: |name, i| {
                [
                    format!("Administer {name} as directed"),
                    format!("take {name} with a full glass of water"),
                    "morning".to_string(),
                    format!("administration note {i}"),
                ]
            },
        },
        Gen {
            table: "adverse_effect",
            sats: &["severity", "incidence", "organ_system"],
            min: 2,
            max: 5,
            text: |name, i| {
                [
                    format!("{name} adverse effect {i}"),
                    ["nausea", "rash", "dizziness", "headache", "fatigue", "insomnia"]
                        [(i % 6) as usize]
                        .to_string(),
                    "within days".to_string(),
                    "usually transient".to_string(),
                ]
            },
        },
        Gen {
            table: "dose_adjustment",
            sats: &["renal_function", "hepatic_function"],
            min: 1,
            max: 2,
            text: |name, i| {
                [
                    format!("Reduce {name} dose in organ impairment"),
                    format!("reduce by {}%", 25 + (i % 3) * 25),
                    "reduced clearance".to_string(),
                    "re-evaluate weekly".to_string(),
                ]
            },
        },
        Gen {
            table: "iv_compatibility",
            sats: &["solution", "compatibility_result"],
            min: 1,
            max: 2,
            text: |name, i| {
                [
                    format!("{name} IV compatibility record {i}"),
                    "visual and chemical stability assessed".to_string(),
                    "physical compatibility study".to_string(),
                    "4 hour observation".to_string(),
                ]
            },
        },
        Gen {
            table: "mechanism_of_action",
            sats: &["drug_class", "drug_target"],
            min: 1,
            max: 1,
            text: |name, _| {
                [
                    format!("{name} mechanism of action"),
                    "receptor-level modulation".to_string(),
                    "dose-dependent effect".to_string(),
                    "see pharmacology section".to_string(),
                ]
            },
        },
        Gen {
            table: "monitoring",
            sats: &["lab_test"],
            min: 1,
            max: 2,
            text: |name, i| {
                [
                    format!("Monitor therapy with {name}"),
                    "laboratory parameter".to_string(),
                    "within reference range".to_string(),
                    format!("monitoring note {i}"),
                ]
            },
        },
        Gen {
            table: "pharmacokinetics",
            sats: &["absorption", "distribution", "metabolism", "excretion", "half_life"],
            min: 1,
            max: 1,
            text: |name, _| {
                [
                    format!("{name} pharmacokinetic profile"),
                    "single and multiple dose".to_string(),
                    "linear kinetics".to_string(),
                    "healthy volunteers".to_string(),
                ]
            },
        },
        Gen {
            table: "precaution",
            sats: &["patient_population", "pregnancy_category", "lactation_risk"],
            min: 1,
            max: 3,
            text: |name, i| {
                [
                    format!("Use {name} with caution in special populations"),
                    format!("precaution detail {i}"),
                    "special population".to_string(),
                    "weigh risks and benefits".to_string(),
                ]
            },
        },
        Gen {
            table: "regulatory_status",
            sats: &["schedule", "approval_status"],
            min: 1,
            max: 1,
            text: |name, _| {
                [
                    format!("{name} regulatory standing"),
                    "current marketing status".to_string(),
                    "United States".to_string(),
                    "subject to change".to_string(),
                ]
            },
        },
        Gen {
            table: "use",
            sats: &["efficacy", "evidence_rating", "recommendation"],
            min: 1,
            max: 3,
            text: |name, i| {
                [
                    format!("{name} labeled use {i}"),
                    "indicated per label".to_string(),
                    "supported by trials".to_string(),
                    "adult and pediatric where noted".to_string(),
                ]
            },
        },
    ];
    for g in generators {
        let mut row_id = 0i64;
        for (did, name) in drugs.iter().enumerate() {
            let count = if g.min == g.max { g.min } else { rng.gen_range(g.min..=g.max) };
            for _ in 0..count {
                let texts = (g.text)(name, row_id);
                let mut row = vec![Value::Int(row_id), Value::Int(did as i64)];
                for sat in g.sats {
                    row.push(n(rng, sat, kb));
                }
                row.extend(texts.into_iter().map(Value::Text));
                kb.insert(g.table, row).expect("dependent row");
                row_id += 1;
            }
        }
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_builds_with_default_config() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        assert_eq!(kb.table("drug").unwrap().len(), 150);
        assert_eq!(kb.table("condition").unwrap().len(), 48);
        assert!(kb.table("dosage").unwrap().len() > 200);
        assert!(kb.table("treats").unwrap().len() >= 150);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_mdx_kb(MdxDataConfig::default());
        let b = build_mdx_kb(MdxDataConfig::default());
        assert_eq!(a.table("drug").unwrap().rows, b.table("drug").unwrap().rows);
        assert_eq!(a.table("dosage").unwrap().rows, b.table("dosage").unwrap().rows);
    }

    #[test]
    fn pinned_transcript_facts_present() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        // Tazarotene pediatric psoriasis dosage text (§6.3 line 13).
        let rs = kb
            .query(
                "SELECT d.description FROM dosage d \
                 INNER JOIN drug g ON d.drug_id = g.drug_id \
                 INNER JOIN condition c ON d.condition_id = c.condition_id \
                 INNER JOIN age_group a ON d.age_group_id = a.age_group_id \
                 WHERE g.name = 'Tazarotene' AND c.name = 'Psoriasis' AND a.name = 'pediatric'",
            )
            .unwrap();
        assert!(rs.rows.iter().any(|r| r[0].to_string().contains("Tazorac")));
        // Cogentin exists as a brand.
        let rs = kb.query("SELECT name FROM drug WHERE brand = 'Cogentin'").unwrap();
        assert_eq!(rs.rows[0][0], Value::text("Benztropine Mesylate"));
    }

    #[test]
    fn psoriasis_treatments_include_transcript_drugs() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        let rs = kb
            .query(
                "SELECT DISTINCT g.name FROM drug g \
                 INNER JOIN treats t ON g.drug_id = t.drug_id \
                 INNER JOIN condition c ON t.condition_id = c.condition_id \
                 WHERE c.name = 'Psoriasis'",
            )
            .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        for expected in ["Acitretin", "Adalimumab", "Fluocinonide", "Salicylic Acid", "Tazarotene"]
        {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
    }

    #[test]
    fn risk_children_partition_risk() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        let risks = kb.table("risk").unwrap().len();
        let ci = kb.table("contra_indication").unwrap().len();
        let bbw = kb.table("black_box_warning").unwrap().len();
        assert_eq!(risks, ci + bbw, "union children partition the parent");
        assert!(risks > 50);
    }

    #[test]
    fn interaction_children_partition_parent() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        let parent = kb.table("drug_interaction").unwrap().len();
        let sum = kb.table("drug_drug_interaction").unwrap().len()
            + kb.table("drug_food_interaction").unwrap().len()
            + kb.table("drug_lab_interaction").unwrap().len();
        assert_eq!(parent, sum);
    }

    #[test]
    fn partial_name_bases_exist() {
        let kb = build_mdx_kb(MdxDataConfig::default());
        let rs = kb.query("SELECT name FROM drug WHERE name LIKE 'Calcium%'").unwrap();
        assert_eq!(rs.rows.len(), 2, "Calcium Carbonate and Calcium Citrate");
    }

    #[test]
    fn smaller_config_for_fast_tests() {
        let kb = build_mdx_kb(MdxDataConfig { drugs: 80, seed: 1 });
        assert_eq!(kb.table("drug").unwrap().len(), 80);
    }

    #[test]
    fn large_world_scales_past_the_compositional_namespace() {
        // The prefix×stem×suffix space holds ~780 names; a "large world"
        // must sail past it with unique, deterministic names (the old
        // rejection-sampling loop spun forever here).
        let kb = build_mdx_kb(MdxDataConfig { drugs: 2000, seed: 9 });
        assert_eq!(kb.table("drug").unwrap().len(), 2000);
        assert_eq!(kb.distinct_values("drug", "name").unwrap().len(), 2000, "names stay unique");
        let again = build_mdx_kb(MdxDataConfig { drugs: 2000, seed: 9 });
        assert_eq!(kb.table("drug").unwrap().rows, again.table("drug").unwrap().rows);
        assert!(kb.index_count() > 0, "the world is auto-indexed");
        assert_eq!(
            kb.prepare("SELECT name FROM drug WHERE drug_id = 1423").unwrap().access_label(),
            "index_eq"
        );
    }
}
