//! The MDX domain ontology: a hand-curated medical ontology at exactly the
//! scale the paper reports for the generated Micromedex ontology —
//! **59 concepts, 178 data properties, 58 relationships** (functional,
//! isA, unionOf) — with `Drug` and `Condition` as the hub entities of
//! Figure 2.

use obcs_ontology::{Ontology, OntologyBuilder};

/// Key concept: Drug (6 data properties).
pub const DRUG_PROPS: &[&str] =
    &["name", "brand", "base_salt", "description", "drug_class_name", "approval_year"];

/// Key concept: Condition (4 data properties).
pub const CONDITION_PROPS: &[&str] = &["name", "icd_code", "description", "category"];

/// The 14 dependent concepts of `Drug` (paper §6.1: 14 lookup intents),
/// each with 4 data properties. The first property is the *descriptive*
/// column projected by lookup templates.
pub const DEPENDENTS: &[(&str, [&str; 4])] = &[
    ("Administration", ["description", "instructions", "timing", "note"]),
    ("AdverseEffect", ["description", "effect", "onset", "note"]),
    ("Dosage", ["description", "amount", "regimen", "note"]),
    ("DoseAdjustment", ["description", "adjustment", "rationale", "note"]),
    ("DrugInteraction", ["description", "summary", "onset", "note"]),
    ("IvCompatibility", ["description", "result_note", "study_basis", "note"]),
    ("MechanismOfAction", ["description", "pathway", "pharmacology", "note"]),
    ("Monitoring", ["description", "parameter", "target_range", "note"]),
    ("Pharmacokinetics", ["description", "profile", "kinetics_note", "note"]),
    ("Precaution", ["description", "detail", "applies_to", "note"]),
    ("RegulatoryStatus", ["description", "status_note", "region", "note"]),
    ("Risk", ["description", "summary", "severity_note", "note"]),
    ("Toxicology", ["description", "presentation", "management", "note"]),
    ("Use", ["description", "indication_note", "evidence_note", "note"]),
];

/// Hierarchy children (3 data properties each): the `Risk` union members
/// and the `DrugInteraction` isA children of Figure 2.
pub const HIERARCHY_CHILDREN: &[(&str, [&str; 3])] = &[
    ("ContraIndication", ["description", "basis", "note"]),
    ("BlackBoxWarning", ["description", "boxed_text", "note"]),
    ("DrugDrugInteraction", ["description", "management", "documentation"]),
    ("DrugFoodInteraction", ["mechanism", "management", "documentation"]),
    ("DrugLabInteraction", ["note_text", "effect_on_test", "documentation"]),
];

/// Satellite concepts: categorical attributes of the dependent concepts
/// (never direct neighbours of a key concept, so they generate no intents
/// of their own). `(satellite, parent dependent, relation name, props)`.
/// 18 satellites carry 3 properties, 17 carry 2 → 88 in total.
pub const SATELLITES: &[(&str, &str, &str, &[&str])] = &[
    // Dosage facets.
    ("AgeGroup", "Dosage", "forAgeGroup", &["name", "min_age", "max_age"]),
    ("DoseUnit", "Dosage", "inUnit", &["name", "system", "abbreviation"]),
    ("Frequency", "Dosage", "atFrequency", &["name", "per_day", "interval_hours"]),
    ("TherapyDuration", "Dosage", "forDuration", &["name", "days", "note_text"]),
    // Administration facets.
    ("Route", "Administration", "viaRoute", &["name", "site", "invasive"]),
    ("DoseForm", "Administration", "inForm", &["name", "physical_state", "strength_note"]),
    // Adverse-effect facets.
    ("Severity", "AdverseEffect", "withSeverity", &["name", "rank", "action_required"]),
    ("Incidence", "AdverseEffect", "withIncidence", &["name", "rate"]),
    ("OrganSystem", "AdverseEffect", "onOrganSystem", &["name", "body_region", "icd_chapter"]),
    // Use facets.
    ("Efficacy", "Use", "withEfficacy", &["name", "rank", "definition"]),
    ("EvidenceRating", "Use", "withEvidence", &["name", "description"]),
    ("Recommendation", "Use", "withRecommendation", &["name", "strength"]),
    // Pharmacokinetics facets.
    ("Absorption", "Pharmacokinetics", "hasAbsorption", &["name", "description"]),
    ("Distribution", "Pharmacokinetics", "hasDistribution", &["name", "description"]),
    ("Metabolism", "Pharmacokinetics", "hasMetabolism", &["name", "description"]),
    ("Excretion", "Pharmacokinetics", "hasExcretion", &["name", "description"]),
    ("HalfLife", "Pharmacokinetics", "hasHalfLife", &["name", "hours"]),
    // Toxicology facets.
    ("ToxicDose", "Toxicology", "atToxicDose", &["name", "threshold"]),
    ("ClinicalEffect", "Toxicology", "withClinicalEffect", &["name", "description"]),
    ("OverdoseTreatment", "Toxicology", "treatedBy", &["name", "description"]),
    // Monitoring facets.
    ("LabTest", "Monitoring", "usesLabTest", &["name", "specimen", "units"]),
    // Regulatory facets.
    ("Schedule", "RegulatoryStatus", "underSchedule", &["name", "authority", "restrictions"]),
    ("ApprovalStatus", "RegulatoryStatus", "withApproval", &["name", "description"]),
    // IV compatibility facets.
    ("Solution", "IvCompatibility", "inSolution", &["name", "tonicity", "abbreviation"]),
    ("CompatibilityResult", "IvCompatibility", "withResult", &["name", "description"]),
    // Precaution facets.
    ("PatientPopulation", "Precaution", "forPopulation", &["name", "criteria", "note_text"]),
    (
        "PregnancyCategory",
        "Precaution",
        "inPregnancyCategory",
        &["name", "risk_summary", "authority"],
    ),
    ("LactationRisk", "Precaution", "withLactationRisk", &["name", "description"]),
    // Dose-adjustment facets.
    ("RenalFunction", "DoseAdjustment", "forRenalFunction", &["name", "crcl_range", "stage"]),
    ("HepaticFunction", "DoseAdjustment", "forHepaticFunction", &["name", "child_pugh", "stage"]),
    // Mechanism facets.
    ("DrugClass", "MechanismOfAction", "inClass", &["name", "atc_code", "description"]),
    ("DrugTarget", "MechanismOfAction", "onTarget", &["name", "target_type"]),
    // Hierarchy-child facets.
    ("InteractionEffect", "DrugDrugInteraction", "withEffect", &["name", "description"]),
    ("Food", "DrugFoodInteraction", "withFood", &["name", "category", "note_text"]),
    ("WarningSource", "BlackBoxWarning", "issuedBy", &["name", "region"]),
];

/// Standalone reference-metadata concepts (3 data properties each, no
/// relationships).
pub const STANDALONE: &[(&str, [&str; 3])] = &[
    ("Citation", ["title", "source", "year"]),
    ("ContentVersion", ["version", "released", "editor"]),
    ("Disclaimer", ["title", "body_text", "audience"]),
];

/// Builds the MDX domain ontology.
pub fn build_mdx_ontology() -> Ontology {
    let mut b = OntologyBuilder::new("mdx")
        .data("Drug", DRUG_PROPS)
        .data("Condition", CONDITION_PROPS)
        .concept_described(
            "Drug",
            "a substance used in the diagnosis, treatment, or prevention of disease",
        )
        .concept_described("Condition", "a disease, finding, or disorder affecting a patient");
    for (name, props) in DEPENDENTS {
        b = b.data(name, props.as_slice());
        b = b.relation(&format!("has{name}"), "Drug", name);
    }
    // Key-to-key relationships.
    b = b.relation_with_inverse("treats", "is treated by", "Drug", "Condition");
    b = b.relation_with_inverse("may cause", "may be caused by", "Drug", "Condition");
    // Indirect links realising Fig. 6: Dosage and Toxicology connect to
    // Condition.
    b = b.relation("dosageFor", "Dosage", "Condition");
    b = b.relation("toxicFor", "Toxicology", "Condition");
    // Hierarchy.
    for (name, props) in HIERARCHY_CHILDREN {
        b = b.data(name, props.as_slice());
    }
    b = b.union("Risk", &["ContraIndication", "BlackBoxWarning"]);
    b = b.is_a("DrugDrugInteraction", "DrugInteraction");
    b = b.is_a("DrugFoodInteraction", "DrugInteraction");
    b = b.is_a("DrugLabInteraction", "DrugInteraction");
    // Satellites.
    for (name, parent, relation, props) in SATELLITES {
        b = b.data(name, props);
        b = b.relation(relation, parent, name);
    }
    // Standalone metadata concepts.
    for (name, props) in STANDALONE {
        b = b.data(name, props.as_slice());
    }
    // Glossary-bearing descriptions (used by definition-request repair).
    b = b
        .concept_described(
            "Efficacy",
            "the capacity for beneficial change (or therapeutic effect) of a given intervention",
        )
        .concept_described(
            "ContraIndication",
            "a condition or factor that makes a particular treatment inadvisable",
        )
        .concept_described(
            "BlackBoxWarning",
            "the strongest warning the FDA requires, indicating a serious or life-threatening risk",
        )
        .concept_described("AdverseEffect", "an unintended and harmful reaction to a medication")
        .concept_described(
            "IvCompatibility",
            "whether two intravenous preparations can be administered together",
        );
    b.build().expect("static MDX ontology is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_ontology::validate;

    #[test]
    fn matches_paper_scale_59_178_58() {
        let o = build_mdx_ontology();
        assert_eq!(o.concept_count(), 59, "paper: 59 concepts");
        assert_eq!(o.data_property_count(), 178, "paper: 178 properties");
        assert_eq!(o.object_property_count(), 58, "paper: 58 relationships");
    }

    #[test]
    fn ontology_validates_cleanly() {
        let o = build_mdx_ontology();
        let issues = validate(&o);
        assert!(issues.is_empty(), "{:?}", issues.iter().map(|i| i.render(&o)).collect::<Vec<_>>());
    }

    #[test]
    fn figure2_structures_present() {
        let o = build_mdx_ontology();
        let risk = o.concept_id("Risk").unwrap();
        assert_eq!(o.union_members(risk).len(), 2);
        let di = o.concept_id("DrugInteraction").unwrap();
        assert_eq!(o.is_a_children(di).len(), 3);
        let drug = o.concept_id("Drug").unwrap();
        let treats = o.outgoing(drug).find(|op| op.name == "treats").expect("treats edge");
        assert_eq!(treats.inverse_name.as_deref(), Some("is treated by"));
        assert_eq!(o.concept_name(treats.target), "Condition");
    }

    #[test]
    fn glossary_descriptions_present() {
        let o = build_mdx_ontology();
        let eff = o.concept_by_name("Efficacy").unwrap();
        assert!(eff.description.as_deref().unwrap().contains("beneficial change"));
    }

    #[test]
    fn full_mdx_ontology_round_trips_through_turtle() {
        let o = build_mdx_ontology();
        let ttl = obcs_ontology::turtle::to_turtle(&o);
        let back = obcs_ontology::turtle::from_turtle(&ttl).expect("round-trip");
        assert_eq!(back.concept_count(), 59);
        assert_eq!(back.data_property_count(), 178);
        assert_eq!(back.object_property_count(), 58);
        assert!(validate(&back).is_empty());
    }

    #[test]
    fn drug_is_the_hub() {
        let o = build_mdx_ontology();
        let drug = o.concept_id("Drug").unwrap();
        // 14 dependents + 2 condition edges.
        assert_eq!(o.outgoing(drug).count(), 16);
    }
}
