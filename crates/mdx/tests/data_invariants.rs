//! Invariant tests over the synthetic MDX knowledge base: the shape
//! properties the bootstrapper and evaluation rely on must hold at every
//! scale and seed.

use obcs_kb::Value;
use obcs_mdx::data::{build_mdx_kb, MdxDataConfig, CONDITIONS, CURATED_DRUGS};
use obcs_mdx::ontology::build_mdx_ontology;
use obcs_nlq::OntologyMapping;

#[test]
fn every_concept_with_instances_has_a_table() {
    let onto = build_mdx_ontology();
    let kb = build_mdx_kb(MdxDataConfig { drugs: 70, seed: 3 });
    let mapping = OntologyMapping::infer(&onto, &kb);
    let mut unmapped = Vec::new();
    for c in onto.concepts() {
        if mapping.table(c.id).is_none() {
            unmapped.push(c.name.clone());
        }
    }
    assert!(unmapped.is_empty(), "concepts without tables: {unmapped:?}");
}

#[test]
fn every_ontology_relationship_has_a_join() {
    let onto = build_mdx_ontology();
    let kb = build_mdx_kb(MdxDataConfig { drugs: 70, seed: 3 });
    let mapping = OntologyMapping::infer(&onto, &kb);
    let mut unjoined = Vec::new();
    for op in onto.object_properties() {
        if mapping.join(op.id).is_none() {
            unjoined.push(format!(
                "{} -[{}]-> {}",
                onto.concept_name(op.source),
                op.name,
                onto.concept_name(op.target)
            ));
        }
    }
    assert!(unjoined.is_empty(), "relationships without joins: {unjoined:?}");
}

#[test]
fn scales_and_seeds_vary_but_curated_content_is_stable() {
    for (drugs, seed) in [(64usize, 1u64), (100, 2), (150, 3)] {
        let kb = build_mdx_kb(MdxDataConfig { drugs, seed });
        assert_eq!(kb.table("drug").unwrap().len(), drugs);
        // Curated drugs always occupy the first rows in curated order.
        for (i, (name, ..)) in CURATED_DRUGS.iter().take(drugs).enumerate() {
            let row = kb
                .table("drug")
                .unwrap()
                .row_by_pk(&Value::Int(i as i64))
                .expect("curated drug present");
            assert_eq!(row[1], Value::text(*name));
        }
        assert_eq!(kb.table("condition").unwrap().len(), CONDITIONS.len());
    }
}

#[test]
fn dosage_rows_reference_only_treated_conditions_or_pins() {
    let kb = build_mdx_kb(MdxDataConfig { drugs: 70, seed: 5 });
    let treats: std::collections::HashSet<(i64, i64)> = kb
        .table("treats")
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[1].as_int().unwrap(), r[2].as_int().unwrap()))
        .collect();
    for row in &kb.table("dosage").unwrap().rows {
        let pair = (row[1].as_int().unwrap(), row[2].as_int().unwrap());
        assert!(
            treats.contains(&pair),
            "dosage row for a (drug, condition) pair the drug does not treat: {pair:?}"
        );
    }
}

#[test]
fn every_drug_has_full_reference_coverage() {
    // The content sets a clinician expects for every monograph must be
    // present for every drug (min-1 generation policy).
    let kb = build_mdx_kb(MdxDataConfig { drugs: 70, seed: 9 });
    let n = kb.table("drug").unwrap().len();
    for table in [
        "administration",
        "mechanism_of_action",
        "pharmacokinetics",
        "regulatory_status",
        "use",
        "adverse_effect",
        "precaution",
        "dose_adjustment",
        "iv_compatibility",
        "monitoring",
        "toxicology",
        "drug_interaction",
        "risk",
    ] {
        let t = kb.table(table).unwrap();
        let covered: std::collections::HashSet<i64> =
            t.rows.iter().map(|r| r[1].as_int().expect("drug_id column")).collect();
        assert_eq!(covered.len(), n, "table `{table}` does not cover every drug");
    }
}

#[test]
fn pk_as_fk_children_are_subsets_of_parents() {
    let kb = build_mdx_kb(MdxDataConfig { drugs: 70, seed: 11 });
    for (parent, children) in [
        ("risk", vec!["contra_indication", "black_box_warning"]),
        (
            "drug_interaction",
            vec!["drug_drug_interaction", "drug_food_interaction", "drug_lab_interaction"],
        ),
    ] {
        let parent_keys: std::collections::HashSet<i64> =
            kb.table(parent).unwrap().rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut child_total = 0;
        for child in children {
            let t = kb.table(child).unwrap();
            child_total += t.len();
            for row in &t.rows {
                assert!(
                    parent_keys.contains(&row[0].as_int().unwrap()),
                    "{child} row outside {parent}"
                );
            }
        }
        assert_eq!(child_total, parent_keys.len(), "{parent} children partition it");
    }
}

#[test]
fn generated_drug_names_are_unique_and_capitalised() {
    let kb = build_mdx_kb(MdxDataConfig { drugs: 150, seed: 13 });
    let names: Vec<String> =
        kb.table("drug").unwrap().rows.iter().map(|r| r[1].to_string()).collect();
    let mut deduped = names.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), names.len(), "duplicate drug names");
    for n in &names {
        assert!(n.chars().next().unwrap().is_uppercase(), "drug name not capitalised: {n}");
    }
}
