//! Structural validation of an ontology.
//!
//! The hybrid ontology-creation workflow of the paper (§3) lets SMEs refine
//! an automatically generated ontology; validation catches the mistakes
//! that refinement can introduce before the bootstrapper consumes the
//! ontology.

use std::collections::HashSet;

use crate::model::{ConceptId, Ontology};

/// A problem found in an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// An `isA`/`unionOf` cycle exists through this concept.
    HierarchyCycle(ConceptId),
    /// A concept is isolated: no object properties and no data properties.
    IsolatedConcept(ConceptId),
    /// A union parent has fewer than two members (unions must partition).
    DegenerateUnion { parent: ConceptId, members: usize },
    /// The same child appears multiple times under one union parent.
    DuplicateUnionMember { parent: ConceptId, child: ConceptId },
    /// A concept is simultaneously a union member and an isA child of the
    /// same parent — ambiguous semantics.
    MixedHierarchy { parent: ConceptId, child: ConceptId },
}

impl ValidationIssue {
    /// Renders the issue with concept names resolved.
    pub fn render(&self, onto: &Ontology) -> String {
        match self {
            ValidationIssue::HierarchyCycle(c) => {
                format!("hierarchy cycle through `{}`", onto.concept_name(*c))
            }
            ValidationIssue::IsolatedConcept(c) => {
                format!("concept `{}` has no properties or relationships", onto.concept_name(*c))
            }
            ValidationIssue::DegenerateUnion { parent, members } => format!(
                "union `{}` has {} member(s); unions need at least 2",
                onto.concept_name(*parent),
                members
            ),
            ValidationIssue::DuplicateUnionMember { parent, child } => format!(
                "union `{}` lists member `{}` more than once",
                onto.concept_name(*parent),
                onto.concept_name(*child)
            ),
            ValidationIssue::MixedHierarchy { parent, child } => format!(
                "`{}` is both an isA child and a union member of `{}`",
                onto.concept_name(*child),
                onto.concept_name(*parent)
            ),
        }
    }
}

/// Validates the ontology, returning all issues found (empty = valid).
pub fn validate(onto: &Ontology) -> Vec<ValidationIssue> {
    let mut issues = Vec::new();
    check_cycles(onto, &mut issues);
    check_isolated(onto, &mut issues);
    check_unions(onto, &mut issues);
    issues
}

fn check_cycles(onto: &Ontology, issues: &mut Vec<ValidationIssue>) {
    // DFS over hierarchical edges (child -> parent direction).
    let n = onto.concept_count();
    // 0 = unvisited, 1 = on stack, 2 = done
    let mut state = vec![0u8; n];
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, Vec<usize>)> =
            vec![(start, hierarchy_parents(onto, ConceptId(start as u32)))];
        state[start] = 1;
        while let Some((node, children)) = stack.last_mut() {
            if let Some(next) = children.pop() {
                match state[next] {
                    0 => {
                        state[next] = 1;
                        let parents = hierarchy_parents(onto, ConceptId(next as u32));
                        stack.push((next, parents));
                    }
                    1 => issues.push(ValidationIssue::HierarchyCycle(ConceptId(next as u32))),
                    _ => {}
                }
            } else {
                state[*node] = 2;
                stack.pop();
            }
        }
    }
}

fn hierarchy_parents(onto: &Ontology, c: ConceptId) -> Vec<usize> {
    onto.outgoing(c).filter(|op| op.kind.is_hierarchical()).map(|op| op.target.0 as usize).collect()
}

fn check_isolated(onto: &Ontology, issues: &mut Vec<ValidationIssue>) {
    for c in onto.concepts() {
        let has_edges = onto.neighbors(c.id).next().is_some();
        if !has_edges && c.data_properties.is_empty() {
            issues.push(ValidationIssue::IsolatedConcept(c.id));
        }
    }
}

fn check_unions(onto: &Ontology, issues: &mut Vec<ValidationIssue>) {
    for c in onto.concepts() {
        let members = onto.union_members(c.id);
        if members.is_empty() {
            continue;
        }
        if members.len() < 2 {
            issues.push(ValidationIssue::DegenerateUnion { parent: c.id, members: members.len() });
        }
        let mut seen = HashSet::new();
        for &m in &members {
            if !seen.insert(m) {
                issues.push(ValidationIssue::DuplicateUnionMember { parent: c.id, child: m });
            }
        }
        let isa_children: HashSet<ConceptId> = onto.is_a_children(c.id).into_iter().collect();
        for &m in &members {
            if isa_children.contains(&m) {
                issues.push(ValidationIssue::MixedHierarchy { parent: c.id, child: m });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ontology;

    #[test]
    fn valid_ontology_has_no_issues() {
        let mut o = Ontology::new("t");
        let risk = o.add_concept("Risk").unwrap();
        let ci = o.add_concept("CI").unwrap();
        let bbw = o.add_concept("BBW").unwrap();
        o.add_union(risk, &[ci, bbw]).unwrap();
        assert!(validate(&o).is_empty());
    }

    #[test]
    fn detects_isa_cycle() {
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        o.add_is_a(a, b).unwrap();
        o.add_is_a(b, a).unwrap();
        let issues = validate(&o);
        assert!(issues.iter().any(|i| matches!(i, ValidationIssue::HierarchyCycle(_))));
    }

    #[test]
    fn detects_isolated_concept() {
        let mut o = Ontology::new("t");
        let lonely = o.add_concept("Lonely").unwrap();
        let issues = validate(&o);
        assert_eq!(issues, vec![ValidationIssue::IsolatedConcept(lonely)]);
        // Adding a data property cures isolation.
        o.add_data_property(lonely, "name").unwrap();
        assert!(validate(&o).is_empty());
    }

    #[test]
    fn detects_degenerate_union() {
        let mut o = Ontology::new("t");
        let risk = o.add_concept("Risk").unwrap();
        let ci = o.add_concept("CI").unwrap();
        o.add_union(risk, &[ci]).unwrap();
        let issues = validate(&o);
        assert!(issues
            .iter()
            .any(|i| matches!(i, ValidationIssue::DegenerateUnion { members: 1, .. })));
    }

    #[test]
    fn detects_duplicate_union_member() {
        let mut o = Ontology::new("t");
        let risk = o.add_concept("Risk").unwrap();
        let ci = o.add_concept("CI").unwrap();
        let bbw = o.add_concept("BBW").unwrap();
        o.add_union(risk, &[ci, bbw, ci]).unwrap();
        let issues = validate(&o);
        assert!(issues.iter().any(|i| matches!(i, ValidationIssue::DuplicateUnionMember { .. })));
    }

    #[test]
    fn detects_mixed_hierarchy() {
        let mut o = Ontology::new("t");
        let p = o.add_concept("P").unwrap();
        let c1 = o.add_concept("C1").unwrap();
        let c2 = o.add_concept("C2").unwrap();
        o.add_union(p, &[c1, c2]).unwrap();
        o.add_is_a(c1, p).unwrap();
        let issues = validate(&o);
        assert!(issues.iter().any(|i| matches!(i, ValidationIssue::MixedHierarchy { .. })));
    }

    #[test]
    fn issue_rendering_mentions_names() {
        let mut o = Ontology::new("t");
        o.add_concept("Quiet").unwrap();
        let issues = validate(&o);
        assert!(issues[0].render(&o).contains("Quiet"));
    }
}
