//! OWL export/import in Turtle syntax.
//!
//! The paper describes ontologies with OWL \[1\] and has SMEs refine the
//! OWL description directly (§4.2.2). This module writes the ontology as
//! Turtle using the OWL vocabulary — `owl:Class`, `owl:DatatypeProperty`,
//! `owl:ObjectProperty`, `rdfs:subClassOf` for isA, `owl:unionOf` for
//! union parents — and parses that subset back, so ontologies can round-
//! trip through files SMEs edit.
//!
//! The parser accepts exactly the subset the writer produces (one
//! statement per line, `obcs:` prefixed names); it is a faithful exchange
//! format for this system, not a general Turtle implementation.

use std::collections::HashMap;
use std::fmt;

use crate::model::{Ontology, RelationKind};

/// Errors from Turtle parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurtleError {
    /// A line could not be parsed.
    Syntax { line: usize, message: String },
    /// A statement referenced an undeclared class.
    UnknownClass { line: usize, name: String },
    /// The resulting ontology was structurally inconsistent.
    Inconsistent(String),
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurtleError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            TurtleError::UnknownClass { line, name } => {
                write!(f, "line {line}: unknown class `{name}`")
            }
            TurtleError::Inconsistent(msg) => write!(f, "inconsistent ontology: {msg}"),
        }
    }
}

impl std::error::Error for TurtleError {}

/// Serialises the ontology as OWL/Turtle.
///
/// ```
/// use obcs_ontology::OntologyBuilder;
/// use obcs_ontology::turtle::{to_turtle, from_turtle};
///
/// let onto = OntologyBuilder::new("demo")
///     .data("Drug", &["name"])
///     .relation("treats", "Drug", "Indication")
///     .build()
///     .unwrap();
/// let ttl = to_turtle(&onto);
/// assert!(ttl.contains("obcs:Drug a owl:Class ."));
/// let back = from_turtle(&ttl).unwrap();
/// assert_eq!(back.concept_count(), 2);
/// ```
pub fn to_turtle(onto: &Ontology) -> String {
    let mut out = String::new();
    out.push_str("@prefix owl: <http://www.w3.org/2002/07/owl#> .\n");
    out.push_str("@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n");
    out.push_str(&format!("@prefix obcs: <urn:obcs:{}#> .\n\n", onto.name));
    for c in onto.concepts() {
        out.push_str(&format!("obcs:{} a owl:Class .\n", c.name));
        if let Some(desc) = &c.description {
            out.push_str(&format!("obcs:{} rdfs:comment \"{}\" .\n", c.name, escape(desc)));
        }
    }
    out.push('\n');
    for dp in onto.data_properties() {
        out.push_str(&format!(
            "obcs:{}.{} a owl:DatatypeProperty ; rdfs:domain obcs:{} .\n",
            onto.concept_name(dp.concept),
            dp.name,
            onto.concept_name(dp.concept)
        ));
    }
    out.push('\n');
    for op in onto.object_properties() {
        match op.kind {
            RelationKind::IsA => {
                out.push_str(&format!(
                    "obcs:{} rdfs:subClassOf obcs:{} .\n",
                    onto.concept_name(op.source),
                    onto.concept_name(op.target)
                ));
            }
            RelationKind::UnionOf => {
                out.push_str(&format!(
                    "obcs:{} owl:unionMember obcs:{} .\n",
                    onto.concept_name(op.target),
                    onto.concept_name(op.source)
                ));
            }
            kind => {
                let functional =
                    if kind == RelationKind::Functional { ", owl:FunctionalProperty" } else { "" };
                let inverse = op
                    .inverse_name
                    .as_ref()
                    .map(|inv| format!(" ; obcs:inverseLabel \"{}\"", escape(inv)))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "obcs:{} a owl:ObjectProperty{functional} ; rdfs:domain obcs:{} ; rdfs:range obcs:{}{inverse} .\n",
                    encode_name(&op.name),
                    onto.concept_name(op.source),
                    onto.concept_name(op.target)
                ));
            }
        }
    }
    out
}

/// Parses the Turtle subset produced by [`to_turtle`] back into an
/// ontology.
pub fn from_turtle(turtle: &str) -> Result<Ontology, TurtleError> {
    let mut name = "imported".to_string();
    // First pass: ontology name + classes.
    for line in turtle.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("@prefix obcs: <urn:obcs:") {
            if let Some(n) = rest.split('#').next() {
                name = n.to_string();
            }
        }
    }
    let mut onto = Ontology::new(name);
    let mut unions: HashMap<String, Vec<String>> = HashMap::new();

    for (i, raw) in turtle.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim().trim_end_matches('.').trim();
        if line.is_empty() || line.starts_with('@') || line.starts_with('#') {
            continue;
        }
        if let Some((subject, "a owl:Class")) = split_statement(line) {
            onto.add_concept(subject)
                .map_err(|e| TurtleError::Syntax { line: lineno, message: e.to_string() })?;
        }
    }
    // Second pass: everything that references classes.
    for (i, raw) in turtle.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim().trim_end_matches('.').trim();
        if line.is_empty() || line.starts_with('@') || line.starts_with('#') {
            continue;
        }
        let Some((subject, predicate)) = split_statement(line) else {
            return Err(TurtleError::Syntax {
                line: lineno,
                message: format!("unparseable statement `{line}`"),
            });
        };
        let class_id = |onto: &Ontology, n: &str| {
            onto.concept_id(n)
                .map_err(|_| TurtleError::UnknownClass { line: lineno, name: n.to_string() })
        };
        if predicate == "a owl:Class" {
            continue; // first pass
        } else if let Some(comment) = predicate.strip_prefix("rdfs:comment ") {
            let id = class_id(&onto, &subject)?;
            onto.set_description(id, unescape(comment.trim().trim_matches('"')))
                .map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
        } else if predicate.starts_with("a owl:DatatypeProperty") {
            let (class, prop) = subject.rsplit_once('.').ok_or(TurtleError::Syntax {
                line: lineno,
                message: "datatype property subject must be Class.prop".into(),
            })?;
            let id = class_id(&onto, class)?;
            onto.add_data_property(id, prop)
                .map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
        } else if let Some(parent) = predicate.strip_prefix("rdfs:subClassOf obcs:") {
            let child = class_id(&onto, &subject)?;
            let parent = class_id(&onto, parent.trim())?;
            onto.add_is_a(child, parent).map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
        } else if let Some(member) = predicate.strip_prefix("owl:unionMember obcs:") {
            unions.entry(subject).or_default().push(member.trim().to_string());
        } else if predicate.starts_with("a owl:ObjectProperty") {
            let functional = predicate.contains("owl:FunctionalProperty");
            let domain = extract(predicate, "rdfs:domain obcs:").ok_or(TurtleError::Syntax {
                line: lineno,
                message: "object property without rdfs:domain".into(),
            })?;
            let range = extract(predicate, "rdfs:range obcs:").ok_or(TurtleError::Syntax {
                line: lineno,
                message: "object property without rdfs:range".into(),
            })?;
            let source = class_id(&onto, &domain)?;
            let target = class_id(&onto, &range)?;
            let kind =
                if functional { RelationKind::Functional } else { RelationKind::Association };
            let prop = onto
                .add_object_property(decode_name(&subject), source, target, kind)
                .map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
            if let Some(inv) = extract_quoted(predicate, "obcs:inverseLabel ") {
                onto.set_inverse_name(prop, unescape(&inv));
            }
        } else {
            return Err(TurtleError::Syntax {
                line: lineno,
                message: format!("unsupported predicate `{predicate}`"),
            });
        }
    }
    // Apply unions.
    for (parent, members) in unions {
        let p = onto.concept_id(&parent).map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
        let ids = members
            .iter()
            .map(|m| onto.concept_id(m))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
        onto.add_union(p, &ids).map_err(|e| TurtleError::Inconsistent(e.to_string()))?;
    }
    Ok(onto)
}

/// Splits `obcs:Subject rest-of-statement` into `(Subject, rest)`.
fn split_statement(line: &str) -> Option<(String, &str)> {
    let rest = line.strip_prefix("obcs:")?;
    let (subject, predicate) = rest.split_once(' ')?;
    Some((subject.to_string(), predicate.trim()))
}

fn extract(predicate: &str, key: &str) -> Option<String> {
    let start = predicate.find(key)? + key.len();
    let rest = &predicate[start..];
    let end = rest.find(|c: char| c.is_whitespace() || c == ';').unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

fn extract_quoted(predicate: &str, key: &str) -> Option<String> {
    let start = predicate.find(key)? + key.len();
    let rest = predicate[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Relationship names may contain spaces ("may cause"); encode them for
/// the QName position.
fn encode_name(name: &str) -> String {
    name.replace(' ', "%20")
}

fn decode_name(name: &str) -> String {
    name.replace("%20", " ")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unescape(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OntologyBuilder;
    use crate::validate::validate;

    fn sample() -> Ontology {
        OntologyBuilder::new("mini")
            .data("Drug", &["name", "brand"])
            .data("Indication", &["name"])
            .data("Risk", &["summary"])
            .data("ContraIndication", &["description"])
            .data("BlackBoxWarning", &["description"])
            .data("DrugInteraction", &["description"])
            .data("DrugFoodInteraction", &["mechanism"])
            .concept_described("Drug", "a therapeutic substance")
            .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
            .relation("may cause", "Drug", "Indication")
            .union("Risk", &["ContraIndication", "BlackBoxWarning"])
            .is_a("DrugFoodInteraction", "DrugInteraction")
            .build()
            .unwrap()
    }

    #[test]
    fn turtle_contains_owl_vocabulary() {
        let ttl = to_turtle(&sample());
        assert!(ttl.contains("obcs:Drug a owl:Class ."));
        assert!(ttl.contains("obcs:Drug.name a owl:DatatypeProperty"));
        assert!(ttl.contains("obcs:treats a owl:ObjectProperty, owl:FunctionalProperty"));
        assert!(ttl.contains("rdfs:domain obcs:Drug"));
        assert!(ttl.contains("obcs:DrugFoodInteraction rdfs:subClassOf obcs:DrugInteraction"));
        assert!(ttl.contains("obcs:Risk owl:unionMember obcs:ContraIndication"));
        assert!(ttl.contains("obcs:inverseLabel \"is treated by\""));
        assert!(ttl.contains("rdfs:comment \"a therapeutic substance\""));
        assert!(ttl.contains("obcs:may%20cause"), "spaces encoded: {ttl}");
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let back = from_turtle(&to_turtle(&original)).expect("parse back");
        assert_eq!(back.name, original.name);
        assert_eq!(back.concept_count(), original.concept_count());
        assert_eq!(back.data_property_count(), original.data_property_count());
        assert_eq!(back.object_property_count(), original.object_property_count());
        let risk = back.concept_id("Risk").unwrap();
        assert_eq!(back.union_members(risk).len(), 2);
        let drug = back.concept_id("Drug").unwrap();
        assert_eq!(
            back.concept(drug).unwrap().description.as_deref(),
            Some("a therapeutic substance")
        );
        let treats = back.outgoing(drug).find(|op| op.name == "treats").unwrap();
        assert_eq!(treats.inverse_name.as_deref(), Some("is treated by"));
        assert_eq!(treats.kind, RelationKind::Functional);
        assert!(back.outgoing(drug).any(|op| op.name == "may cause"));
        assert!(validate(&back).is_empty());
    }

    #[test]
    fn mdx_scale_round_trip() {
        // The full builder API surface must survive: build a larger
        // ontology programmatically.
        let mut b = OntologyBuilder::new("big").data("Hub", &["name"]);
        for i in 0..30 {
            b = b.data(&format!("C{i}"), &["description", "note"]).relation(
                &format!("rel{i}"),
                "Hub",
                &format!("C{i}"),
            );
        }
        let o = b.build().unwrap();
        let back = from_turtle(&to_turtle(&o)).unwrap();
        assert_eq!(back.concept_count(), o.concept_count());
        assert_eq!(back.data_property_count(), o.data_property_count());
        assert_eq!(back.object_property_count(), o.object_property_count());
    }

    #[test]
    fn descriptions_with_quotes_escape() {
        let mut o = Ontology::new("q");
        let c = o.add_concept("A").unwrap();
        o.set_description(c, r#"the "quoted" concept \ with backslash"#).unwrap();
        let back = from_turtle(&to_turtle(&o)).unwrap();
        assert_eq!(
            back.concept_by_name("A").unwrap().description.as_deref(),
            Some(r#"the "quoted" concept \ with backslash"#)
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = from_turtle("obcs:Ghost rdfs:subClassOf obcs:AlsoGhost .").unwrap_err();
        assert!(matches!(err, TurtleError::UnknownClass { line: 1, .. }), "{err}");
        let err = from_turtle("complete nonsense here").unwrap_err();
        assert!(matches!(err, TurtleError::Syntax { .. }), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let ttl = "# a comment\n\nobcs:A a owl:Class .\n";
        let o = from_turtle(ttl).unwrap();
        assert_eq!(o.concept_count(), 1);
    }
}
