//! Graph algorithms over the ontology: shortest relationship paths and
//! bounded path enumeration.
//!
//! The bootstrapper uses these to find *indirect relationship patterns*
//! (paper §4.2.1, Fig. 6): pairs of key concepts connected via multi-hop
//! relationship chains through intermediate concepts. The NLQ service uses
//! shortest paths for join-path discovery when translating a natural
//! language query into SQL.

use std::collections::{HashMap, VecDeque};

use crate::model::{ConceptId, ObjectPropertyId, Ontology, RelationKind};

/// One hop of a relationship path: the edge traversed and the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    pub property: ObjectPropertyId,
    /// `true` if the edge was traversed source→target.
    pub forward: bool,
}

/// A path between two concepts as a sequence of hops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    pub start: ConceptId,
    pub hops: Vec<Hop>,
}

impl Path {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The concepts visited along the path, starting with `start`.
    pub fn concepts(&self, onto: &Ontology) -> Vec<ConceptId> {
        let mut out = vec![self.start];
        for hop in &self.hops {
            let op = onto.object_property(hop.property);
            out.push(if hop.forward { op.target } else { op.source });
        }
        out
    }

    /// The final concept of the path.
    pub fn end(&self, onto: &Ontology) -> ConceptId {
        *self.concepts(onto).last().expect("path has a start")
    }

    /// Renders the path as `A -[r]-> B <-[s]- C` for diagnostics.
    pub fn render(&self, onto: &Ontology) -> String {
        let mut s = onto.concept_name(self.start).to_string();
        for hop in &self.hops {
            let op = onto.object_property(hop.property);
            let next = if hop.forward { op.target } else { op.source };
            if hop.forward {
                s.push_str(&format!(" -[{}]-> {}", op.name, onto.concept_name(next)));
            } else {
                s.push_str(&format!(" <-[{}]- {}", op.name, onto.concept_name(next)));
            }
        }
        s
    }
}

/// Which edges a traversal may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeFilter {
    /// All edges, including isA/unionOf.
    All,
    /// Only domain relationships (Association/Functional).
    DomainOnly,
}

impl EdgeFilter {
    fn admits(self, kind: RelationKind) -> bool {
        match self {
            EdgeFilter::All => true,
            EdgeFilter::DomainOnly => !kind.is_hierarchical(),
        }
    }
}

/// Breadth-first shortest path between two concepts, treating edges as
/// undirected. Returns `None` if disconnected.
pub fn shortest_path(
    onto: &Ontology,
    from: ConceptId,
    to: ConceptId,
    filter: EdgeFilter,
) -> Option<Path> {
    if from == to {
        return Some(Path { start: from, hops: Vec::new() });
    }
    let mut prev: HashMap<ConceptId, (ConceptId, Hop)> = HashMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        for op in onto.outgoing(node).filter(|op| filter.admits(op.kind)) {
            step(
                onto,
                &mut prev,
                &mut queue,
                node,
                op.target,
                Hop { property: op.id, forward: true },
                from,
            );
        }
        for op in onto.incoming(node).filter(|op| filter.admits(op.kind)) {
            step(
                onto,
                &mut prev,
                &mut queue,
                node,
                op.source,
                Hop { property: op.id, forward: false },
                from,
            );
        }
        if prev.contains_key(&to) {
            break;
        }
    }
    prev.contains_key(&to).then(|| {
        let mut hops = Vec::new();
        let mut node = to;
        while node != from {
            let (p, hop) = prev[&node];
            hops.push(hop);
            node = p;
        }
        hops.reverse();
        Path { start: from, hops }
    })
}

fn step(
    _onto: &Ontology,
    prev: &mut HashMap<ConceptId, (ConceptId, Hop)>,
    queue: &mut VecDeque<ConceptId>,
    node: ConceptId,
    next: ConceptId,
    hop: Hop,
    from: ConceptId,
) {
    if next != from && !prev.contains_key(&next) {
        prev.insert(next, (node, hop));
        queue.push_back(next);
    }
}

/// Enumerates all simple paths (no repeated concept) between two concepts
/// with at most `max_hops` hops, treating edges as undirected.
///
/// Used to find indirect relationship patterns: the bootstrapper asks for
/// all 2-hop paths between pairs of key concepts.
pub fn paths_up_to(
    onto: &Ontology,
    from: ConceptId,
    to: ConceptId,
    max_hops: usize,
    filter: EdgeFilter,
) -> Vec<Path> {
    let mut results = Vec::new();
    let mut visited = vec![from];
    let mut hops = Vec::new();
    dfs(onto, from, to, max_hops, filter, &mut visited, &mut hops, &mut results);
    // Deterministic order: shorter paths first, then by hop ids.
    results.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| hop_key(a).cmp(&hop_key(b))));
    results
}

fn hop_key(p: &Path) -> Vec<(u32, bool)> {
    p.hops.iter().map(|h| (h.property.0, h.forward)).collect()
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    onto: &Ontology,
    node: ConceptId,
    to: ConceptId,
    budget: usize,
    filter: EdgeFilter,
    visited: &mut Vec<ConceptId>,
    hops: &mut Vec<Hop>,
    results: &mut Vec<Path>,
) {
    if node == to && !hops.is_empty() {
        results.push(Path { start: visited[0], hops: hops.clone() });
        return;
    }
    if budget == 0 {
        return;
    }
    let candidates: Vec<(ConceptId, Hop)> = onto
        .outgoing(node)
        .filter(|op| filter.admits(op.kind))
        .map(|op| (op.target, Hop { property: op.id, forward: true }))
        .chain(
            onto.incoming(node)
                .filter(|op| filter.admits(op.kind))
                .map(|op| (op.source, Hop { property: op.id, forward: false })),
        )
        .collect();
    for (next, hop) in candidates {
        if visited.contains(&next) {
            continue;
        }
        visited.push(next);
        hops.push(hop);
        dfs(onto, next, to, budget - 1, filter, visited, hops, results);
        hops.pop();
        visited.pop();
    }
}

/// Concepts reachable from `from` within `max_hops` undirected hops,
/// excluding `from` itself. Deterministic (sorted by id).
pub fn reachable_within(
    onto: &Ontology,
    from: ConceptId,
    max_hops: usize,
    filter: EdgeFilter,
) -> Vec<ConceptId> {
    let mut dist: HashMap<ConceptId, usize> = HashMap::new();
    dist.insert(from, 0);
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(node) = queue.pop_front() {
        let d = dist[&node];
        if d == max_hops {
            continue;
        }
        let neighbors: Vec<ConceptId> =
            onto.neighbors(node).filter(|(_, op)| filter.admits(op.kind)).map(|(c, _)| c).collect();
        for next in neighbors {
            dist.entry(next).or_insert_with(|| {
                queue.push_back(next);
                d + 1
            });
        }
    }
    let mut out: Vec<ConceptId> = dist.into_keys().filter(|&c| c != from).collect();
    out.sort();
    out
}

/// Whether the undirected ontology graph is connected (considering all
/// edges). An empty ontology is trivially connected.
pub fn is_connected(onto: &Ontology) -> bool {
    let n = onto.concept_count();
    if n <= 1 {
        return true;
    }
    let start = onto.concepts()[0].id;
    reachable_within(onto, start, n, EdgeFilter::All).len() == n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ontology, RelationKind};

    /// Drug --treats--> Indication, Drug --has--> Dosage --for--> Indication
    fn diamond() -> (Ontology, ConceptId, ConceptId, ConceptId) {
        let mut o = Ontology::new("t");
        let drug = o.add_concept("Drug").unwrap();
        let ind = o.add_concept("Indication").unwrap();
        let dosage = o.add_concept("Dosage").unwrap();
        o.add_object_property("treats", drug, ind, RelationKind::Association).unwrap();
        o.add_object_property("has", drug, dosage, RelationKind::Association).unwrap();
        o.add_object_property("for", dosage, ind, RelationKind::Association).unwrap();
        (o, drug, ind, dosage)
    }

    #[test]
    fn shortest_path_prefers_direct_edge() {
        let (o, drug, ind, _) = diamond();
        let p = shortest_path(&o, drug, ind, EdgeFilter::All).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.end(&o), ind);
    }

    #[test]
    fn shortest_path_same_node_is_empty() {
        let (o, drug, _, _) = diamond();
        let p = shortest_path(&o, drug, drug, EdgeFilter::All).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn shortest_path_uses_inverse_direction() {
        let (o, drug, ind, _) = diamond();
        let p = shortest_path(&o, ind, drug, EdgeFilter::All).unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.hops[0].forward);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        assert!(shortest_path(&o, a, b, EdgeFilter::All).is_none());
        assert!(!is_connected(&o));
    }

    #[test]
    fn paths_up_to_finds_direct_and_indirect() {
        let (o, drug, ind, dosage) = diamond();
        let paths = paths_up_to(&o, drug, ind, 2, EdgeFilter::All);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].len(), 1); // direct treats
        assert_eq!(paths[1].len(), 2); // via Dosage
        assert_eq!(paths[1].concepts(&o), vec![drug, dosage, ind]);
    }

    #[test]
    fn paths_respect_hop_budget() {
        let (o, drug, ind, _) = diamond();
        let paths = paths_up_to(&o, drug, ind, 1, EdgeFilter::All);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn domain_only_filter_skips_hierarchy() {
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        o.add_is_a(a, b).unwrap();
        assert!(shortest_path(&o, a, b, EdgeFilter::DomainOnly).is_none());
        assert!(shortest_path(&o, a, b, EdgeFilter::All).is_some());
    }

    #[test]
    fn render_shows_directions() {
        let (o, drug, ind, _) = diamond();
        let paths = paths_up_to(&o, drug, ind, 2, EdgeFilter::All);
        assert_eq!(paths[0].render(&o), "Drug -[treats]-> Indication");
        assert_eq!(paths[1].render(&o), "Drug -[has]-> Dosage -[for]-> Indication");
    }

    #[test]
    fn reachable_within_is_sorted_and_bounded() {
        let (o, drug, ind, dosage) = diamond();
        assert_eq!(reachable_within(&o, drug, 1, EdgeFilter::All), vec![ind, dosage]);
        let mut o2 = o.clone();
        let far = o2.add_concept("Far").unwrap();
        o2.add_object_property("r", ind, far, RelationKind::Association).unwrap();
        assert!(!reachable_within(&o2, drug, 1, EdgeFilter::All).contains(&far));
        assert!(reachable_within(&o2, drug, 2, EdgeFilter::All).contains(&far));
    }

    #[test]
    fn connectivity_of_diamond() {
        let (o, ..) = diamond();
        assert!(is_connected(&o));
    }
}
