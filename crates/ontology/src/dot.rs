//! Graphviz DOT export of an ontology, used by the `repro -- fig2` harness
//! to regenerate the paper's Figure 2 ontology snippet.

use std::fmt::Write as _;

use crate::model::{Ontology, RelationKind};

/// Renders the ontology as a Graphviz `digraph`.
///
/// Concepts become ellipse nodes, data properties become orange boxes (as in
/// the paper's Figure 2), and object properties become labelled edges with
/// hierarchy edges drawn dashed.
pub fn to_dot(onto: &Ontology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&onto.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=11];");
    for c in onto.concepts() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", c.id, escape(&c.name));
        for dp in onto.data_properties_of(c.id) {
            let node = format!("{}_dp{}", c.id, dp.id.0);
            let _ = writeln!(
                out,
                "  {node} [shape=box, style=filled, fillcolor=orange, fontsize=9, label=\"{}\"];",
                escape(&dp.name)
            );
            let _ = writeln!(out, "  {} -> {node} [arrowhead=none, style=dotted];", c.id);
        }
    }
    for op in onto.object_properties() {
        let style = match op.kind {
            RelationKind::IsA | RelationKind::UnionOf => ", style=dashed",
            _ => "",
        };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"{}];",
            op.source,
            op.target,
            escape(&op.name),
            style
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Ontology;

    #[test]
    fn dot_contains_nodes_edges_and_properties() {
        let mut o = Ontology::new("demo");
        let drug = o.add_concept("Drug").unwrap();
        let ind = o.add_concept("Indication").unwrap();
        o.add_data_property(drug, "name").unwrap();
        o.add_object_property("treats", drug, ind, RelationKind::Association).unwrap();
        let dot = to_dot(&o);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("label=\"Drug\""));
        assert!(dot.contains("label=\"treats\""));
        assert!(dot.contains("fillcolor=orange"));
    }

    #[test]
    fn hierarchy_edges_are_dashed() {
        let mut o = Ontology::new("demo");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        o.add_is_a(a, b).unwrap();
        assert!(to_dot(&o).contains("style=dashed"));
    }

    #[test]
    fn names_are_escaped() {
        let mut o = Ontology::new("has \"quotes\"");
        o.add_concept("A\"B").unwrap();
        let dot = to_dot(&o);
        assert!(dot.contains("has \\\"quotes\\\""));
        assert!(dot.contains("A\\\"B"));
    }
}
