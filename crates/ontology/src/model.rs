//! Core ontology data model: concepts, data properties, object properties,
//! subsumption (isA) and union (unionOf) relationships.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Stable identifier of a concept within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

/// Stable identifier of a data property within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataPropertyId(pub u32);

/// Stable identifier of an object property within one [`Ontology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectPropertyId(pub u32);

impl fmt::Display for ConceptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The semantics of an object property between two concepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// A plain many-to-many association.
    Association,
    /// A functional relationship: each source instance maps to at most one
    /// target instance.
    Functional,
    /// Subsumption: the *source* is a child of the *target* (`source isA
    /// target`).
    IsA,
    /// Union membership: the *source* is one of the mutually exclusive and
    /// exhaustive constituents of the *target* (`target = unionOf(...,
    /// source, ...)`).
    UnionOf,
}

impl RelationKind {
    /// Whether this kind encodes a hierarchy edge rather than a domain
    /// relationship.
    pub fn is_hierarchical(self) -> bool {
        matches!(self, RelationKind::IsA | RelationKind::UnionOf)
    }
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelationKind::Association => "association",
            RelationKind::Functional => "functional",
            RelationKind::IsA => "isA",
            RelationKind::UnionOf => "unionOf",
        };
        f.write_str(s)
    }
}

/// An OWL class: a domain entity type such as `Drug` or `Indication`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Concept {
    /// Identifier, equal to the concept's position in [`Ontology::concepts`].
    pub id: ConceptId,
    /// Unique human-readable name (e.g. `"Drug"`).
    pub name: String,
    /// Optional natural-language description used for definition-request
    /// repair in the dialogue layer.
    pub description: Option<String>,
    /// Data properties attached to this concept.
    pub data_properties: Vec<DataPropertyId>,
}

/// A data property (attribute) of a concept, e.g. `Drug.name`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataProperty {
    pub id: DataPropertyId,
    /// Property name, unique within its owning concept.
    pub name: String,
    /// Owning concept.
    pub concept: ConceptId,
}

/// A directed, named relationship between two concepts, e.g.
/// `Drug --treats--> Indication`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObjectProperty {
    pub id: ObjectPropertyId,
    /// Relationship name (e.g. `"treats"`). Not necessarily unique.
    pub name: String,
    /// Optional verbalisation of the inverse direction (e.g. `"is treated
    /// by"`), used when generating inverse relationship patterns (Fig. 5).
    pub inverse_name: Option<String>,
    pub source: ConceptId,
    pub target: ConceptId,
    pub kind: RelationKind,
}

/// Errors produced by ontology mutation and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// A concept with this name already exists.
    DuplicateConcept(String),
    /// A data property with this name already exists on the concept.
    DuplicateDataProperty { concept: String, property: String },
    /// A referenced concept id is not part of this ontology.
    UnknownConcept(ConceptId),
    /// A concept name lookup failed.
    UnknownConceptName(String),
    /// An edge would relate a concept to itself with hierarchical semantics.
    SelfHierarchy(String),
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::DuplicateConcept(name) => {
                write!(f, "concept `{name}` already exists")
            }
            OntologyError::DuplicateDataProperty { concept, property } => {
                write!(f, "data property `{property}` already exists on `{concept}`")
            }
            OntologyError::UnknownConcept(id) => write!(f, "unknown concept id {id}"),
            OntologyError::UnknownConceptName(name) => write!(f, "unknown concept `{name}`"),
            OntologyError::SelfHierarchy(name) => {
                write!(f, "concept `{name}` cannot be its own parent")
            }
        }
    }
}

impl std::error::Error for OntologyError {}

/// A domain ontology: concepts, their data properties, and the object
/// properties (relationships) between them.
///
/// The structure is append-only: concepts and properties can be added but
/// not removed, which keeps all ids stable — the bootstrapping pipeline
/// stores ids in derived artifacts (patterns, intents) and relies on this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    /// Ontology name, e.g. `"mdx"`.
    pub name: String,
    concepts: Vec<Concept>,
    data_properties: Vec<DataProperty>,
    object_properties: Vec<ObjectProperty>,
    #[serde(skip)]
    concept_index: HashMap<String, ConceptId>,
    /// Outgoing edges per concept (including hierarchical edges).
    #[serde(skip)]
    outgoing: Vec<Vec<ObjectPropertyId>>,
    /// Incoming edges per concept (including hierarchical edges).
    #[serde(skip)]
    incoming: Vec<Vec<ObjectPropertyId>>,
}

impl Ontology {
    /// Creates an empty ontology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Ontology {
            name: name.into(),
            concepts: Vec::new(),
            data_properties: Vec::new(),
            object_properties: Vec::new(),
            concept_index: HashMap::new(),
            outgoing: Vec::new(),
            incoming: Vec::new(),
        }
    }

    /// Rebuilds the derived indexes (name map, adjacency). Must be called
    /// after deserialisation; [`Ontology::from_json`] does so automatically.
    pub fn rebuild_indexes(&mut self) {
        self.concept_index = self.concepts.iter().map(|c| (c.name.clone(), c.id)).collect();
        self.outgoing = vec![Vec::new(); self.concepts.len()];
        self.incoming = vec![Vec::new(); self.concepts.len()];
        for op in &self.object_properties {
            self.outgoing[op.source.0 as usize].push(op.id);
            self.incoming[op.target.0 as usize].push(op.id);
        }
    }

    /// Parses an ontology from its JSON representation, rebuilding indexes.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut onto: Ontology = serde_json::from_str(json)?;
        onto.rebuild_indexes();
        Ok(onto)
    }

    /// Serialises the ontology to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ontology serialisation cannot fail")
    }

    /// Adds a concept; names must be unique.
    pub fn add_concept(&mut self, name: impl Into<String>) -> Result<ConceptId, OntologyError> {
        let name = name.into();
        if self.concept_index.contains_key(&name) {
            return Err(OntologyError::DuplicateConcept(name));
        }
        let id = ConceptId(self.concepts.len() as u32);
        self.concept_index.insert(name.clone(), id);
        self.concepts.push(Concept { id, name, description: None, data_properties: Vec::new() });
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        Ok(id)
    }

    /// Sets the natural-language description of a concept.
    pub fn set_description(
        &mut self,
        concept: ConceptId,
        description: impl Into<String>,
    ) -> Result<(), OntologyError> {
        let c = self
            .concepts
            .get_mut(concept.0 as usize)
            .ok_or(OntologyError::UnknownConcept(concept))?;
        c.description = Some(description.into());
        Ok(())
    }

    /// Adds a data property to a concept; property names must be unique per
    /// concept.
    pub fn add_data_property(
        &mut self,
        concept: ConceptId,
        name: impl Into<String>,
    ) -> Result<DataPropertyId, OntologyError> {
        let name = name.into();
        let concept_name = self.concept(concept)?.name.clone();
        let duplicate = self.concepts[concept.0 as usize]
            .data_properties
            .iter()
            .any(|&dp| self.data_properties[dp.0 as usize].name == name);
        if duplicate {
            return Err(OntologyError::DuplicateDataProperty {
                concept: concept_name,
                property: name,
            });
        }
        let id = DataPropertyId(self.data_properties.len() as u32);
        self.data_properties.push(DataProperty { id, name, concept });
        self.concepts[concept.0 as usize].data_properties.push(id);
        Ok(id)
    }

    /// Adds a directed object property between two concepts.
    pub fn add_object_property(
        &mut self,
        name: impl Into<String>,
        source: ConceptId,
        target: ConceptId,
        kind: RelationKind,
    ) -> Result<ObjectPropertyId, OntologyError> {
        let name = name.into();
        self.concept(source)?;
        self.concept(target)?;
        if kind.is_hierarchical() && source == target {
            return Err(OntologyError::SelfHierarchy(
                self.concepts[source.0 as usize].name.clone(),
            ));
        }
        let id = ObjectPropertyId(self.object_properties.len() as u32);
        self.object_properties.push(ObjectProperty {
            id,
            name,
            inverse_name: None,
            source,
            target,
            kind,
        });
        self.outgoing[source.0 as usize].push(id);
        self.incoming[target.0 as usize].push(id);
        Ok(id)
    }

    /// Records the inverse verbalisation of an object property (e.g.
    /// `treats` / `is treated by`).
    pub fn set_inverse_name(&mut self, prop: ObjectPropertyId, inverse: impl Into<String>) {
        if let Some(op) = self.object_properties.get_mut(prop.0 as usize) {
            op.inverse_name = Some(inverse.into());
        }
    }

    /// Declares `child isA parent`.
    pub fn add_is_a(
        &mut self,
        child: ConceptId,
        parent: ConceptId,
    ) -> Result<ObjectPropertyId, OntologyError> {
        self.add_object_property("isA", child, parent, RelationKind::IsA)
    }

    /// Declares `parent = unionOf(children...)`, adding one `unionOf` edge
    /// per child.
    pub fn add_union(
        &mut self,
        parent: ConceptId,
        children: &[ConceptId],
    ) -> Result<Vec<ObjectPropertyId>, OntologyError> {
        children
            .iter()
            .map(|&child| self.add_object_property("unionOf", child, parent, RelationKind::UnionOf))
            .collect()
    }

    /// Looks up a concept by id.
    pub fn concept(&self, id: ConceptId) -> Result<&Concept, OntologyError> {
        self.concepts.get(id.0 as usize).ok_or(OntologyError::UnknownConcept(id))
    }

    /// Looks up a concept by exact name.
    pub fn concept_by_name(&self, name: &str) -> Option<&Concept> {
        self.concept_index.get(name).map(|&id| &self.concepts[id.0 as usize])
    }

    /// Id of a concept by exact name.
    pub fn concept_id(&self, name: &str) -> Result<ConceptId, OntologyError> {
        self.concept_index
            .get(name)
            .copied()
            .ok_or_else(|| OntologyError::UnknownConceptName(name.to_string()))
    }

    /// Name of a concept; panics on an id from a different ontology.
    pub fn concept_name(&self, id: ConceptId) -> &str {
        &self.concepts[id.0 as usize].name
    }

    /// All concepts.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// All data properties.
    pub fn data_properties(&self) -> &[DataProperty] {
        &self.data_properties
    }

    /// Data property lookup by id.
    pub fn data_property(&self, id: DataPropertyId) -> &DataProperty {
        &self.data_properties[id.0 as usize]
    }

    /// Data properties of one concept.
    pub fn data_properties_of(&self, id: ConceptId) -> impl Iterator<Item = &DataProperty> {
        self.concepts[id.0 as usize]
            .data_properties
            .iter()
            .map(move |&dp| &self.data_properties[dp.0 as usize])
    }

    /// All object properties (including hierarchical edges).
    pub fn object_properties(&self) -> &[ObjectProperty] {
        &self.object_properties
    }

    /// Object property lookup by id.
    pub fn object_property(&self, id: ObjectPropertyId) -> &ObjectProperty {
        &self.object_properties[id.0 as usize]
    }

    /// Outgoing object properties of a concept.
    pub fn outgoing(&self, id: ConceptId) -> impl Iterator<Item = &ObjectProperty> {
        self.outgoing[id.0 as usize].iter().map(move |&op| &self.object_properties[op.0 as usize])
    }

    /// Incoming object properties of a concept.
    pub fn incoming(&self, id: ConceptId) -> impl Iterator<Item = &ObjectProperty> {
        self.incoming[id.0 as usize].iter().map(move |&op| &self.object_properties[op.0 as usize])
    }

    /// Undirected neighbourhood of a concept: every concept reachable over a
    /// single object property in either direction, paired with the edge.
    ///
    /// Hierarchical edges (isA/unionOf) are included; callers that only want
    /// domain relationships filter on [`ObjectProperty::kind`].
    pub fn neighbors(&self, id: ConceptId) -> impl Iterator<Item = (ConceptId, &ObjectProperty)> {
        let out = self.outgoing(id).map(|op| (op.target, op));
        let inc = self.incoming(id).map(|op| (op.source, op));
        out.chain(inc)
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of data properties across all concepts.
    pub fn data_property_count(&self) -> usize {
        self.data_properties.len()
    }

    /// Number of object properties (relationships), including isA/unionOf.
    pub fn object_property_count(&self) -> usize {
        self.object_properties.len()
    }

    /// Children of a concept under `isA` (i.e. concepts declared `isA` this
    /// concept).
    pub fn is_a_children(&self, parent: ConceptId) -> Vec<ConceptId> {
        self.incoming(parent)
            .filter(|op| op.kind == RelationKind::IsA)
            .map(|op| op.source)
            .collect()
    }

    /// Constituents of a union concept (empty if the concept is not a
    /// union).
    pub fn union_members(&self, parent: ConceptId) -> Vec<ConceptId> {
        self.incoming(parent)
            .filter(|op| op.kind == RelationKind::UnionOf)
            .map(|op| op.source)
            .collect()
    }

    /// Parents of a concept under `isA`.
    pub fn is_a_parents(&self, child: ConceptId) -> Vec<ConceptId> {
        self.outgoing(child).filter(|op| op.kind == RelationKind::IsA).map(|op| op.target).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Ontology, ConceptId, ConceptId) {
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        (o, a, b)
    }

    #[test]
    fn concept_names_are_unique() {
        let (mut o, _, _) = tiny();
        assert_eq!(o.add_concept("A"), Err(OntologyError::DuplicateConcept("A".into())));
    }

    #[test]
    fn data_properties_unique_per_concept_but_shared_across() {
        let (mut o, a, b) = tiny();
        o.add_data_property(a, "name").unwrap();
        assert!(o.add_data_property(a, "name").is_err());
        // Same property name on another concept is fine.
        o.add_data_property(b, "name").unwrap();
        assert_eq!(o.data_property_count(), 2);
    }

    #[test]
    fn neighbors_cover_both_directions() {
        let (mut o, a, b) = tiny();
        o.add_object_property("r", a, b, RelationKind::Association).unwrap();
        let from_a: Vec<_> = o.neighbors(a).map(|(c, _)| c).collect();
        let from_b: Vec<_> = o.neighbors(b).map(|(c, _)| c).collect();
        assert_eq!(from_a, vec![b]);
        assert_eq!(from_b, vec![a]);
    }

    #[test]
    fn self_hierarchy_rejected() {
        let (mut o, a, _) = tiny();
        assert!(matches!(o.add_is_a(a, a), Err(OntologyError::SelfHierarchy(_))));
        // A plain self-association is allowed (e.g. Drug interactsWith Drug).
        assert!(o.add_object_property("interactsWith", a, a, RelationKind::Association).is_ok());
    }

    #[test]
    fn union_members_and_is_a_children() {
        let mut o = Ontology::new("t");
        let risk = o.add_concept("Risk").unwrap();
        let ci = o.add_concept("ContraIndication").unwrap();
        let bbw = o.add_concept("BlackBoxWarning").unwrap();
        let di = o.add_concept("DrugInteraction").unwrap();
        let dfi = o.add_concept("DrugFoodInteraction").unwrap();
        o.add_union(risk, &[ci, bbw]).unwrap();
        o.add_is_a(dfi, di).unwrap();
        assert_eq!(o.union_members(risk), vec![ci, bbw]);
        assert_eq!(o.is_a_children(di), vec![dfi]);
        assert_eq!(o.is_a_parents(dfi), vec![di]);
        assert!(o.union_members(di).is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_structure_and_indexes() {
        let (mut o, a, b) = tiny();
        o.add_data_property(a, "name").unwrap();
        let r = o.add_object_property("r", a, b, RelationKind::Functional).unwrap();
        o.set_inverse_name(r, "r-inv");
        o.set_description(a, "the A concept").unwrap();

        let json = o.to_json();
        let back = Ontology::from_json(&json).unwrap();
        assert_eq!(back.concept_count(), 2);
        assert_eq!(back.concept_id("A").unwrap(), a);
        assert_eq!(back.neighbors(a).count(), 1);
        assert_eq!(back.object_property(r).inverse_name.as_deref(), Some("r-inv"));
        assert_eq!(back.concept(a).unwrap().description.as_deref(), Some("the A concept"));
    }

    #[test]
    fn unknown_lookups_error() {
        let (o, _, _) = tiny();
        assert!(o.concept(ConceptId(99)).is_err());
        assert!(o.concept_id("Nope").is_err());
        assert!(o.concept_by_name("Nope").is_none());
    }
}
