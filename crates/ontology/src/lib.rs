//! # obcs-ontology
//!
//! An OWL-flavoured domain-ontology model used as the semantic backbone of
//! the ontology-based conversation system (SIGMOD'20).
//!
//! The ontology provides a structured view of a knowledge base in terms of
//! *concepts* (OWL classes), *data properties* attached to concepts, and
//! *object properties* (relationships) between concepts. Two special
//! relationship families carry extra semantics that the conversation
//! bootstrapper exploits (paper §3):
//!
//! * **isA** — subsumption: every instance of the child concept is an
//!   instance of the parent concept (e.g. `DrugFoodInteraction isA
//!   DrugInteraction`).
//! * **unionOf** — a special case of subsumption where the children of the
//!   same parent are mutually exclusive and exhaustive (e.g. `Risk =
//!   ContraIndication ∪ BlackBoxWarning`).
//!
//! On top of the data model the crate offers graph utilities needed by the
//! bootstrapping pipeline of the paper:
//!
//! * adjacency / neighbourhood queries ([`Ontology::neighbors`]),
//! * shortest relationship paths and bounded path enumeration
//!   ([`graph::shortest_path`], [`graph::paths_up_to`]),
//! * centrality analyses — degree, PageRank and Brandes betweenness
//!   ([`centrality`]) — used to identify *key concepts* (§4.2.1),
//! * statistical segregation of ranked scores ([`segregation`]) used to cut
//!   the top-k key concepts,
//! * structural validation ([`mod@validate`]), DOT export ([`dot`]) and JSON
//!   (de)serialisation via serde.
//!
//! ## Example
//!
//! ```
//! use obcs_ontology::{Ontology, RelationKind};
//!
//! let mut onto = Ontology::new("demo");
//! let drug = onto.add_concept("Drug").unwrap();
//! let indication = onto.add_concept("Indication").unwrap();
//! onto.add_data_property(drug, "name").unwrap();
//! onto.add_object_property("treats", drug, indication, RelationKind::Functional)
//!     .unwrap();
//! assert_eq!(onto.concept_count(), 2);
//! assert_eq!(onto.neighbors(drug).count(), 1);
//! ```
//!
//! Crate role and dependencies: DESIGN.md §2; as-built notes: §5.

pub mod builder;
pub mod centrality;
pub mod dot;
pub mod graph;
pub mod model;
pub mod segregation;
pub mod turtle;
pub mod validate;

pub use builder::OntologyBuilder;
pub use model::{
    Concept, ConceptId, DataProperty, DataPropertyId, ObjectProperty, ObjectPropertyId, Ontology,
    OntologyError, RelationKind,
};
pub use validate::{validate, ValidationIssue};
