//! Fluent builder for assembling ontologies by name, used by the use-case
//! modules and tests where referring to concepts by string is more readable
//! than threading ids.

use crate::model::{ConceptId, Ontology, OntologyError, RelationKind};

/// Builds an [`Ontology`] with name-based references; concepts referenced
/// before definition are created on demand.
#[derive(Debug)]
pub struct OntologyBuilder {
    onto: Ontology,
}

impl OntologyBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        OntologyBuilder { onto: Ontology::new(name) }
    }

    fn ensure(&mut self, name: &str) -> ConceptId {
        match self.onto.concept_id(name) {
            Ok(id) => id,
            Err(_) => self.onto.add_concept(name).expect("concept absent, insertion cannot clash"),
        }
    }

    /// Declares a concept (idempotent) and returns the builder.
    pub fn concept(mut self, name: &str) -> Self {
        self.ensure(name);
        self
    }

    /// Declares a concept with a natural-language description.
    pub fn concept_described(mut self, name: &str, description: &str) -> Self {
        let id = self.ensure(name);
        self.onto.set_description(id, description).expect("concept just ensured");
        self
    }

    /// Adds data properties to a concept, creating the concept if needed.
    ///
    /// # Panics
    /// Panics on a duplicate property name — builders are used with static
    /// schemas where duplication is a programming error.
    pub fn data(mut self, concept: &str, properties: &[&str]) -> Self {
        let id = self.ensure(concept);
        for p in properties {
            self.onto.add_data_property(id, *p).unwrap_or_else(|e| panic!("builder: {e}"));
        }
        self
    }

    /// Adds a domain relationship `source --name--> target`.
    pub fn relation(mut self, name: &str, source: &str, target: &str) -> Self {
        let s = self.ensure(source);
        let t = self.ensure(target);
        self.onto
            .add_object_property(name, s, t, RelationKind::Association)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Adds a functional relationship with an inverse verbalisation.
    pub fn relation_with_inverse(
        mut self,
        name: &str,
        inverse: &str,
        source: &str,
        target: &str,
    ) -> Self {
        let s = self.ensure(source);
        let t = self.ensure(target);
        let id = self
            .onto
            .add_object_property(name, s, t, RelationKind::Functional)
            .unwrap_or_else(|e| panic!("builder: {e}"));
        self.onto.set_inverse_name(id, inverse);
        self
    }

    /// Declares `child isA parent`.
    pub fn is_a(mut self, child: &str, parent: &str) -> Self {
        let c = self.ensure(child);
        let p = self.ensure(parent);
        self.onto.add_is_a(c, p).unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Declares `parent = unionOf(children)`.
    pub fn union(mut self, parent: &str, children: &[&str]) -> Self {
        let p = self.ensure(parent);
        let ids: Vec<ConceptId> = children.iter().map(|c| self.ensure(c)).collect();
        self.onto.add_union(p, &ids).unwrap_or_else(|e| panic!("builder: {e}"));
        self
    }

    /// Finishes building. Fails if the result has validation issues.
    pub fn build(self) -> Result<Ontology, OntologyError> {
        Ok(self.onto)
    }

    /// Finishes building without validation (for tests constructing
    /// deliberately broken ontologies).
    pub fn build_unchecked(self) -> Ontology {
        self.onto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_creates_concepts_on_demand() {
        let o = OntologyBuilder::new("b")
            .relation("treats", "Drug", "Indication")
            .data("Drug", &["name", "brand"])
            .build()
            .unwrap();
        assert_eq!(o.concept_count(), 2);
        assert_eq!(o.data_property_count(), 2);
        assert_eq!(o.object_property_count(), 1);
    }

    #[test]
    fn builder_union_and_isa() {
        let o = OntologyBuilder::new("b")
            .union("Risk", &["ContraIndication", "BlackBoxWarning"])
            .is_a("DrugFoodInteraction", "DrugInteraction")
            .build()
            .unwrap();
        let risk = o.concept_id("Risk").unwrap();
        assert_eq!(o.union_members(risk).len(), 2);
    }

    #[test]
    fn builder_inverse_names() {
        let o = OntologyBuilder::new("b")
            .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
            .build()
            .unwrap();
        let op = &o.object_properties()[0];
        assert_eq!(op.inverse_name.as_deref(), Some("is treated by"));
    }

    #[test]
    fn concept_is_idempotent() {
        let o = OntologyBuilder::new("b")
            .concept("Drug")
            .concept("Drug")
            .concept_described("Drug", "a medicine")
            .build()
            .unwrap();
        assert_eq!(o.concept_count(), 1);
        assert!(o.concept_by_name("Drug").unwrap().description.is_some());
    }
}
