//! Centrality analyses over the ontology graph.
//!
//! The paper (§4.2.1, citing \[25\]) identifies *key concepts* — concepts that
//! "can stand on their own" and represent the domain entities users ask
//! about — by running a centrality analysis of the ontology graph and
//! ranking concepts by score. This module provides three interchangeable
//! measures (degree, PageRank, betweenness) so the choice can be ablated.

use std::collections::VecDeque;

use crate::model::{ConceptId, Ontology, RelationKind};

/// A concept with its centrality score, ordered descending by score with
/// concept id as tie-breaker for determinism.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredConcept {
    pub concept: ConceptId,
    pub score: f64,
}

/// Which centrality measure to use for key-concept identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CentralityMeasure {
    /// Undirected degree, counting domain edges plus hierarchy edges
    /// weighted down (a union parent should not dominate purely via its
    /// members).
    Degree,
    /// PageRank over the undirected graph (damping 0.85, 50 iterations).
    PageRank,
    /// Brandes betweenness centrality over the undirected graph.
    Betweenness,
}

/// Computes centrality scores for every concept, sorted descending.
pub fn centrality(onto: &Ontology, measure: CentralityMeasure) -> Vec<ScoredConcept> {
    let mut scored = match measure {
        CentralityMeasure::Degree => degree(onto),
        CentralityMeasure::PageRank => pagerank(onto, 0.85, 50),
        CentralityMeasure::Betweenness => betweenness(onto),
    };
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("centrality scores are finite")
            .then_with(|| a.concept.cmp(&b.concept))
    });
    scored
}

/// Degree centrality. Domain edges count 1.0 on each endpoint; hierarchy
/// edges (isA/unionOf) count 0.5 — they indicate structure but not the kind
/// of standalone entity users query directly, matching the paper's
/// observation that concepts like `Risk` are *dependent* concepts despite
/// high connectivity.
fn degree(onto: &Ontology) -> Vec<ScoredConcept> {
    let mut scores = vec![0.0f64; onto.concept_count()];
    for op in onto.object_properties() {
        let w = if op.kind.is_hierarchical() { 0.5 } else { 1.0 };
        scores[op.source.0 as usize] += w;
        scores[op.target.0 as usize] += w;
    }
    // Data properties also signal entity richness: a concept with many
    // attributes is more likely a first-class domain entity.
    for dp in onto.data_properties() {
        scores[dp.concept.0 as usize] += 0.25;
    }
    to_scored(scores)
}

/// PageRank on the undirected ontology graph.
fn pagerank(onto: &Ontology, damping: f64, iterations: usize) -> Vec<ScoredConcept> {
    let n = onto.concept_count();
    if n == 0 {
        return Vec::new();
    }
    // Undirected adjacency.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for op in onto.object_properties() {
        adj[op.source.0 as usize].push(op.target.0 as usize);
        adj[op.target.0 as usize].push(op.source.0 as usize);
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let base = (1.0 - damping) / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        let mut dangling = 0.0;
        for (i, neighbors) in adj.iter().enumerate() {
            if neighbors.is_empty() {
                dangling += rank[i];
            } else {
                let share = damping * rank[i] / neighbors.len() as f64;
                for &j in neighbors {
                    next[j] += share;
                }
            }
        }
        // Redistribute dangling mass uniformly.
        let spill = damping * dangling / n as f64;
        next.iter_mut().for_each(|x| *x += spill);
        std::mem::swap(&mut rank, &mut next);
    }
    to_scored(rank)
}

/// Brandes' algorithm for betweenness centrality on the unweighted
/// undirected ontology graph.
fn betweenness(onto: &Ontology) -> Vec<ScoredConcept> {
    let n = onto.concept_count();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for op in onto.object_properties() {
        adj[op.source.0 as usize].push(op.target.0 as usize);
        adj[op.target.0 as usize].push(op.source.0 as usize);
    }
    let mut scores = vec![0.0f64; n];
    for s in 0..n {
        // Single-source shortest paths (BFS).
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in &adj[v] {
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // Accumulation.
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                scores[w] += delta[w];
            }
        }
    }
    // Undirected graph: each pair counted twice.
    scores.iter_mut().for_each(|x| *x /= 2.0);
    to_scored(scores)
}

fn to_scored(scores: Vec<f64>) -> Vec<ScoredConcept> {
    scores
        .into_iter()
        .enumerate()
        .map(|(i, score)| ScoredConcept { concept: ConceptId(i as u32), score })
        .collect()
}

/// Counts the number of *domain* (non-hierarchical) edges incident to a
/// concept. Useful as a quick structural signal.
pub fn domain_degree(onto: &Ontology, concept: ConceptId) -> usize {
    onto.neighbors(concept).filter(|(_, op)| !op.kind.is_hierarchical()).count()
}

/// Convenience: true if a concept participates in any hierarchy edge with
/// the given kind, as parent.
pub fn is_hierarchy_parent(onto: &Ontology, concept: ConceptId, kind: RelationKind) -> bool {
    onto.incoming(concept).any(|op| op.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Ontology, RelationKind};

    /// A hub-and-spoke graph: Hub connected to 4 spokes, one spoke chain.
    fn hub() -> (Ontology, ConceptId) {
        let mut o = Ontology::new("t");
        let hub = o.add_concept("Hub").unwrap();
        for i in 0..4 {
            let s = o.add_concept(format!("S{i}")).unwrap();
            o.add_object_property("r", hub, s, RelationKind::Association).unwrap();
        }
        (o, hub)
    }

    #[test]
    fn degree_ranks_hub_first() {
        let (o, hub) = hub();
        let scored = centrality(&o, CentralityMeasure::Degree);
        assert_eq!(scored[0].concept, hub);
        assert!(scored[0].score > scored[1].score);
    }

    #[test]
    fn pagerank_ranks_hub_first_and_sums_to_one() {
        let (o, hub) = hub();
        let scored = centrality(&o, CentralityMeasure::PageRank);
        assert_eq!(scored[0].concept, hub);
        let total: f64 = scored.iter().map(|s| s.score).sum();
        assert!((total - 1.0).abs() < 1e-9, "pagerank mass = {total}");
    }

    #[test]
    fn betweenness_of_bridge_node() {
        // A - B - C: B lies on the only A..C shortest path.
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        let c = o.add_concept("C").unwrap();
        o.add_object_property("r", a, b, RelationKind::Association).unwrap();
        o.add_object_property("r", b, c, RelationKind::Association).unwrap();
        let scored = centrality(&o, CentralityMeasure::Betweenness);
        assert_eq!(scored[0].concept, b);
        assert!((scored[0].score - 1.0).abs() < 1e-9);
        assert!((scored[1].score - 0.0).abs() < 1e-9);
    }

    #[test]
    fn hierarchy_edges_weigh_less_in_degree() {
        let mut o = Ontology::new("t");
        let domain_hub = o.add_concept("DomainHub").unwrap();
        let union_hub = o.add_concept("UnionHub").unwrap();
        for i in 0..3 {
            let s = o.add_concept(format!("D{i}")).unwrap();
            o.add_object_property("r", domain_hub, s, RelationKind::Association).unwrap();
            let u = o.add_concept(format!("U{i}")).unwrap();
            o.add_union(union_hub, &[u]).unwrap();
        }
        let scored = centrality(&o, CentralityMeasure::Degree);
        assert_eq!(scored[0].concept, domain_hub);
    }

    #[test]
    fn empty_ontology_yields_empty_scores() {
        let o = Ontology::new("empty");
        for m in
            [CentralityMeasure::Degree, CentralityMeasure::PageRank, CentralityMeasure::Betweenness]
        {
            assert!(centrality(&o, m).is_empty());
        }
    }

    #[test]
    fn pagerank_handles_isolated_nodes() {
        let mut o = Ontology::new("t");
        o.add_concept("Lonely").unwrap();
        o.add_concept("Alone").unwrap();
        let scored = centrality(&o, CentralityMeasure::PageRank);
        let total: f64 = scored.iter().map(|s| s.score).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn domain_degree_excludes_hierarchy() {
        let mut o = Ontology::new("t");
        let a = o.add_concept("A").unwrap();
        let b = o.add_concept("B").unwrap();
        let c = o.add_concept("C").unwrap();
        o.add_object_property("r", a, b, RelationKind::Association).unwrap();
        o.add_is_a(c, a).unwrap();
        assert_eq!(domain_degree(&o, a), 1);
        assert!(is_hierarchy_parent(&o, a, RelationKind::IsA));
        assert!(!is_hierarchy_parent(&o, b, RelationKind::IsA));
    }
}
