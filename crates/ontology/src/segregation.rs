//! Statistical segregation of ranked centrality scores.
//!
//! The paper (§4.2.1, citing \[25\]) selects the top-k key concepts by
//! "statistical segregation" of the centrality ranking: rather than a fixed
//! k, find the natural break in the score distribution that separates the
//! standout concepts from the long tail.
//!
//! We implement this as a largest-relative-gap cut with a mean threshold
//! fallback, plus a deterministic fixed-k mode for ablations.

use crate::centrality::ScoredConcept;
use crate::model::ConceptId;

/// Strategy for cutting a descending score ranking into "key" vs "rest".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cut {
    /// Find the largest relative gap between consecutive scores, searching
    /// between `min` and `max` selected items.
    LargestGap { min: usize, max: usize },
    /// Keep everything with score strictly above the mean score.
    AboveMean,
    /// Keep exactly the first k items.
    TopK(usize),
}

/// Applies the cut to a descending ranking, returning the selected concept
/// ids in rank order.
pub fn segregate(scored: &[ScoredConcept], cut: Cut) -> Vec<ConceptId> {
    match cut {
        Cut::TopK(k) => scored.iter().take(k).map(|s| s.concept).collect(),
        Cut::AboveMean => {
            if scored.is_empty() {
                return Vec::new();
            }
            let mean = scored.iter().map(|s| s.score).sum::<f64>() / scored.len() as f64;
            scored.iter().take_while(|s| s.score > mean).map(|s| s.concept).collect()
        }
        Cut::LargestGap { min, max } => {
            let min = min.max(1);
            let max = max.min(scored.len());
            if scored.len() <= min {
                return scored.iter().map(|s| s.concept).collect();
            }
            // Search the boundary k in [min, max): cut after position k-1.
            let mut best_k = min;
            let mut best_gap = f64::MIN;
            for k in min..max.max(min + 1) {
                if k >= scored.len() {
                    break;
                }
                let above = scored[k - 1].score;
                let below = scored[k].score;
                // Relative gap; guard against zero scores.
                let gap =
                    if above.abs() < f64::EPSILON { 0.0 } else { (above - below) / above.abs() };
                if gap > best_gap {
                    best_gap = gap;
                    best_k = k;
                }
            }
            scored.iter().take(best_k).map(|s| s.concept).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scored(scores: &[f64]) -> Vec<ScoredConcept> {
        scores
            .iter()
            .enumerate()
            .map(|(i, &score)| ScoredConcept { concept: ConceptId(i as u32), score })
            .collect()
    }

    #[test]
    fn top_k_is_exact() {
        let s = scored(&[5.0, 4.0, 3.0, 2.0]);
        assert_eq!(segregate(&s, Cut::TopK(2)).len(), 2);
        assert_eq!(segregate(&s, Cut::TopK(10)).len(), 4);
        assert!(segregate(&s, Cut::TopK(0)).is_empty());
    }

    #[test]
    fn above_mean_keeps_standouts() {
        // mean = 3.0; only 10 and 4 are above.
        let s = scored(&[10.0, 4.0, 1.0, 0.5, 0.5, 2.0]);
        let picked = segregate(&s, Cut::AboveMean);
        assert_eq!(picked, vec![ConceptId(0), ConceptId(1)]);
    }

    #[test]
    fn above_mean_empty_input() {
        assert!(segregate(&[], Cut::AboveMean).is_empty());
    }

    #[test]
    fn largest_gap_finds_natural_break() {
        // Clear break between 8.0 and 2.0.
        let s = scored(&[10.0, 9.0, 8.0, 2.0, 1.5, 1.0]);
        let picked = segregate(&s, Cut::LargestGap { min: 1, max: 6 });
        assert_eq!(picked.len(), 3);
    }

    #[test]
    fn largest_gap_respects_min() {
        // The biggest gap is after the first element, but min=3 forces more.
        let s = scored(&[10.0, 1.0, 0.9, 0.8, 0.7]);
        let picked = segregate(&s, Cut::LargestGap { min: 3, max: 5 });
        assert!(picked.len() >= 3);
    }

    #[test]
    fn largest_gap_short_input_returns_all() {
        let s = scored(&[3.0, 2.0]);
        let picked = segregate(&s, Cut::LargestGap { min: 4, max: 8 });
        assert_eq!(picked.len(), 2);
    }

    #[test]
    fn largest_gap_with_zero_scores_is_safe() {
        let s = scored(&[0.0, 0.0, 0.0]);
        let picked = segregate(&s, Cut::LargestGap { min: 1, max: 3 });
        assert_eq!(picked.len(), 1);
    }
}
