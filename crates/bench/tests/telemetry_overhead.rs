//! Overhead guard: instrumentation through the no-op recorder must not
//! measurably slow the hot path. The traced annotate entry point with a
//! [`NoopRecorder`] does one virtual call per span edge and nothing else,
//! so its best-of timing over a large batch must stay within noise of the
//! untraced one.

use std::time::Instant;

use obcs_bench::World;
use obcs_sim::utterance::generate;
use obcs_telemetry::NoopRecorder;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Best wall time of `reps` runs of `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn noop_recorder_adds_no_measurable_annotate_cost() {
    let world = World::small(7);
    let nlu =
        obcs_agent::nlu::Nlu::from_space(&world.space, &world.onto, &world.kb, &world.mapping);
    let lexicon = nlu.lexicon();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let utterances: Vec<String> = obcs_sim::traffic::INTENT_MIX
        .iter()
        .flat_map(|(intent, _)| {
            (0..8)
                .map(|_| generate(intent, &world.pools, &mut rng).expect("templates"))
                .collect::<Vec<_>>()
        })
        .collect();
    // Warm up, and make sure both paths agree before timing them.
    for u in &utterances {
        assert_eq!(lexicon.annotate(u), lexicon.annotate_traced(u, &NoopRecorder));
    }
    let untraced = best_of(7, || {
        for u in &utterances {
            std::hint::black_box(lexicon.annotate(u));
        }
    });
    let traced = best_of(7, || {
        for u in &utterances {
            std::hint::black_box(lexicon.annotate_traced(u, &NoopRecorder));
        }
    });
    // One virtual dispatch per call amortised over a trie scan: generous
    // 2x bound absorbs scheduler noise without hiding a real regression
    // (an accidentally-always-collecting recorder would blow well past it).
    assert!(
        traced <= untraced * 2.0 + 1e-4,
        "noop-traced annotate too slow: {traced:.6}s vs untraced {untraced:.6}s"
    );
}
