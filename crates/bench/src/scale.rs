//! The "large world" scaling harness behind `repro scale` (DESIGN.md
//! §14): a latency-vs-KB-size curve for the three index-accelerated KB
//! hot paths — point lookup, FK join, LIKE-prefix — measured at 150 /
//! 1.5k / 15k drugs on the deterministic MDX generator. Each stage runs
//! the identical query batch against the auto-indexed KB and a
//! scan-only twin (`set_index_enabled(false)`), with the query caches
//! off on both so the measurement is raw execution, and the results are
//! asserted byte-identical before any timing counts. The stages join
//! the `repro perf` report, so the curve is committed to
//! `BENCH_perf.json` with enforced `min_speedup` floors at the 15k
//! point.

use std::hint::black_box;
use std::time::Instant;

use obcs_kb::KnowledgeBase;
use obcs_mdx::data::{build_mdx_kb, MdxDataConfig};

use crate::perf::{Comparison, PerfOptions, Timing};

/// The KB sizes (in drugs — total rows scale ~40×) the curve samples.
pub const SCALE_SIZES: [usize; 3] = [150, 1_500, 15_000];

/// Committed floor at the 15k point: an indexed point lookup must beat
/// the full scan by at least this factor (ISSUE 7 acceptance).
pub const POINT_LOOKUP_FLOOR_15K: f64 = 10.0;
/// Committed floor for the FK join at 15k: probing the persistent hash
/// index must beat rebuilding the per-query join map.
pub const FK_JOIN_FLOOR_15K: f64 = 5.0;
/// Committed floor for the LIKE-prefix range read at 15k.
pub const LIKE_PREFIX_FLOOR_15K: f64 = 3.0;

/// What one size-point of the curve measured.
pub struct ScaleOutcome {
    pub timings: Vec<Timing>,
    pub comparisons: Vec<Comparison>,
}

/// How many queries one timed batch executes.
const BATCH: usize = 40;

fn batch_ms(reps: usize, kb: &KnowledgeBase, queries: &[String]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        for sql in queries {
            black_box(kb.query(sql).expect("scale query executes"));
        }
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

/// One comparison stage: identical batch on the indexed KB vs the scan
/// twin, after asserting result equality query by query.
fn stage(
    name: String,
    work: String,
    reps: usize,
    indexed: &KnowledgeBase,
    scan: &KnowledgeBase,
    queries: &[String],
    min_speedup: Option<f64>,
) -> Comparison {
    for sql in queries {
        assert_eq!(
            indexed.query(sql),
            scan.query(sql),
            "indexed execution diverged from scan on {sql:?}"
        );
    }
    let before_ms = batch_ms(reps, scan, queries);
    let after_ms = batch_ms(reps, indexed, queries);
    let speedup = if after_ms > 0.0 { before_ms / after_ms } else { f64::INFINITY };
    Comparison { name, work, before_ms, after_ms, speedup, min_speedup }
}

/// Runs the scaling curve. The sizes are fixed (the curve *is* the
/// deliverable); `quick` only lowers the repetition count.
pub fn run(opts: &PerfOptions) -> ScaleOutcome {
    let reps = if opts.quick { 3 } else { 5 };
    let mut timings = Vec::new();
    let mut comparisons = Vec::new();

    for drugs in SCALE_SIZES {
        let t = Instant::now();
        let indexed = build_mdx_kb(MdxDataConfig { drugs, seed: opts.seed });
        let build_ms = t.elapsed().as_secs_f64() * 1000.0;
        let total_rows: usize =
            indexed.table_names().iter().map(|n| indexed.table(n).expect("own table").len()).sum();
        timings.push(Timing {
            name: format!("scale_build_{drugs}"),
            work: format!("{total_rows} rows, {} indexes", indexed.index_count()),
            ms: build_ms,
        });

        // The scan twin: same rows, same (cold) caches, indexes routed
        // off. Caches are disabled on both sides so every timed query
        // pays parse + bind + execute, never a cache hit.
        let mut indexed = indexed;
        indexed.set_cache_enabled(false);
        let mut scan = indexed.clone();
        scan.set_cache_enabled(false);
        scan.set_index_enabled(false);

        let n = drugs as i64;
        let floor = |f: f64| (drugs == 15_000).then_some(f);

        // Point lookup: PK equality through the hash index.
        let queries: Vec<String> = (0..BATCH)
            .map(|i| format!("SELECT name FROM drug WHERE drug_id = {}", (i as i64 * 37 + 11) % n))
            .collect();
        comparisons.push(stage(
            format!("scale_point_lookup_{drugs}"),
            format!("{BATCH} lookups, {drugs}-drug world"),
            reps,
            &indexed,
            &scan,
            &queries,
            floor(POINT_LOOKUP_FLOOR_15K),
        ));

        // FK join: a point-filtered drug joined to its adverse effects —
        // the FROM side goes through the PK hash index, the join side
        // probes the persistent FK hash index instead of rebuilding a
        // per-query map over the (large) child table.
        let queries: Vec<String> = (0..BATCH)
            .map(|i| {
                format!(
                    "SELECT a.effect FROM drug d \
                     INNER JOIN adverse_effect a ON a.drug_id = d.drug_id \
                     WHERE d.drug_id = {}",
                    (i as i64 * 53 + 7) % n
                )
            })
            .collect();
        comparisons.push(stage(
            format!("scale_fk_join_{drugs}"),
            format!("{BATCH} joins, {drugs}-drug world"),
            reps,
            &indexed,
            &scan,
            &queries,
            floor(FK_JOIN_FLOOR_15K),
        ));

        // LIKE-prefix: range read over the ordered index on drug.name.
        let prefixes = ["Cardiovast", "Neurozol", "Gastropril", "Oncotinib"];
        let queries: Vec<String> = (0..BATCH)
            .map(|i| {
                format!("SELECT name FROM drug WHERE name LIKE '{}%'", prefixes[i % prefixes.len()])
            })
            .collect();
        comparisons.push(stage(
            format!("scale_like_prefix_{drugs}"),
            format!("{BATCH} prefix queries, {drugs}-drug world"),
            reps,
            &indexed,
            &scan,
            &queries,
            floor(LIKE_PREFIX_FLOOR_15K),
        ));
    }

    ScaleOutcome { timings, comparisons }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_stage_names_cover_the_curve() {
        // The committed baseline keys stages by these names; keep the
        // cross-product stable.
        for drugs in SCALE_SIZES {
            for kind in ["point_lookup", "fk_join", "like_prefix"] {
                let name = format!("scale_{kind}_{drugs}");
                assert!(name.starts_with("scale_"));
            }
        }
    }

    #[test]
    fn smallest_size_point_measures_and_matches() {
        // A truncated run (just the 150-drug point) exercises the whole
        // stage machinery — equality assertions included — in test time.
        let opts = PerfOptions { quick: true, seed: 7 };
        let indexed = build_mdx_kb(MdxDataConfig { drugs: SCALE_SIZES[0], seed: opts.seed });
        let mut indexed = indexed;
        indexed.set_cache_enabled(false);
        let mut scan = indexed.clone();
        scan.set_cache_enabled(false);
        scan.set_index_enabled(false);
        let queries = vec![
            "SELECT name FROM drug WHERE drug_id = 3".to_string(),
            "SELECT name FROM drug WHERE name LIKE 'Cardio%'".to_string(),
        ];
        let c = stage("scale_smoke".into(), "2 queries".into(), 1, &indexed, &scan, &queries, None);
        assert!(c.before_ms >= 0.0 && c.after_ms >= 0.0);
    }
}
