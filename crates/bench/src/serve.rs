//! The served-turn benchmark behind `repro serve` (DESIGN.md §15): a
//! real `obcs-serve` server on an ephemeral port, driven by the
//! `obcs-sim` socket load generator over N concurrent connections with
//! the Table 5 intent mix. Before any timing counts, a deterministic
//! multi-turn script is replayed both in-process and over the socket
//! and the wire-encoded replies are asserted byte-identical — the same
//! equality-before-speed contract the perf and scale stages follow.
//! The timed stages join the `repro perf` report, so p50/p99 served
//! turn latency and the run's wall time (throughput) are committed to
//! `BENCH_perf.json` under the usual regression ceiling.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use obcs_serve::protocol::encode_line;
use obcs_serve::{kind_label, Client, ServeConfig, Server, SessionConfig, TurnReply};
use obcs_sim::load::{run_load, LoadConfig, LoadOutcome};
use obcs_sim::traffic::INTENT_MIX;
use obcs_sim::utterance::generate;

use crate::perf::{PerfOptions, Timing};
use crate::World;

/// What one `repro serve` run produced: the gated timings plus the raw
/// load numbers the report prints.
pub struct ServeBenchOutcome {
    /// Stages for the perf report (`serve_` prefix).
    pub timings: Vec<Timing>,
    /// Connections the load generator drove.
    pub connections: usize,
    /// Turns served (all connections).
    pub turns: usize,
    /// Median served-turn latency, ms.
    pub p50_ms: f64,
    /// p99 served-turn latency, ms.
    pub p99_ms: f64,
    /// Aggregate throughput, turns per second.
    pub turns_per_sec: f64,
    /// Turns shed by admission control (must be 0 at bench capacity).
    pub shed: usize,
    /// Engine-degraded replies (must be 0 with no fault injector).
    pub degraded: usize,
}

/// Deterministic script for the byte-identity check: a greeting, a mix
/// of generated domain utterances, and a gibberish repair turn.
fn identity_script(world: &World, seed: u64) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut script = vec!["hello".to_string()];
    for (name, _) in INTENT_MIX.iter().take(12) {
        if let Some(utterance) = generate(name, &world.pools, &mut rng) {
            script.push(utterance);
        }
    }
    script.push("asdf qwerty zxcv".to_string());
    script
}

/// Render an in-process reply exactly as the server puts it on the wire.
fn wire(
    session: &str,
    agent: &obcs_agent::ConversationAgent,
    reply: &obcs_agent::AgentReply,
) -> TurnReply {
    TurnReply {
        session: session.to_string(),
        text: reply.text.clone(),
        kind: kind_label(reply.kind).to_string(),
        intent: reply.intent.and_then(|id| agent.space().intent(id)).map(|i| i.name.clone()),
        confidence: reply.confidence,
        found_results: reply.found_results,
        shed: false,
    }
}

/// Run the serving benchmark. Panics on any divergence between served
/// and in-process replies, on shed/degraded turns, or on a short turn
/// count — a run with any of those is not a benchmark.
pub fn run(opts: &PerfOptions) -> ServeBenchOutcome {
    let world = if opts.quick { World::small(opts.seed) } else { World::full(opts.seed) };

    // ---- byte-identity: served replies vs in-process replay --------
    let script = identity_script(&world, opts.seed);
    let base = world.agent().agent;
    let mut local = base.fork_session();
    let expected: Vec<String> = script
        .iter()
        .map(|utt| {
            let reply = local.respond(utt);
            encode_line(&wire("identity", &local, &reply))
        })
        .collect();

    let mut server = Server::start(
        world.agent().agent,
        ServeConfig { session: SessionConfig::default(), ..ServeConfig::default() },
    )
    .expect("serve bench: bind ephemeral port");
    let mut probe = Client::connect(server.addr()).expect("serve bench: connect");
    let served: Vec<String> = script
        .iter()
        .map(|utt| encode_line(&probe.turn("identity", utt).expect("serve bench: identity turn")))
        .collect();
    assert_eq!(served, expected, "served replies must be byte-identical to the in-process replay");
    probe.end("identity").expect("serve bench: end identity session");
    drop(probe);

    // ---- timed load: Table 5 mix over concurrent connections -------
    let (connections, turns_per_connection) = if opts.quick { (4, 120) } else { (8, 400) };
    let load =
        LoadConfig { connections, turns_per_connection, seed: opts.seed, ..LoadConfig::default() };
    let outcome: LoadOutcome =
        run_load(server.addr(), &world.pools, &load).expect("serve bench: load run");
    server.shutdown();

    let total = connections * turns_per_connection;
    assert_eq!(outcome.turns, total, "every load turn must be answered");
    assert_eq!(outcome.shed, 0, "no shedding at bench capacity");
    assert_eq!(outcome.degraded, 0, "no degradation without a fault injector");

    let p50_ms = outcome.p50_ms();
    let p99_ms = outcome.p99_ms();
    let turns_per_sec = outcome.turns_per_sec();
    let work = format!("{total} turns / {connections} conns");
    let timings = vec![
        Timing { name: "serve_turn_p50".to_string(), work: work.clone(), ms: p50_ms },
        Timing { name: "serve_turn_p99".to_string(), work: work.clone(), ms: p99_ms },
        Timing {
            name: "serve_throughput".to_string(),
            work: format!("{work} ({turns_per_sec:.0} turns/s)"),
            ms: outcome.wall_ms,
        },
    ];
    ServeBenchOutcome {
        timings,
        connections,
        turns: outcome.turns,
        p50_ms,
        p99_ms,
        turns_per_sec,
        shed: outcome.shed,
        degraded: outcome.degraded,
    }
}
