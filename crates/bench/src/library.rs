//! The library custom domain as a committed artifact source.
//!
//! The same world the `custom_domain` example builds interactively —
//! author / genre / book / review with a data-driven ontology — packaged
//! so `repro export` can commit it to `artifacts/library_{space,kb}.json`
//! and the lint/verify gates can exercise a non-MDX space. Everything is
//! deterministic: re-running export reproduces the same bytes.

use obcs_core::{bootstrap, BootstrapConfig, ConversationSpace, SmeFeedback};
use obcs_kb::ontogen::{generate_ontology, OntogenOptions};
use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use obcs_nlq::OntologyMapping;
use obcs_ontology::Ontology;

/// Builds the library KB: four tables with declared foreign keys and a
/// small instance population (matches the `custom_domain` example).
pub fn build_library_kb() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("author")
            .column("author_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("country", ColumnType::Text)
            .primary_key("author_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("genre")
            .column("genre_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("genre_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("book")
            .column("book_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("year", ColumnType::Int)
            .column("author_id", ColumnType::Int)
            .column("genre_id", ColumnType::Int)
            .primary_key("book_id")
            .foreign_key("author_id", "author", "author_id")
            .foreign_key("genre_id", "genre", "genre_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("review")
            .column("review_id", ColumnType::Int)
            .column("book_id", ColumnType::Int)
            .column("description", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .primary_key("review_id")
            .foreign_key("book_id", "book", "book_id"),
    )
    .expect("schema");

    let authors = [
        ("Ursula K. Le Guin", "United States"),
        ("Stanislaw Lem", "Poland"),
        ("Octavia Butler", "United States"),
        ("Jorge Luis Borges", "Argentina"),
    ];
    for (i, (name, country)) in authors.iter().enumerate() {
        kb.insert("author", vec![Value::Int(i as i64), Value::text(*name), Value::text(*country)])
            .expect("author row");
    }
    for (i, g) in ["science fiction", "fantasy", "short stories"].iter().enumerate() {
        kb.insert("genre", vec![Value::Int(i as i64), Value::text(*g)]).expect("genre row");
    }
    let books = [
        ("The Dispossessed", 1974, 0, 0),
        ("The Left Hand of Darkness", 1969, 0, 0),
        ("Solaris", 1961, 1, 0),
        ("Kindred", 1979, 2, 0),
        ("Ficciones", 1944, 3, 2),
        ("A Wizard of Earthsea", 1968, 0, 1),
    ];
    for (i, (title, year, author, genre)) in books.iter().enumerate() {
        kb.insert(
            "book",
            vec![
                Value::Int(i as i64),
                Value::text(*title),
                Value::Int(*year),
                Value::Int(*author),
                Value::Int(*genre),
            ],
        )
        .expect("book row");
    }
    for (i, (book, text, rating)) in [
        (0, "a thoughtful study of two worlds", 5),
        (2, "claustrophobic and brilliant", 5),
        (3, "devastating and essential", 5),
        (5, "a quiet, perfect fantasy", 4),
    ]
    .iter()
    .enumerate()
    {
        kb.insert(
            "review",
            vec![Value::Int(i as i64), Value::Int(*book), Value::text(*text), Value::Int(*rating)],
        )
        .expect("review row");
    }
    kb
}

/// The full library artifact chain: KB, data-driven ontology (§3 option
/// 2), inferred mapping, bootstrapped space.
pub fn library_world() -> (Ontology, KnowledgeBase, OntologyMapping, ConversationSpace) {
    let kb = build_library_kb();
    let onto =
        generate_ontology(&kb, "library", OntogenOptions::default()).expect("ontology generation");
    let mapping = OntologyMapping::infer(&onto, &kb);
    let sme = SmeFeedback::new().synonym("Book", &["novel", "title"]);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
    (onto, kb, mapping, space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_world_bootstraps() {
        let (onto, _, _, space) = library_world();
        assert!(onto.concept_id("Book").is_ok());
        assert!(!space.intents.is_empty());
        assert!(!space.templates.is_empty());
    }

    #[test]
    fn library_world_is_deterministic() {
        let (_, kb_a, _, space_a) = library_world();
        let (_, kb_b, _, space_b) = library_world();
        assert_eq!(kb_a.to_json(), kb_b.to_json());
        assert_eq!(space_a.to_json(), space_b.to_json());
    }
}
