//! The `repro chaos` subcommand: sharded traffic replay under fault
//! injection.
//!
//! Replays the quick (or full) traffic profile with the
//! [`FaultPlan::chaos`] injector and the chaos [`ResilienceConfig`]
//! installed on the agent (forks inherit both), then checks the
//! robustness contract of DESIGN.md §11:
//!
//! 1. **No panics** — the replay completes at every parallelism.
//! 2. **Determinism** — the merged trace (spans, counters, histograms)
//!    and the record sequence are byte-for-byte identical at
//!    parallelism 1 and N, because fault decisions are stateless hashes
//!    of `(seed, stage, utterance)` and retry/backoff time comes from a
//!    per-session clock.
//! 3. **No silent faults** — per cause, every observed fault is either
//!    recovered by a retry or surfaced to the user as a degraded reply:
//!    `fault <= fault_recovered + degraded` (the turn budget couples
//!    stages, so a recovered fault can still burn enough clock to
//!    degrade a later stage — over-surfacing is fine, silence is not),
//!    and every degradation produced exactly one visible
//!    `ReplyKind::Degraded` reply.
//!
//! Violations are collected (not panicked) so the CLI can print all of
//! them and exit non-zero.

use std::sync::Arc;

use obcs_faults::{FaultPlan, PlannedFaults, ResilienceConfig};
use obcs_mdx::data::MdxDataConfig;
use obcs_sim::traffic::{run_traffic_traced, SimConfig, TraceMode};
use obcs_sim::SimOutcome;
use obcs_telemetry::{metric, TraceReport};

use crate::World;

/// Options of the `repro chaos` subcommand.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// Quick profile (60 drugs, 400 interactions — the CI gate) instead of
    /// the full one (150 drugs, 2000 interactions).
    pub quick: bool,
    /// Seed for the synthetic world, the traffic, and the fault plan.
    pub seed: u64,
    /// Replay shard threads for the cross-parallelism determinism check
    /// (the baseline always runs at parallelism 1).
    pub parallelism: usize,
}

/// Outcome of a chaos run: the parallelism-1 baseline plus every
/// contract violation found.
pub struct ChaosReport {
    /// Merged trace of the baseline (parallelism 1) replay.
    pub report: TraceReport,
    /// Replay outcome of the baseline run.
    pub outcome: SimOutcome,
    /// Human-readable contract violations; empty means the run passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sum of a counter metric across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.report.counters.iter().filter(|((m, _), _)| m == name).map(|(_, &v)| v).sum()
    }
}

/// One replay of the traffic profile with the chaos plan installed.
fn replay(opts: &ChaosOptions, parallelism: usize, caches: bool) -> (TraceReport, SimOutcome) {
    let (drugs, interactions) = if opts.quick { (60, 400) } else { (150, 2000) };
    let world = World::with_config(MdxDataConfig { drugs, seed: opts.seed });
    let mut mdx = world.agent();
    mdx.agent.set_caching(caches);
    mdx.agent.set_fault_injector(Arc::new(PlannedFaults::new(FaultPlan::chaos(opts.seed))));
    mdx.agent.set_resilience(ResilienceConfig::chaos());
    let (outcome, report) = run_traffic_traced(
        &mut mdx.agent,
        &world.onto,
        &world.pools,
        SimConfig { interactions, seed: opts.seed, parallelism, ..SimConfig::default() },
        TraceMode::Ticks,
    );
    (report.expect("trace mode is never Off here"), outcome)
}

/// The fault-kind labels that feed each degradation cause label.
const CAUSES: &[(&str, &[&str])] = &[
    ("kb", &["kb_timeout", "kb_failure"]),
    ("classifier", &["classifier_collapse"]),
    ("annotator", &["annotation_dropout"]),
];

/// Runs the chaos harness: a parallelism-1 baseline, a cross-parallelism
/// determinism check, and the fault-accounting invariants.
pub fn run(opts: &ChaosOptions) -> ChaosReport {
    // The baseline runs with the pipeline caches on (their default), so
    // every fault-accounting invariant below is checked *under* caching.
    let (report, outcome) = replay(opts, 1, true);
    let mut violations = Vec::new();

    if opts.parallelism > 1 {
        let (par_report, par_outcome) = replay(opts, opts.parallelism, true);
        if par_report.to_jsonl() != report.to_jsonl() {
            violations.push(format!(
                "nondeterministic trace: parallelism {} differs from parallelism 1",
                opts.parallelism
            ));
        }
        if par_outcome.records != outcome.records {
            violations.push(format!(
                "nondeterministic records: parallelism {} differs from parallelism 1",
                opts.parallelism
            ));
        }
    }

    // Caches must be invisible under fault injection too: a caches-off
    // replay of the same plan is byte-for-byte identical (DESIGN.md §12).
    // Combined with the cross-parallelism check above, this also proves
    // on/off equivalence at parallelism N.
    {
        let (off_report, off_outcome) = replay(opts, 1, false);
        if off_report.to_jsonl() != report.to_jsonl() {
            violations.push("cache-sensitive trace: caches off differs from caches on".to_string());
        }
        if off_outcome.records != outcome.records {
            violations
                .push("cache-sensitive records: caches off differs from caches on".to_string());
        }
    }

    let counter = |name: &str, label: &str| -> u64 {
        report.counters.get(&(name.to_string(), label.to_string())).copied().unwrap_or(0)
    };

    // The plan must actually bite: a chaos run with zero injected faults
    // (or zero surfaced degradations) means the harness is testing
    // nothing.
    let mut fault_total = 0u64;
    for (cause, kinds) in CAUSES {
        let faults: u64 = kinds.iter().map(|k| counter(metric::FAULTS, k)).sum();
        let recovered: u64 = kinds.iter().map(|k| counter(metric::FAULT_RECOVERED, k)).sum();
        let degraded = counter(metric::DEGRADED, cause);
        fault_total += faults;
        // Silence is the violation: a fault that neither recovered nor
        // degraded vanished. The converse overshoot is legitimate — a
        // recovered fault burns turn budget, which can deadline-degrade
        // a later stage of the same turn.
        if faults > recovered + degraded {
            violations.push(format!(
                "unsurfaced {cause} faults: {faults} observed, {recovered} recovered + \
                 {degraded} degraded"
            ));
        }
        if recovered > faults {
            violations.push(format!(
                "phantom {cause} recoveries: {recovered} recovered but only {faults} observed"
            ));
        }
    }
    if fault_total == 0 {
        violations.push("the chaos plan injected no faults at all".to_string());
    }

    // Every degradation — injected or organic — must have produced
    // exactly one visible degraded reply.
    let degraded_total: u64 =
        report.counters.iter().filter(|((m, _), _)| m == metric::DEGRADED).map(|(_, &v)| v).sum();
    let degraded_replies = counter(metric::REPAIR, "degraded");
    if degraded_total == 0 {
        violations.push("no turn degraded under the chaos plan".to_string());
    }
    if degraded_total != degraded_replies {
        violations.push(format!(
            "invisible degradations: {degraded_total} counted, {degraded_replies} degraded \
             replies shown"
        ));
    }

    ChaosReport { report, outcome, violations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_chaos_passes_the_contract() {
        let opts = ChaosOptions { quick: true, seed: 42, parallelism: 4 };
        let chaos = run(&opts);
        assert!(chaos.passed(), "violations: {:?}", chaos.violations);
        assert!(chaos.counter_total(metric::FAULTS) > 0);
        assert!(chaos.counter_total(metric::DEGRADED) > 0);
        assert!(chaos.counter_total(metric::FAULT_RECOVERED) > 0);
        // Degradation hurts but does not sink the replay.
        assert!(chaos.outcome.success_rate() > 0.5);
    }
}
