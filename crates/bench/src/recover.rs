//! The durability benchmark behind `repro recover` (DESIGN.md §16): a
//! kill-style restart over a real snapshot + WAL pair. The pass seeds a
//! durability directory from the MDX world, logs a mutation tail (bulk
//! `risk` inserts plus an index build), drops the handle *without* a
//! snapshot, corrupts the log's tail with garbage bytes, and then times
//! recovery — asserting the recovered KB matches a live oracle that
//! applied the same mutations: same JSON image, same generation
//! counters, same access paths. The timed recovery is a *comparison*:
//! the identical world and torn WAL are also recovered through a twin
//! directory whose snapshot was written in the legacy `OBCSSNP1` JSON
//! encoding, so `recover_replay` measures the streamed `OBCSSNB1`
//! binary format against the JSON parse it replaced, under a committed
//! `min_speedup` floor. A `recover_compact` stage times the full
//! compaction swap (stream snapshot to tmp, rename, WAL handoff) over
//! the recovered state. Finally a server started over the recovered
//! directory replays a deterministic script and its replies are
//! asserted byte-identical to a server holding the original KB — the
//! same equality-before-speed contract every other stage follows. The
//! timed stages join the `repro perf` report under the usual regression
//! ceiling in `BENCH_perf.json`.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use obcs_kb::snapshot::write_snapshot_json;
use obcs_kb::{DurableKb, IndexKind, Value, SNAPSHOT_FILE, WAL_FILE};
use obcs_mdx::data::build_mdx_kb;
use obcs_serve::protocol::encode_line;
use obcs_serve::{Client, DurabilityConfig, ServeConfig, Server};
use obcs_sim::traffic::INTENT_MIX;
use obcs_sim::utterance::generate;

use crate::perf::{Comparison, PerfOptions, Timing};
use crate::World;

/// Committed floor for the `recover_replay` comparison: recovering the
/// binary `OBCSSNB1` snapshot must beat recovering the same image from
/// the legacy JSON encoding by at least this factor (the baseline sits
/// near 4x; 1.5x leaves headroom for runner noise while still failing a
/// binary path that silently falls back to a JSON round-trip).
pub const RECOVER_REPLAY_FLOOR: f64 = 1.5;

/// Committed floor for the `recover_vs_rebuild` comparison. In the
/// quick profile the 60-drug generator is about as cheap as recovery
/// itself (both a handful of ms), so the floor does not demand a win —
/// it demands recovery never become *materially slower* than throwing
/// the directory away and regenerating the world, which is the point
/// where durability stops paying for itself.
pub const RECOVER_VS_REBUILD_FLOOR: f64 = 0.5;

/// What one `repro recover` run produced: the gated timings plus the
/// raw recovery numbers the report prints.
pub struct RecoverBenchOutcome {
    /// Stages for the perf report (`recover_` prefix).
    pub timings: Vec<Timing>,
    /// The recover-vs-rebuild comparison (`recover_` prefix).
    pub comparisons: Vec<Comparison>,
    /// WAL records replayed by the timed recovery.
    pub wal_records: usize,
    /// Garbage tail bytes the recovery truncated (must be non-zero: the
    /// pass always tears the log before recovering).
    pub wal_truncated_bytes: u64,
    /// Wall time of the timed recovery (binary snapshot), ms.
    pub recover_ms: f64,
    /// Wall time of recovering the same image + torn WAL through the
    /// legacy JSON snapshot encoding, ms.
    pub json_recover_ms: f64,
    /// Wall time of one full compaction swap over the recovered state, ms.
    pub compact_ms: f64,
    /// Wall time of rebuilding the same KB from the data generator, ms.
    pub rebuild_ms: f64,
    /// Turns in the byte-identity script served by both servers.
    pub identity_turns: usize,
}

/// Deterministic script for the recovered-server identity check — same
/// shape as the serve bench: a greeting, generated domain utterances
/// over the intent mix, and a gibberish repair turn.
fn identity_script(world: &World, seed: u64) -> Vec<String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4ec0);
    let mut script = vec!["hello".to_string()];
    for (name, _) in INTENT_MIX.iter().take(10) {
        if let Some(utterance) = generate(name, &world.pools, &mut rng) {
            script.push(utterance);
        }
    }
    script.push("asdf qwerty zxcv".to_string());
    script
}

/// Replay `script` on a fresh session against `server`, returning each
/// reply's full encoded wire line.
fn replay(server: &Server, script: &[String]) -> Vec<String> {
    let mut client = Client::connect(server.addr()).expect("recover bench: connect");
    let lines = script
        .iter()
        .map(|utt| encode_line(&client.turn("recover-identity", utt).expect("recover bench: turn")))
        .collect();
    client.end("recover-identity").expect("recover bench: end session");
    lines
}

/// Run the durability benchmark. Panics on any recovery divergence from
/// the live oracle or on served-reply divergence — a run with either is
/// not a benchmark.
pub fn run(opts: &PerfOptions) -> RecoverBenchOutcome {
    let world = if opts.quick { World::small(opts.seed) } else { World::full(opts.seed) };
    let drugs = world.config.drugs as i64;
    let tail_inserts: usize = if opts.quick { 240 } else { 1200 };

    let dir: PathBuf = std::env::temp_dir().join(format!(
        "obcs_recover_bench_{}_{}",
        std::process::id(),
        opts.seed
    ));
    std::fs::remove_dir_all(&dir).ok();

    // ---- rebuild twin: the same KB from the data generator ---------
    let t = Instant::now();
    let rebuilt = build_mdx_kb(world.config);
    let rebuild_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert!(rebuilt.has_table("risk"), "recover bench: generator produced the MDX schema");
    drop(rebuilt);

    // ---- seed the durability directory from the bootstrapped KB ----
    let seeded = world.kb.clone();
    let t = Instant::now();
    let mut durable = DurableKb::create(&dir, seeded).expect("recover bench: create");
    let snapshot_write_ms = t.elapsed().as_secs_f64() * 1000.0;

    // ---- mutation tail: bulk inserts + an index build --------------
    let t = Instant::now();
    for i in 0..tail_inserts {
        durable
            .insert(
                "risk",
                vec![
                    Value::Int(1_000_000 + i as i64),
                    Value::Int(i as i64 % drugs),
                    Value::text(format!("recovered-tail risk {i}")),
                    Value::text(format!("post-snapshot summary {i}")),
                    Value::text(if i % 2 == 0 { "low" } else { "high" }),
                    Value::text("see monograph"),
                ],
            )
            .expect("recover bench: tail insert");
    }
    let index_created = durable
        .create_index("risk", "severity_note", IndexKind::Hash)
        .expect("recover bench: tail index");
    durable.sync().expect("recover bench: sync");
    let wal_append_ms = t.elapsed().as_secs_f64() * 1000.0;
    let expected_records = tail_inserts + usize::from(index_created);
    assert_eq!(durable.pending_records(), expected_records);

    // ---- kill-style exit: no snapshot, then tear the log tail ------
    let wal_path = durable.wal_path().to_path_buf();
    let oracle = durable.into_kb();
    let garbage: &[u8] = &[0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f, 0x01];
    std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .and_then(|mut f| f.write_all(garbage))
        .expect("recover bench: tear the tail");

    // ---- JSON-encoding twin: same image, same torn WAL -------------
    // The snapshot is rewritten in the legacy `OBCSSNP1` JSON envelope
    // (the seeded KB is exactly the image `create` snapshotted) and the
    // torn log is copied byte-for-byte, so the only difference the
    // `recover_replay` comparison can measure is the snapshot format.
    let json_dir =
        dir.with_file_name(format!("obcs_recover_bench_json_{}_{}", std::process::id(), opts.seed));
    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::create_dir_all(&json_dir).expect("recover bench: json twin dir");
    write_snapshot_json(&world.kb, &json_dir.join(SNAPSHOT_FILE))
        .expect("recover bench: json twin snapshot");
    std::fs::copy(&wal_path, json_dir.join(WAL_FILE)).expect("recover bench: json twin wal");
    let t = Instant::now();
    let (json_recovered, json_report) =
        DurableKb::open(&json_dir).expect("recover bench: json twin recover");
    let json_recover_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert!(json_report.snapshot_loaded, "json twin: the snapshot must load");
    assert_eq!(json_report.wal_records, expected_records, "json twin replays the same tail");
    assert_eq!(json_report.wal_truncated_bytes, garbage.len() as u64);
    assert_eq!(json_report.wal_discarded_records, 0, "a pre-epoch snapshot discards nothing");
    assert_eq!(
        json_recovered.into_kb().to_json(),
        oracle.to_json(),
        "both snapshot encodings must recover the identical image"
    );
    std::fs::remove_dir_all(&json_dir).ok();

    // ---- timed recovery (binary snapshot) --------------------------
    let t = Instant::now();
    let (recovered, report) = DurableKb::open(&dir).expect("recover bench: recover");
    let recover_ms = t.elapsed().as_secs_f64() * 1000.0;

    assert!(report.snapshot_loaded, "recover bench: the seed snapshot must load");
    assert_eq!(report.wal_records, expected_records, "every intact tail record replays");
    assert_eq!(report.wal_truncated_bytes, garbage.len() as u64, "the torn tail is truncated");
    assert_eq!(report.auto_indexes_created, 0, "policy snapshots never need the safety net");
    let recovered = recovered.into_kb();
    assert_eq!(recovered.generation(), oracle.generation(), "data generation restored");
    assert_eq!(recovered.schema_generation(), oracle.schema_generation(), "schema generation");
    assert_eq!(recovered.index_count(), oracle.index_count(), "secondary indexes restored");
    assert_eq!(recovered.to_json(), oracle.to_json(), "recovered KB is byte-identical");
    // The replayed tail is live data, not just bytes: a marker row the
    // pre-tail world never had answers through the recovered KB, with
    // the same access path the oracle uses.
    let marker = "SELECT description FROM risk WHERE risk_id = 1000001";
    assert_eq!(recovered.query(marker).expect("marker query").rows.len(), 1);
    assert_eq!(world.kb.query(marker).expect("marker query").rows.len(), 0);
    for probe in [marker, "SELECT summary FROM risk WHERE severity_note = 'high'"] {
        assert_eq!(
            recovered.prepare(probe).expect("plan").access_label(),
            oracle.prepare(probe).expect("plan").access_label(),
            "access path diverged on {probe:?}"
        );
    }

    // ---- timed compaction swap over the recovered state ------------
    // Runs on a copy of the recovered directory so the main directory
    // keeps its replayable tail for the server-startup check below. One
    // `snapshot()` is the full swap protocol: stream the image to a tmp
    // file, stage the successor WAL, rename-commit, bump the epoch.
    let compact_dir = dir.with_file_name(format!(
        "obcs_recover_bench_compact_{}_{}",
        std::process::id(),
        opts.seed
    ));
    std::fs::remove_dir_all(&compact_dir).ok();
    std::fs::create_dir_all(&compact_dir).expect("recover bench: compact dir");
    for f in [SNAPSHOT_FILE, WAL_FILE] {
        std::fs::copy(dir.join(f), compact_dir.join(f)).expect("recover bench: compact copy");
    }
    let (mut compactable, creport) =
        DurableKb::open(&compact_dir).expect("recover bench: compact open");
    assert_eq!(creport.wal_records, expected_records);
    let compact_epoch = compactable.epoch();
    let t = Instant::now();
    compactable.snapshot().expect("recover bench: compaction swap");
    let compact_ms = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(compactable.pending_records(), 0, "compaction empties the log");
    assert_eq!(compactable.epoch(), compact_epoch + 1, "compaction bumps the epoch");
    let compacted = compactable.into_kb();
    let (reopened, rreport) = DurableKb::open(&compact_dir).expect("recover bench: compact reopen");
    assert_eq!(rreport.wal_records, 0, "a compacted directory replays nothing");
    assert_eq!(rreport.epoch, compact_epoch + 1);
    assert_eq!(reopened.into_kb().to_json(), compacted.to_json(), "the swap lost nothing");
    std::fs::remove_dir_all(&compact_dir).ok();

    // ---- byte-identity: recovered server vs original server --------
    let script = identity_script(&world, opts.seed);
    let mut original_agent = world.agent().agent;
    original_agent.set_kb(oracle);
    let mut original_server = Server::start(original_agent, ServeConfig::default())
        .expect("recover bench: bind original");
    let expected_lines = replay(&original_server, &script);
    original_server.shutdown();

    // The recovered server starts from a *stale* agent (bootstrap-era
    // KB); startup recovery must bring its replies up to the original.
    let config = ServeConfig { durability: Some(DurabilityConfig::at(&dir)), ..Default::default() };
    let mut recovered_server =
        Server::start(world.agent().agent, config).expect("recover bench: bind recovered");
    let startup = recovered_server.recovery().expect("recover bench: startup recovery").clone();
    assert_eq!(startup.wal_records, expected_records, "server recovery replays the same tail");
    assert_eq!(startup.wal_truncated_bytes, 0, "the first recovery already truncated the tear");
    let served_lines = replay(&recovered_server, &script);
    recovered_server.shutdown();
    assert_eq!(
        served_lines, expected_lines,
        "recovered-server replies must be byte-identical to the original server"
    );

    std::fs::remove_dir_all(&dir).ok();

    let work = format!("snapshot + {expected_records} records");
    let timings = vec![
        Timing {
            name: "recover_snapshot_write".to_string(),
            work: format!("{}-drug world snapshot", world.config.drugs),
            ms: snapshot_write_ms,
        },
        Timing {
            name: "recover_wal_append".to_string(),
            work: format!("{expected_records} records + fsync"),
            ms: wal_append_ms,
        },
        Timing {
            name: "recover_compact".to_string(),
            work: format!("swap @ {expected_records} records"),
            ms: compact_ms,
        },
    ];
    let ratio = |before: f64, after: f64| if after > 0.0 { before / after } else { f64::INFINITY };
    let comparisons = vec![
        Comparison {
            name: "recover_replay".to_string(),
            work: work.clone(),
            before_ms: json_recover_ms,
            after_ms: recover_ms,
            speedup: ratio(json_recover_ms, recover_ms),
            min_speedup: Some(RECOVER_REPLAY_FLOOR),
        },
        Comparison {
            name: "recover_vs_rebuild".to_string(),
            work,
            before_ms: rebuild_ms,
            after_ms: recover_ms,
            speedup: ratio(rebuild_ms, recover_ms),
            min_speedup: Some(RECOVER_VS_REBUILD_FLOOR),
        },
    ];
    RecoverBenchOutcome {
        timings,
        comparisons,
        wal_records: expected_records,
        wal_truncated_bytes: garbage.len() as u64,
        recover_ms,
        json_recover_ms,
        compact_ms,
        rebuild_ms,
        identity_turns: script.len(),
    }
}
