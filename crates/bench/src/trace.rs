//! The `repro trace` subcommand: a traced replay of the traffic profile.
//!
//! Replays the quick (or full) traffic profile with a
//! [`CollectingRecorder`](obcs_telemetry::CollectingRecorder) installed on
//! every replay shard and reports the per-stage latency breakdown
//! (p50/p95/p99), the usage counters (turns, reply kinds, intents,
//! repairs), and the per-intent classifier-confidence histograms — the
//! reproduction's version of the paper's §7 usage metrics, regenerated
//! from traffic instead of seven months of production logs
//! (see DESIGN.md §10).
//!
//! Span durations default to deterministic *ticks* so the emitted trace is
//! bit-for-bit identical across runs, machines, and parallelism; pass
//! `--wall` for real nanosecond latencies.

use obcs_mdx::data::MdxDataConfig;
use obcs_sim::traffic::{run_traffic_traced, SimConfig, TraceMode};
use obcs_sim::SimOutcome;
use obcs_telemetry::TraceReport;

use crate::World;

/// Options of the `repro trace` subcommand.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Quick profile (60 drugs, 400 interactions — the CI gate) instead of
    /// the full one (150 drugs, 2000 interactions).
    pub quick: bool,
    /// Measure wall nanoseconds instead of deterministic ticks.
    pub wall: bool,
    /// Seed for both the synthetic world and the traffic.
    pub seed: u64,
    /// Replay shard threads (the trace is identical for every value under
    /// tick timing).
    pub parallelism: usize,
}

/// Runs the traced replay and returns the merged report plus the replay
/// outcome (for the success-rate context line).
pub fn run(opts: &TraceOptions) -> (TraceReport, SimOutcome) {
    let (drugs, interactions) = if opts.quick { (60, 400) } else { (150, 2000) };
    let world = World::with_config(MdxDataConfig { drugs, seed: opts.seed });
    let mut mdx = world.agent();
    let mode = if opts.wall { TraceMode::Wall } else { TraceMode::Ticks };
    let (outcome, report) = run_traffic_traced(
        &mut mdx.agent,
        &world.onto,
        &world.pools,
        SimConfig {
            interactions,
            seed: opts.seed,
            parallelism: opts.parallelism,
            ..SimConfig::default()
        },
        mode,
    );
    (report.expect("trace mode is never Off here"), outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trace_is_deterministic_and_valid() {
        let opts = TraceOptions { quick: true, wall: false, seed: 42, parallelism: 1 };
        let (report, outcome) = run(&opts);
        assert!(!outcome.records.is_empty());
        assert_eq!(report.unit, "ticks");
        let jsonl = report.to_jsonl();
        let stats = obcs_telemetry::validate_jsonl(&jsonl).expect("well-formed trace");
        assert!(stats.spans > 0);
        // Bit-for-bit identical on a second run.
        let (again, _) = run(&opts);
        assert_eq!(jsonl, again.to_jsonl());
    }
}
