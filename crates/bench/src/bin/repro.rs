//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p obcs-bench --bin repro -- all
//! cargo run --release -p obcs-bench --bin repro -- table5 [--seed N] [--interactions N]
//! ```
//!
//! Subcommands: `fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1
//! table2 table3 table4 table5 fig11 fig12 inventory summary transcript
//! ablation-centrality ablation-training ablation-synonyms
//! ablation-augmentation ablation-classifier ablation-feedback-loop
//! ablation-sessions all` — plus the non-artifact passes, which are not
//! part of `all`: `lint` (obcs-lint static analysis over the artifact
//! chain), `perf` (stage timings against the committed baseline), `scale`
//! (the latency-vs-KB-size curve for indexed KB execution, with enforced
//! speedup floors at the 15k-drug point), `serve` (the socket serving
//! benchmark: a real `obcs-serve` server under the Table 5 load mix,
//! with p50/p99 served-turn latency gates), `recover` (the durability
//! benchmark: kill-style snapshot + WAL recovery over a torn log, with
//! recovered-server replies gated byte-identical), `trace` (traced traffic replay
//! with per-stage latency breakdown), `chaos` (fault-injected replay
//! checking the robustness contract), and `export` (lint-gates and writes
//! the offline artifacts to `artifacts/`, or `--dir DIR`). The README's
//! "Reproduction harness" section documents the full set.

use obcs_agent::ReplyKind;
use obcs_bench::World;
use obcs_core::training::{generate_for_intent, ExampleSource, TrainingGenConfig};
use obcs_dialogue::DialogueLogicTable;
use obcs_lint::{run_all, LintConfig, LintContext};
use obcs_mdx::data::MdxDataConfig;
use obcs_sim::eval::{classifier_evaluation, fig11, fig12, render_success_rows};
use obcs_sim::traffic::{run_traffic, SimConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const DEFAULT_SEED: u64 = 20200614;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let seed = flag(&args, "--seed").unwrap_or(DEFAULT_SEED);
    let interactions = flag(&args, "--interactions").unwrap_or(5000) as usize;
    let drugs = flag(&args, "--drugs").unwrap_or(150) as usize;

    // `perf` and `trace` manage their own worlds (they time or trace the
    // whole pipeline themselves) and are deliberately not part of `all`:
    // they are measurement passes, not paper artifacts.
    if cmd == "perf" {
        perf(&args, seed);
        return;
    }
    if cmd == "trace" {
        trace(&args, seed);
        return;
    }
    if cmd == "chaos" {
        chaos(&args, seed);
        return;
    }
    if cmd == "verify" {
        verify(&args);
        return;
    }
    if cmd == "scale" {
        scale(&args, seed);
        return;
    }
    if cmd == "serve" {
        serve(&args, seed);
        return;
    }
    if cmd == "recover" {
        recover(&args, seed);
        return;
    }

    let world = World::with_config(MdxDataConfig { drugs, seed });
    let run = |name: &str| cmd == name || cmd == "all";

    if run("lint") {
        lint_report(&world);
    }
    if run("inventory") {
        inventory(&world);
    }
    if run("fig2") {
        fig2(&world);
    }
    if run("fig3") {
        fig3(&world);
    }
    if run("fig4") {
        fig4(&world);
    }
    if run("fig5") {
        fig5(&world);
    }
    if run("fig6") {
        fig6(&world);
    }
    if run("fig7") {
        fig7(&world, seed);
    }
    if run("fig8") {
        fig8(&world);
    }
    if run("fig9") {
        fig9(&world);
    }
    if run("fig10") {
        fig10(&world);
    }
    if run("table1") {
        table1(&world);
    }
    if run("table2") {
        table2(&world);
    }
    if run("table3") {
        table3(seed);
    }
    if run("table4") {
        table4(&world);
    }
    if run("table5") || run("fig11") || run("fig12") || run("summary") {
        evaluation(&world, seed, interactions, cmd);
    }
    if run("transcript") {
        transcript(&world);
    }
    if run("ablation-centrality") {
        ablation_centrality(&world);
    }
    if run("ablation-training") {
        ablation_training(seed);
    }
    if run("ablation-synonyms") {
        ablation_synonyms(&world);
    }
    if run("ablation-augmentation") {
        ablation_augmentation(&world);
    }
    if run("ablation-classifier") {
        ablation_classifier(&world, seed);
    }
    if run("ablation-feedback-loop") {
        ablation_feedback_loop(&world);
    }
    if run("ablation-sessions") {
        ablation_sessions(&world, seed);
    }
    if cmd == "export" {
        let dir = str_flag(&args, "--dir").unwrap_or_else(|| "artifacts".to_string());
        export(&world, &dir);
    }
}

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// `repro perf [--quick] [--seed N] [--out PATH] [--check BASELINE]`
///
/// Times every pipeline stage, comparing the retained pre-optimisation
/// implementations against the shipped ones on identical workloads.
/// `--out` writes the JSON report (the committed `BENCH_perf.json` is a
/// `--quick` run); `--check` compares this run against a committed
/// baseline and exits non-zero on a malformed file or a regression.
fn perf(args: &[String], seed: u64) {
    use obcs_bench::perf;
    let opts = perf::PerfOptions { quick: args.iter().any(|a| a == "--quick"), seed };
    heading(&format!("Performance baseline ({} mode)", if opts.quick { "quick" } else { "full" }));
    let report = perf::run(&opts);
    print!("{}", report.render_text());
    if let Some(path) = str_flag(args, "--out") {
        std::fs::write(&path, report.to_json()).expect("write perf report");
        println!("wrote {path}");
    }
    if let Some(path) = str_flag(args, "--check") {
        let verdict =
            perf::load_baseline(&path).and_then(|baseline| report.check_against(&baseline));
        match verdict {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("perf check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro scale [--quick] [--seed N] [--check BASELINE]`
///
/// Runs just the large-world scaling curve (DESIGN.md §14): indexed vs
/// scan-twin latency for point lookup, FK join, and LIKE-prefix at
/// 150 / 1.5k / 15k drugs. The floors the run itself carries (10x point
/// lookup at 15k, etc.) are enforced directly; `--check` additionally
/// compares against the scale stages of a committed baseline.
fn scale(args: &[String], seed: u64) {
    use obcs_bench::{perf, scale};
    let opts = perf::PerfOptions { quick: args.iter().any(|a| a == "--quick"), seed };
    heading(&format!(
        "Large-world scaling curve ({} mode)",
        if opts.quick { "quick" } else { "full" }
    ));
    let outcome = scale::run(&opts);
    let report = perf::PerfReport {
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        seed,
        timings: outcome.timings,
        comparisons: outcome.comparisons,
    };
    print!("{}", report.render_text());
    for c in &report.comparisons {
        if let Some(floor) = c.min_speedup {
            if c.speedup < floor {
                eprintln!(
                    "scale check failed: {} speedup {:.2}x below the {floor:.2}x floor",
                    c.name, c.speedup
                );
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = str_flag(args, "--check") {
        let verdict = perf::load_baseline(&path)
            .and_then(|baseline| report.check_against(&baseline.filtered("scale_")));
        match verdict {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("scale check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro serve [--quick] [--seed N] [--check BASELINE]`
///
/// Runs the socket serving benchmark (DESIGN.md §15): starts a real
/// `obcs-serve` server on an ephemeral port, proves served replies are
/// byte-identical to an in-process replay of the same script, then
/// drives the Table 5 intent mix from concurrent connections and
/// reports p50/p99 served-turn latency and turns/sec. The invariants
/// the run itself carries (all turns answered, zero shed, zero
/// degraded, byte-identity) are enforced inside the run; `--check`
/// additionally compares the `serve_` stages against a committed
/// baseline.
fn serve(args: &[String], seed: u64) {
    use obcs_bench::{perf, serve};
    let opts = perf::PerfOptions { quick: args.iter().any(|a| a == "--quick"), seed };
    heading(&format!(
        "Socket serving benchmark ({} mode)",
        if opts.quick { "quick" } else { "full" }
    ));
    let outcome = serve::run(&opts);
    let report = perf::PerfReport {
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        seed,
        timings: outcome.timings,
        comparisons: Vec::new(),
    };
    print!("{}", report.render_text());
    println!(
        "served {} turns over {} connections: p50 {:.3} ms, p99 {:.3} ms, {:.0} turns/s \
         (shed {}, degraded {})",
        outcome.turns,
        outcome.connections,
        outcome.p50_ms,
        outcome.p99_ms,
        outcome.turns_per_sec,
        outcome.shed,
        outcome.degraded
    );
    if outcome.p99_ms < outcome.p50_ms {
        eprintln!("serve check failed: p99 below p50");
        std::process::exit(1);
    }
    if let Some(path) = str_flag(args, "--check") {
        let verdict = perf::load_baseline(&path)
            .and_then(|baseline| report.check_against(&baseline.filtered("serve_")));
        match verdict {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("serve check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro recover [--quick] [--seed N] [--check BASELINE]`
///
/// Runs the durability benchmark (DESIGN.md §16): seeds a snapshot +
/// WAL pair from the MDX world, logs a mutation tail, drops the handle
/// without a snapshot (kill-style), corrupts the log tail with garbage
/// bytes, and recovers. The run itself enforces the correctness
/// contract — recovered KB byte-identical to a live oracle (data,
/// generation counters, secondary indexes, access paths) and a server
/// restarted over the recovered directory serving byte-identical
/// replies to the original. `--check` additionally compares the
/// `recover_` stages against a committed baseline.
fn recover(args: &[String], seed: u64) {
    use obcs_bench::{perf, recover};
    let opts = perf::PerfOptions { quick: args.iter().any(|a| a == "--quick"), seed };
    heading(&format!("Durability benchmark ({} mode)", if opts.quick { "quick" } else { "full" }));
    let outcome = recover::run(&opts);
    let report = perf::PerfReport {
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        seed,
        timings: outcome.timings,
        comparisons: outcome.comparisons,
    };
    print!("{}", report.render_text());
    println!(
        "recovered {} WAL records (torn tail: {} bytes truncated) in {:.1} ms binary \
         vs {:.1} ms JSON — rebuild twin {:.1} ms, compaction swap {:.1} ms; \
         {} served turns byte-identical after restart",
        outcome.wal_records,
        outcome.wal_truncated_bytes,
        outcome.recover_ms,
        outcome.json_recover_ms,
        outcome.rebuild_ms,
        outcome.compact_ms,
        outcome.identity_turns
    );
    if outcome.wal_truncated_bytes == 0 {
        eprintln!("recover check failed: the pass must exercise a torn tail");
        std::process::exit(1);
    }
    if let Some(path) = str_flag(args, "--check") {
        let verdict = perf::load_baseline(&path)
            .and_then(|baseline| report.check_against(&baseline.filtered("recover_")));
        match verdict {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("recover check failed: {msg}");
                std::process::exit(1);
            }
        }
    }
}

/// `repro trace [--quick] [--wall] [--seed N] [--parallelism N] [--out PATH]`
///
/// Replays the traffic profile with telemetry collection on and prints
/// the per-stage latency breakdown (p50/p95/p99), usage counters, and
/// per-intent confidence histograms. Durations default to deterministic
/// ticks (identical output for every run and parallelism at a fixed
/// seed); `--wall` measures real nanoseconds. `--out` writes the JSONL
/// trace; the emitted trace is validated either way and a malformed one
/// exits non-zero.
fn trace(args: &[String], seed: u64) {
    use obcs_bench::trace;
    let opts = trace::TraceOptions {
        quick: args.iter().any(|a| a == "--quick"),
        wall: args.iter().any(|a| a == "--wall"),
        seed,
        parallelism: flag(args, "--parallelism").unwrap_or(1) as usize,
    };
    heading(&format!(
        "Traced traffic replay ({} profile, {} timing)",
        if opts.quick { "quick" } else { "full" },
        if opts.wall { "wall" } else { "tick" }
    ));
    let (report, outcome) = trace::run(&opts);
    print!("{}", report.render_latency_table());
    print!("{}", report.render_counter_table());
    print!("{}", report.render_ratio_table());
    println!(
        "replayed {} interactions — success rate {:.1}%",
        outcome.records.len(),
        outcome.success_rate() * 100.0
    );
    let jsonl = report.to_jsonl();
    match obcs_telemetry::validate_jsonl(&jsonl) {
        Ok(stats) => println!(
            "trace OK: {} spans, {} counters, {} histograms",
            stats.spans, stats.counters, stats.histograms
        ),
        Err(msg) => {
            eprintln!("malformed trace: {msg}");
            std::process::exit(1);
        }
    }
    if let Some(path) = str_flag(args, "--out") {
        std::fs::write(&path, &jsonl).expect("write trace");
        println!("wrote {path}");
    }
}

/// `repro chaos [--quick] [--seed N] [--parallelism N]`
///
/// Replays the traffic profile under the seeded chaos fault plan and
/// checks the robustness contract (DESIGN.md §11): no panics, a trace
/// and record sequence that are byte-identical at parallelism 1 and N,
/// and no silent faults — every injected fault is either recovered by a
/// retry or surfaced as a visible degraded reply. Any violation prints
/// and exits non-zero.
fn chaos(args: &[String], seed: u64) {
    use obcs_bench::chaos;
    let opts = chaos::ChaosOptions {
        quick: args.iter().any(|a| a == "--quick"),
        seed,
        parallelism: flag(args, "--parallelism").unwrap_or(4) as usize,
    };
    heading(&format!(
        "Chaos replay ({} profile, determinism checked at parallelism {})",
        if opts.quick { "quick" } else { "full" },
        opts.parallelism
    ));
    let chaos = chaos::run(&opts);
    print!("{}", chaos.report.render_counter_table());
    println!(
        "replayed {} interactions under faults — success rate {:.1}%",
        chaos.outcome.records.len(),
        chaos.outcome.success_rate() * 100.0
    );
    println!(
        "faults {}  recovered {}  degraded {}  retries {}",
        chaos.counter_total(obcs_telemetry::metric::FAULTS),
        chaos.counter_total(obcs_telemetry::metric::FAULT_RECOVERED),
        chaos.counter_total(obcs_telemetry::metric::DEGRADED),
        chaos.counter_total(obcs_telemetry::metric::RETRIES),
    );
    if chaos.passed() {
        println!("chaos OK: deterministic, every fault recovered or surfaced");
    } else {
        for v in &chaos.violations {
            eprintln!("chaos violation: {v}");
        }
        std::process::exit(1);
    }
}

/// `repro verify [--quick]`
///
/// Runs the full static pass — obcs-lint (`OBCS0xx`) and obcs-verify
/// (`OBCS1xx`: dialogue-flow model checking, query bind-checking,
/// cross-artifact consistency) — over every committed
/// `artifacts/*_space.json`, each loaded exactly as the `spacelint` /
/// `spaceverify` binaries load it. Exits non-zero if any space produces
/// an error. `--quick` lowers the flow-exploration state cap (a
/// truncated exploration is reported as a warning, never silently).
fn verify(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = obcs_verify::VerifyConfig {
        max_states: if quick { 5_000 } else { obcs_verify::VerifyConfig::default().max_states },
    };
    heading(&format!(
        "Static verification — lint + verify over committed artifacts ({} mode)",
        if quick { "quick" } else { "full" }
    ));

    let mut spaces: Vec<std::path::PathBuf> = std::fs::read_dir("artifacts")
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with("_space.json"))
                })
                .collect()
        })
        .unwrap_or_default();
    spaces.sort();
    if spaces.is_empty() {
        eprintln!("verify: no artifacts/*_space.json found — run `repro export` first");
        std::process::exit(1);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for space_path in &spaces {
        let (space, kb, onto) = match obcs_lint::load_artifacts(space_path, None) {
            Ok(loaded) => loaded,
            Err(msg) => {
                eprintln!("verify: {msg}");
                std::process::exit(1);
            }
        };
        let mapping = obcs_nlq::OntologyMapping::infer(&onto, &kb);
        let lint_ctx = LintContext::new(&onto, &kb, &mapping, &space);
        let lint_report = run_all(&lint_ctx, &LintConfig::default());
        let verify_ctx = obcs_verify::VerifyContext::new(&onto, &kb, &mapping, &space);
        let verify_report = obcs_verify::run_all(&verify_ctx, &cfg);
        let flow = verify_ctx.flow(&cfg);
        println!(
            "{}: lint {} finding(s), verify {} finding(s) — flow explored {} states / {} edges{}",
            space_path.display(),
            lint_report.len(),
            verify_report.len(),
            flow.states,
            flow.edges,
            if flow.truncated { " (truncated)" } else { "" },
        );
        for report in [&lint_report, &verify_report] {
            if !report.is_empty() {
                print!("{}", report.render_text());
            }
            errors += report.count(obcs_lint::Severity::Error);
            warnings += report.count(obcs_lint::Severity::Warning);
        }
    }
    println!("verified {} space(s): {} error(s), {} warning(s)", spaces.len(), errors, warnings);
    if errors > 0 {
        eprintln!("verify: FAILED with {errors} error(s)");
        std::process::exit(1);
    }
    println!("verify OK");
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn inventory(world: &World) {
    heading("§6 inventory — paper vs reproduction");
    let inv = world.space.inventory();
    println!("ontology concepts        paper 59   ours {}", world.onto.concept_count());
    println!("ontology properties      paper 178  ours {}", world.onto.data_property_count());
    println!("ontology relationships   paper 58   ours {}", world.onto.object_property_count());
    println!("lookup intents           paper 14   ours {}", inv.lookup_intents);
    println!("relationship intents     paper 8    ours {}", inv.relationship_intents);
    println!("management intents       paper 14   ours {}", inv.management_intents);
    println!("entity-only intents      paper (DRUG_GENERAL) ours {}", inv.entity_only_intents);
    println!("total intents            paper 36   ours {}", inv.intents_total);
    println!("entities                 paper 52   ours {}", inv.entities);
    println!("training examples                    ours {}", inv.training_examples);
    println!("query templates                      ours {}", inv.templates);
}

fn fig2(world: &World) {
    heading("Figure 2 — medical ontology snippet (Drug neighbourhood)");
    let drug = world.onto.concept_id("Drug").expect("Drug");
    println!("data properties of Drug:");
    for dp in world.onto.data_properties_of(drug) {
        println!("  Drug.{}", dp.name);
    }
    println!("relationships from Drug:");
    for op in world.onto.outgoing(drug) {
        println!("  Drug -[{}]-> {}", op.name, world.onto.concept_name(op.target));
    }
    let risk = world.onto.concept_id("Risk").expect("Risk");
    println!("union:");
    for m in world.onto.union_members(risk) {
        println!("  Risk = unionOf(... {})", world.onto.concept_name(m));
    }
    let di = world.onto.concept_id("DrugInteraction").expect("DrugInteraction");
    println!("inheritance:");
    for c in world.onto.is_a_children(di) {
        println!("  {} isA DrugInteraction", world.onto.concept_name(c));
    }
    println!("(full graph: obcs_ontology::dot::to_dot exports Graphviz)");
}

fn fig3(world: &World) {
    heading("Figure 3 — lookup pattern");
    let intent = world.space.intent_by_name("Precautions of Drug").expect("intent");
    let p = &intent.patterns()[0];
    println!("Pattern:  {}", p.render(&world.onto));
    println!("Query:    Show me the Precautions for Benazepril?");
}

fn fig4(world: &World) {
    heading("Figure 4 — lookup pattern with union augmentation");
    let intent = world.space.intent_by_name("Risks of Drug").expect("intent");
    for (i, p) in intent.patterns().iter().enumerate() {
        let label = if i == 0 { "Pattern:   " } else { "Augmented: " };
        println!("{label}{}", p.render(&world.onto));
    }
}

fn fig5(world: &World) {
    heading("Figure 5 — direct relationship pattern (forward + inverse)");
    for name in ["Drugs That Treat Condition", "Conditions Treated by Drug"] {
        let intent = world.space.intent_by_name(name).expect("intent");
        println!("{}", intent.patterns()[0].render(&world.onto));
    }
    println!("Query 1:  What Drug treats Fever?");
    println!("Query 2:  What Indications are treated by Aspirin?");
}

fn fig6(world: &World) {
    heading("Figure 6 — indirect relationship pattern via Dosage");
    for name in ["Drugs and Dosage for Condition", "Drug Dosage for Condition"] {
        let intent = world.space.intent_by_name(name).expect("intent");
        println!("{}", intent.patterns()[0].render(&world.onto));
    }
    println!("Query 1:  Give me the Drug and its Dosage that treats Fever");
    println!("Query 2:  Give me the Dosage for Aspirin that treats Fever");
}

fn fig7(world: &World, seed: u64) {
    heading("Figure 7 — auto-generated intent training examples");
    let intent = world.space.intent_by_name("Precautions of Drug").expect("intent");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let examples = generate_for_intent(
        intent,
        &world.onto,
        &world.kb,
        &world.mapping,
        &world.space.synonyms,
        TrainingGenConfig { examples_per_pattern: 6, ..Default::default() },
        &mut rng,
    );
    println!("Pattern: {}", intent.patterns()[0].render(&world.onto));
    for e in examples.iter().take(6) {
        println!("  {}", e.text);
    }
}

fn fig8(world: &World) {
    heading("Figure 8 — SME augmentation of training examples");
    let intent = world.space.intent_by_name("Dose Adjustments for Drug").expect("intent");
    let generated: Vec<&str> = world
        .space
        .training
        .iter()
        .filter(|e| e.intent == intent.id && e.source == ExampleSource::Generated)
        .map(|e| e.text.as_str())
        .take(4)
        .collect();
    let augmented: Vec<&str> = world
        .space
        .training
        .iter()
        .filter(|e| e.intent == intent.id && e.source == ExampleSource::SmeAugmented)
        .map(|e| e.text.as_str())
        .collect();
    println!("Auto-generated:");
    for g in generated {
        println!("  {g}");
    }
    println!("From prior user queries (SME-labelled):");
    for a in augmented {
        println!("  {a}");
    }
}

fn fig9(world: &World) {
    heading("Figure 9 — structured query template generation");
    let intent = world.space.intent_by_name("Precautions of Drug").expect("intent");
    let labeled = &world.space.templates_for(intent.id)[0];
    println!("Pattern:   {}", intent.patterns()[0].render(&world.onto));
    println!("Template:  {}", labeled.template.sql());
    let drug = world.onto.concept_id("Drug").expect("Drug");
    let sql = labeled.template.instantiate(&[(drug, "Ibuprofen".into())]).expect("instantiation");
    println!("Instance:  {sql}");
    let rs = world.kb.query(&sql).expect("execution");
    println!("Rows:      {}", rs.rows.len());
}

fn fig10(world: &World) {
    heading("Figure 10 — dialogue-tree slot filling");
    let mut mdx = world.agent();
    println!("(a) user input matches intent but lacks the required entity:");
    println!("U: show me drugs that treat psoriasis");
    let r = mdx.agent.respond("show me drugs that treat psoriasis");
    println!("A: {}   [{:?}]", r.text, r.kind);
    println!("(b) next input supplies the entity; the response fires:");
    println!("U: pediatric");
    let r = mdx.agent.respond("pediatric");
    let first = r.text.lines().next().unwrap_or_default();
    println!("A: {first} …   [{:?}]", r.kind);
}

fn table1(world: &World) {
    heading("Table 1 — sample entity population");
    let concepts: Vec<&str> =
        world.onto.concepts().iter().take(4).map(|c| c.name.as_str()).collect();
    println!("{:<18} | Examples", "Entity");
    println!("{:<18} | {} … [Ontology Concepts]", "Concepts", concepts.join(", "));
    let risk = world.onto.concept_id("Risk").expect("Risk");
    let members: Vec<&str> =
        world.onto.union_members(risk).iter().map(|&m| world.onto.concept_name(m)).collect();
    println!("{:<18} | {} [Concepts under Risk]", "Risk", members.join(", "));
    let di = world.onto.concept_id("DrugInteraction").expect("DI");
    let children: Vec<&str> =
        world.onto.is_a_children(di).iter().map(|&m| world.onto.concept_name(m)).collect();
    println!(
        "{:<18} | {} [Concepts under Drug Interaction]",
        "Drug Interaction",
        children.join(", ")
    );
    let drug_entity = world
        .space
        .entities
        .iter()
        .find(|e| world.onto.concept_name(e.concept) == "Drug")
        .expect("drug entity");
    let ex: Vec<&str> = drug_entity.examples.iter().take(4).map(String::as_str).collect();
    println!("{:<18} | {} … [Instances of Drug]", "Drug", ex.join(", "));
}

fn table2(world: &World) {
    heading("Table 2 — sample entity synonyms");
    println!("{:<18} | Synonyms", "Entity");
    for canonical in ["Adverse Effect", "Condition", "Drug", "Precaution", "Dose Adjustment"] {
        let syns = world.space.synonyms.synonyms_of(canonical);
        println!("{canonical:<18} | {}", syns.join(", "));
    }
}

fn table3(seed: u64) {
    heading("Table 3 — generic dialogue logic table (mini Figure-2 domain)");
    let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
    let space = obcs_core::bootstrap(
        &onto,
        &kb,
        &mapping,
        obcs_core::BootstrapConfig {
            training: TrainingGenConfig { seed, ..Default::default() },
            ..Default::default()
        },
        &obcs_core::SmeFeedback::new(),
    );
    let table = DialogueLogicTable::from_space(&space, &onto);
    print!("{}", table.render(&onto));
}

fn table4(world: &World) {
    heading("Table 4 — MDX dialogue logic table (three request kinds)");
    let table = DialogueLogicTable::from_space(&world.space, &world.onto);
    let rows: Vec<_> = table
        .rows
        .iter()
        .filter(|r| {
            ["Drugs That Treat Condition", "Drug Dosage for Condition", "Drug-Drug Interactions"]
                .contains(&r.intent_name.as_str())
        })
        .cloned()
        .collect();
    let filtered = DialogueLogicTable { rows };
    print!("{}", filtered.render(&world.onto));
}

fn evaluation(world: &World, seed: u64, interactions: usize, cmd: &str) {
    let mut mdx = world.agent();
    let outcome = run_traffic(
        &mut mdx.agent,
        &world.onto,
        &world.pools,
        SimConfig { interactions, seed, ..SimConfig::default() },
    );
    let want = |name: &str| cmd == name || cmd == "all";

    if want("table5") || want("summary") {
        let (report, rows) = classifier_evaluation(
            &world.space,
            &world.onto,
            &world.kb,
            &world.mapping,
            &outcome,
            12,
            seed,
        );
        if want("table5") {
            heading("Table 5 — top-10 intent usage and F1 (paper: avg F1 0.85)");
            println!("{:<36} {:>6} {:>6}   (paper usage / F1)", "Intent", "usage", "F1");
            let paper: &[(&str, &str, &str)] = &[
                ("Drug Dosage for Condition", "15%", "0.85"),
                ("Administration of Drug", "12%", "0.88"),
                ("IV Compatibility of Drug", "11%", "0.86"),
                ("Drugs That Treat Condition", "10%", "0.82"),
                ("Uses of Drug", "9%", "0.99"),
                ("Adverse Effects of Drug", "5%", "0.84"),
                ("Drug-Drug Interactions", "4%", "0.88"),
                ("DRUG_GENERAL", "4%", "0.65"),
                ("Dose Adjustments for Drug", "3%", "0.95"),
                ("Regulatory Status for Drug", "2%", "0.93"),
            ];
            for row in &rows {
                let reference = paper
                    .iter()
                    .find(|(n, _, _)| *n == row.intent)
                    .map(|(_, u, f)| format!("({u} / {f})"))
                    .unwrap_or_default();
                println!(
                    "{:<36} {:>5.1}% {:>6.2}   {reference}",
                    row.intent,
                    row.usage * 100.0,
                    row.f1
                );
            }
            println!(
                "macro F1 over all 36 intents: {:.3} (paper reports avg 0.85)",
                report.macro_f1
            );
        }
        if want("summary") {
            heading("§7 summary scalars — paper vs reproduction");
            println!("avg intent F1            paper 0.85    ours {:.3}", report.macro_f1);
            println!(
                "overall success rate     paper 96.3%   ours {:.1}%",
                outcome.success_rate() * 100.0
            );
            let (_, sme_rate, user_rate) = fig12(&outcome, 0.10, 10, seed);
            println!("10% sample, user rate    paper 97.9%   ours {:.1}%", user_rate * 100.0);
            println!("10% sample, SME rate     paper 90.8%   ours {:.1}%", sme_rate * 100.0);
        }
    }
    if want("fig11") {
        heading("Figure 11 — success rate per intent (user feedback, top 10)");
        let (rows, overall) = fig11(&outcome, 10);
        print!("{}", render_success_rows(&rows));
        println!("overall success rate: {:.1}% (paper: 96.3%)", overall * 100.0);
    }
    if want("fig12") {
        heading("Figure 12 — success rate per intent (SME-judged 10% sample, top 10)");
        let (rows, sme_rate, user_rate) = fig12(&outcome, 0.10, 10, seed);
        print!("{}", render_success_rows(&rows));
        println!(
            "sample rates — SME: {:.1}% (paper 90.8%)   user feedback: {:.1}% (paper 97.9%)",
            sme_rate * 100.0,
            user_rate * 100.0
        );
    }
}

fn transcript(world: &World) {
    heading("§6.3 transcripts replayed against the reproduction");
    let mut mdx = world.agent();
    let say = |mdx: &mut obcs_mdx::ConversationalMdx, u: &str| {
        let r = mdx.agent.respond(u);
        println!("U: {u}");
        let first = r.text.lines().take(2).collect::<Vec<_>>().join(" | ");
        println!("A: {first}");
        r
    };
    println!("--- MDX sample conversation (§6.3) ---");
    say(&mut mdx, "show me drugs that treat psoriasis");
    say(&mut mdx, "adult");
    say(&mut mdx, "I mean pediatric");
    say(&mut mdx, "what do you mean by effective?");
    say(&mut mdx, "thanks");
    say(&mut mdx, "dosage for Tazarotene");
    say(&mut mdx, "how about for Fluocinonide?");
    say(&mut mdx, "no");
    say(&mut mdx, "goodbye");

    println!("\n--- User 480 (keyword search) ---");
    let mut mdx = world.agent();
    say(&mut mdx, "cogentin");
    say(&mut mdx, "What are the side effects of cogentin");
    say(&mut mdx, "no");
    let r = say(&mut mdx, "cogentin adverse effects");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "final request fulfils");
}

fn ablation_centrality(world: &World) {
    heading("Ablation — key-concept identification: centrality measure × nameability");
    use obcs_core::concepts::{identify_key_concepts, KeyConceptConfig};
    use obcs_ontology::centrality::CentralityMeasure;
    for measure in
        [CentralityMeasure::Degree, CentralityMeasure::PageRank, CentralityMeasure::Betweenness]
    {
        for nameable in [true, false] {
            let keys = identify_key_concepts(
                &world.onto,
                &world.mapping,
                KeyConceptConfig { measure, require_nameable: nameable, ..Default::default() },
            );
            let names: Vec<&str> = keys.iter().map(|&k| world.onto.concept_name(k)).collect();
            println!("{measure:?} nameable={nameable}: {} keys → {:?}", keys.len(), names);
        }
    }
    println!("(the paper's key concepts for MDX are Drug and Condition)");
}

fn ablation_training(seed: u64) {
    heading("Ablation — training volume vs classifier F1 (mini domain)");
    let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
    for per_pattern in [2usize, 4, 8, 16, 32] {
        let space = obcs_core::bootstrap(
            &onto,
            &kb,
            &mapping,
            obcs_core::BootstrapConfig {
                training: TrainingGenConfig {
                    examples_per_pattern: per_pattern,
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            },
            &obcs_core::SmeFeedback::new(),
        );
        // Hold-out split over the generated examples.
        let mut data = obcs_classifier::Dataset::new();
        for e in &space.training {
            if let Some(i) = space.intent(e.intent) {
                data.push(e.text.clone(), i.name.clone());
            }
        }
        let (train, test) = obcs_classifier::split::stratified_split(&data, 0.3, seed);
        let model = obcs_classifier::naive_bayes::NaiveBayes::train(&train, Default::default());
        use obcs_classifier::Classifier;
        let predicted: Vec<String> = test.texts.iter().map(|t| model.predict(t).label).collect();
        let report = obcs_classifier::metrics::evaluate(&test.labels, &predicted);
        println!(
            "examples/pattern {per_pattern:>3}: {} examples, held-out macro F1 {:.3}",
            data.len(),
            report.macro_f1
        );
    }
}

fn ablation_synonyms(world: &World) {
    heading("Ablation — synonym population on/off (entity-recognition recall)");
    use obcs_nlq::annotate::Lexicon;
    let probes = [
        ("side effects of aspirin", "Adverse Effect concept"),
        ("meds for fever", "Drug concept"),
        ("overdose of tylenol", "Toxicology concept"),
        ("cogentin interactions", "brand-name instance"),
    ];
    // Without synonyms: the raw lexicon.
    let bare = Lexicon::build(&world.onto, &world.kb, &world.mapping);
    // With synonyms: the assembled agent's NLU lexicon.
    let mdx = world.agent();
    let rich = mdx.agent.space();
    let _ = rich;
    let nlu_rich =
        obcs_agent::nlu::Nlu::from_space(&world.space, &world.onto, &world.kb, &world.mapping);
    println!("{:<32} {:>12} {:>12}", "probe", "no synonyms", "with synonyms");
    for (probe, _) in probes {
        let without = bare.annotate(probe).len();
        let with = nlu_rich.lexicon().annotate(probe).len();
        println!("{probe:<32} {without:>12} {with:>12}");
    }
}

fn ablation_augmentation(world: &World) {
    heading("Ablation — union/inheritance pattern augmentation");
    let risk_intent = world.space.intent_by_name("Risks of Drug").expect("risks");
    let with = world.space.templates_for(risk_intent.id).len();
    println!(
        "Risks of Drug: {} patterns / {} templates with augmentation (1 without)",
        risk_intent.patterns().len(),
        with
    );
    let mut mdx = world.agent();
    let r = mdx.agent.respond("black box warning for Aspirin");
    println!(
        "\"black box warning for Aspirin\" → kind {:?} (member concept reachable only via augmentation)",
        r.kind
    );
    let idx = world.space.intents.iter().filter(|i| i.patterns().len() > 1).count();
    println!("{idx} intents carry augmented pattern groups");
}

/// Writes the offline artifacts to `artifacts/`: the uploadable
/// conversation space (the paper uploads these artifacts to Watson
/// Assistant), the ontology as OWL/Turtle and Graphviz DOT, and the
/// synthetic KB.
/// Runs the obcs-lint pass over the freshly bootstrapped world and prints
/// the report.
fn lint_report(world: &World) -> obcs_lint::DiagnosticSet {
    heading("Static analysis — obcs-lint over the artifact chain");
    let ctx = LintContext::new(&world.onto, &world.kb, &world.mapping, &world.space);
    let report = run_all(&ctx, &LintConfig::default());
    print!("{}", report.render_text());
    report
}

/// `repro export [--drugs N] [--dir DIR]`
///
/// Lint-gates and writes the offline artifact chain. `--dir` (default
/// `artifacts`) redirects the output, which ci.sh uses to materialise a
/// large-world space under `target/` and bind-check it at scale without
/// touching the committed artifacts.
fn export(world: &World, dir: &str) {
    heading(&format!("Exporting offline artifacts to {dir}/"));
    // Deny gate: never export an artifact chain with lint errors.
    let report = lint_report(world);
    if let Err(msg) = report.gate(false) {
        eprintln!("export aborted: {msg}");
        std::process::exit(1);
    }
    // The library custom domain ships alongside MDX so the gates always
    // exercise a data-driven (non-built-in) ontology path too.
    let (lib_onto, lib_kb, lib_mapping, lib_space) = obcs_bench::library::library_world();
    let lib_ctx = LintContext::new(&lib_onto, &lib_kb, &lib_mapping, &lib_space);
    let lib_report = run_all(&lib_ctx, &LintConfig::default());
    if let Err(msg) = lib_report.gate(false) {
        print!("{}", lib_report.render_text());
        eprintln!("export aborted (library domain): {msg}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(dir).expect("create artifacts dir");
    let writes: &[(String, String)] = &[
        (format!("{dir}/mdx_space.json"), world.space.to_json()),
        (format!("{dir}/mdx_ontology.ttl"), obcs_ontology::turtle::to_turtle(&world.onto)),
        (format!("{dir}/mdx_ontology.dot"), obcs_ontology::dot::to_dot(&world.onto)),
        (format!("{dir}/mdx_kb.json"), world.kb.to_json()),
        (format!("{dir}/library_space.json"), lib_space.to_json()),
        (format!("{dir}/library_kb.json"), lib_kb.to_json()),
    ];
    for (path, content) in writes {
        std::fs::write(path, content).expect("write artifact");
        println!("wrote {path} ({} bytes)", content.len());
    }
}

fn ablation_classifier(world: &World, seed: u64) {
    heading("Ablation — Naive Bayes vs logistic regression on the same bootstrapped data");
    use obcs_classifier::logreg::{LogReg, LogRegConfig};
    use obcs_classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
    use obcs_classifier::Classifier;
    use obcs_sim::utterance::generate;

    // Shared masked training set.
    let nlu =
        obcs_agent::nlu::Nlu::from_space(&world.space, &world.onto, &world.kb, &world.mapping);
    let mut data = obcs_classifier::Dataset::new();
    for e in &world.space.training {
        if let Some(i) = world.space.intent(e.intent) {
            data.push(nlu.lexicon().mask(&e.text, &world.onto), i.name.clone());
        }
    }
    let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
    let lr = LogReg::train(&data, LogRegConfig { seed, ..Default::default() });

    // Shared simulated-user test set.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xab1a);
    let mut gold = Vec::new();
    let mut masked = Vec::new();
    for (intent, _) in obcs_sim::traffic::INTENT_MIX {
        for _ in 0..10 {
            let text = generate(intent, &world.pools, &mut rng).expect("templates");
            gold.push(intent.to_string());
            masked.push(nlu.lexicon().mask(&text, &world.onto));
        }
    }
    for (name, predict) in [
        ("naive bayes", Box::new(|t: &str| nb.predict(t).label) as Box<dyn Fn(&str) -> String>),
        ("logistic regression", Box::new(|t: &str| lr.predict(t).label)),
    ] {
        let predicted: Vec<String> = masked.iter().map(|t| predict(t)).collect();
        let report = obcs_classifier::metrics::evaluate(&gold, &predicted);
        println!("{name:<22} macro F1 {:.3}  accuracy {:.3}", report.macro_f1, report.accuracy);
    }
}

fn ablation_feedback_loop(world: &World) {
    heading("Future work (§9) — learning from usage logs");
    let mut mdx = world.agent();
    let probe = "gimme the lowdown on hazards of Aspirin";
    let before = mdx.agent.respond(probe);
    println!("before retraining: {:?} → {:?}", probe, before.kind);
    mdx.agent.retrain_with(&[
        (probe.to_string(), "Risks of Drug".to_string()),
        ("lowdown on hazards of Ibuprofen".to_string(), "Risks of Drug".to_string()),
        ("the lowdown on hazards please".to_string(), "Risks of Drug".to_string()),
    ]);
    mdx.agent.reset();
    let after = mdx.agent.respond(probe);
    let name = after.intent.and_then(|id| mdx.agent.space().intent(id)).map(|i| i.name.clone());
    println!("after SME-labelled retraining: {:?} → {:?} ({:?})", probe, after.kind, name);
}

fn ablation_sessions(world: &World, seed: u64) {
    heading("Ablation — persistent context under longer sessions");
    println!("mean session length vs SME accuracy and user-feedback success (1500 interactions):");
    for mean in [1.0f64, 2.0, 4.0, 8.0] {
        let mut mdx = world.agent();
        let outcome = run_traffic(
            &mut mdx.agent,
            &world.onto,
            &world.pools,
            SimConfig {
                interactions: 1500,
                seed,
                mean_session_length: mean,
                ..SimConfig::default()
            },
        );
        println!(
            "  mean {mean:>3.0} requests/session: SME accuracy {:.1}%  user success {:.1}%",
            outcome.accuracy() * 100.0,
            outcome.success_rate() * 100.0
        );
    }
    println!(
        "(persistent context enables §6.3-style follow-ups; stale entities cost a little accuracy)"
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn flag_parsing() {
        let args: Vec<String> =
            vec!["table5".into(), "--seed".into(), "7".into(), "--drugs".into(), "99".into()];
        assert_eq!(super::flag(&args, "--seed"), Some(7));
        assert_eq!(super::flag(&args, "--drugs"), Some(99));
        assert_eq!(super::flag(&args, "--interactions"), None);
    }
}
