//! The tracked performance baseline behind `repro perf`.
//!
//! Times every hot-path stage of the pipeline — offline bootstrap, NLU
//! construction, entity annotation, classifier training, and traffic
//! replay — and, for each stage that this codebase optimised, measures the
//! retained *before* implementation (`annotate_scan`, `train_scan`,
//! `parallelism = 1`) against the shipped one on the same workload. The
//! report serialises to `BENCH_perf.json`; CI replays the quick profile
//! and fails when any stage regresses more than [`MAX_REGRESSION`]× against
//! the committed baseline.

use std::hint::black_box;
use std::time::Instant;

use obcs_agent::nlu::Nlu;
use obcs_classifier::logreg::{LogReg, LogRegConfig};
use obcs_classifier::Dataset;
use obcs_mdx::data::MdxDataConfig;
use obcs_sim::traffic::{run_traffic, SimConfig, INTENT_MIX};
use obcs_sim::utterance::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::World;

/// A CI run fails when a stage is more than this many times slower than
/// the committed baseline. Generous on purpose: the gate exists to catch
/// accidental algorithmic regressions (a trie turning back into a scan),
/// not scheduler noise on a loaded runner.
pub const MAX_REGRESSION: f64 = 5.0;

/// The committed floor for the `cached_replay` stage: replaying a
/// repeated fulfilment-heavy mix with the pipeline caches on must beat
/// the caches-off replay by at least this factor. Unlike the regression
/// ceiling, this is an absolute speedup requirement recorded in the
/// baseline and enforced by `check_against`.
pub const CACHED_REPLAY_FLOOR: f64 = 2.0;

/// Committed floor for the `annotate` comparison: the interned-token
/// trie must beat the span-join scan by at least this factor (the
/// baseline sits near 5x; 2x leaves headroom for runner noise without
/// letting the trie silently degrade into a scan).
pub const ANNOTATE_FLOOR: f64 = 2.0;

/// Committed floor for the `logreg_train` comparison: pre-vectorised
/// CSR training with parallel one-vs-rest vs the per-example
/// re-featurising scan (baseline near 5x).
pub const LOGREG_TRAIN_FLOOR: f64 = 2.0;

/// How the harness was sized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfOptions {
    /// Reduced world and workload sizes, for CI and the committed baseline.
    pub quick: bool,
    pub seed: u64,
}

/// A stage with a single implementation: wall time only.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timing {
    pub name: String,
    /// What was measured, in human units (e.g. "60-drug world").
    pub work: String,
    pub ms: f64,
}

/// A stage where the pre-optimisation implementation is retained as an
/// oracle: both paths run on the identical workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    pub name: String,
    pub work: String,
    pub before_ms: f64,
    pub after_ms: f64,
    pub speedup: f64,
    /// When set (in the committed baseline), `check_against` fails any
    /// run of this stage whose speedup falls below the floor. No serde
    /// attribute: the offline derive shim treats any `skip*` ident as
    /// `#[serde(skip)]`, and the shim already reads a missing or `null`
    /// field as `None`, so old baselines stay parseable as-is.
    pub min_speedup: Option<f64>,
}

/// The full perf report, as committed to `BENCH_perf.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// "quick" or "full" — reports are only comparable within a mode.
    pub mode: String,
    pub seed: u64,
    pub timings: Vec<Timing>,
    pub comparisons: Vec<Comparison>,
}

fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

fn comparison(name: &str, work: String, before_ms: f64, after_ms: f64) -> Comparison {
    let speedup = if after_ms > 0.0 { before_ms / after_ms } else { f64::INFINITY };
    Comparison { name: name.to_string(), work, before_ms, after_ms, speedup, min_speedup: None }
}

/// Runs the full measurement pass.
pub fn run(opts: &PerfOptions) -> PerfReport {
    let (drugs, utterances_n, interactions, reps) =
        if opts.quick { (60, 300, 400, 3) } else { (150, 2000, 3000, 1) };
    let mut timings = Vec::new();
    let mut comparisons = Vec::new();

    // Stage: offline bootstrap (ontology + KB + conversation space).
    let t = Instant::now();
    let world = World::with_config(MdxDataConfig { drugs, seed: opts.seed });
    timings.push(Timing {
        name: "bootstrap".to_string(),
        work: format!("{drugs}-drug world"),
        ms: t.elapsed().as_secs_f64() * 1000.0,
    });

    // Stage: NLU construction (lexicon trie + classifier training as shipped).
    let t = Instant::now();
    let nlu = Nlu::from_space(&world.space, &world.onto, &world.kb, &world.mapping);
    timings.push(Timing {
        name: "nlu_build".to_string(),
        work: format!("{} training examples", world.space.training.len()),
        ms: t.elapsed().as_secs_f64() * 1000.0,
    });

    // Stage: annotation throughput — interned-token trie vs span-join scan
    // over the same simulated utterance workload.
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x7e5);
    let mut utterances: Vec<String> = Vec::with_capacity(utterances_n);
    while utterances.len() < utterances_n {
        for (intent, _) in INTENT_MIX {
            if let Some(u) = generate(intent, &world.pools, &mut rng) {
                utterances.push(u);
            }
        }
    }
    utterances.truncate(utterances_n);
    let lex = nlu.lexicon();
    for u in &utterances {
        assert_eq!(lex.annotate(u), lex.annotate_scan(u), "trie diverged from scan on {u:?}");
    }
    let before = best_of(reps, || {
        for u in &utterances {
            black_box(lex.annotate_scan(u));
        }
    });
    let after = best_of(reps, || {
        for u in &utterances {
            black_box(lex.annotate(u));
        }
    });
    let mut annotate = comparison("annotate", format!("{utterances_n} utterances"), before, after);
    annotate.min_speedup = Some(ANNOTATE_FLOOR);
    comparisons.push(annotate);

    // Stage: logistic-regression training — pre-vectorized CSR with
    // parallel one-vs-rest, vs the per-example re-featurising scan.
    let mut data = Dataset::new();
    for e in &world.space.training {
        if let Some(i) = world.space.intent(e.intent) {
            data.push(lex.mask(&e.text, &world.onto), i.name.clone());
        }
    }
    let config = LogRegConfig { seed: opts.seed, parallelism: 0, ..Default::default() };
    let before = best_of(reps, || {
        black_box(LogReg::train_scan(&data, config));
    });
    let after = best_of(reps, || {
        black_box(LogReg::train(&data, config));
    });
    let mut logreg = comparison(
        "logreg_train",
        format!("{} examples, {} epochs", data.len(), config.epochs),
        before,
        after,
    );
    logreg.min_speedup = Some(LOGREG_TRAIN_FLOOR);
    comparisons.push(logreg);

    // Stage: traffic replay — auto parallelism vs the single caller
    // thread. The outputs must be bit-for-bit identical. In quick mode
    // the replay sits under `AUTO_FORK_THRESHOLD`, so auto mode itself
    // chooses the sequential path and the comparison pins that choice
    // at ~1.0x (sharding small replays used to *lose* ~5% to fork and
    // thread overhead); the full profile is large enough to shard.
    let sim = |parallelism| SimConfig {
        interactions,
        seed: opts.seed,
        parallelism,
        ..SimConfig::default()
    };
    let mut seq_agent = world.agent();
    let t = Instant::now();
    let seq = run_traffic(&mut seq_agent.agent, &world.onto, &world.pools, sim(1));
    let before = t.elapsed().as_secs_f64() * 1000.0;
    let mut par_agent = world.agent();
    let t = Instant::now();
    let par = run_traffic(&mut par_agent.agent, &world.onto, &world.pools, sim(0));
    let after = t.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(seq, par, "parallel replay diverged from sequential replay");
    comparisons.push(comparison("replay", format!("{interactions} interactions"), before, after));

    // Stage: cached replay — the generation-checked plan/result caches
    // plus the NLU memo vs the same pipeline with every cache disabled,
    // over a repeated fulfilment-heavy (KB-bound) utterance mix
    // (DESIGN.md §12). The committed baseline carries a hard speedup
    // floor for this stage, not just the regression ceiling.
    let heavy_intents = [
        "Precautions of Drug",
        "Uses of Drug",
        "Adverse Effects of Drug",
        "Drugs That Treat Condition",
        "IV Compatibility of Drug",
        "Drug-Drug Interactions",
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0xcac4e);
    let mix_n = 40;
    let mut mix: Vec<String> = Vec::with_capacity(mix_n);
    while mix.len() < mix_n {
        for intent in heavy_intents {
            if let Some(u) = generate(intent, &world.pools, &mut rng) {
                mix.push(u);
            }
        }
    }
    mix.truncate(mix_n);
    let rounds = if opts.quick { 6 } else { 10 };
    let cached_base = world.agent();
    let mut uncached_base = world.agent();
    uncached_base.agent.set_caching(false);
    // Caches must be value-invisible: identical replies turn for turn,
    // including the warm rounds.
    {
        let mut c = cached_base.agent.fork_session();
        let mut u = uncached_base.agent.fork_session();
        for _ in 0..2 {
            for utterance in &mix {
                assert_eq!(
                    c.respond(utterance),
                    u.respond(utterance),
                    "caching changed the reply to {utterance:?}"
                );
            }
        }
    }
    // One pre-created fork per repetition so log growth never skews the
    // later repetitions; per-fork KB caches start cold every time.
    let mut uncached_forks: Vec<_> =
        (0..reps).map(|_| uncached_base.agent.fork_session()).collect();
    let before = best_of(reps, || {
        let mut a = uncached_forks.pop().expect("one fork per rep");
        for _ in 0..rounds {
            for utterance in &mix {
                black_box(a.respond(utterance));
            }
        }
    });
    let mut cached_forks: Vec<_> = (0..reps).map(|_| cached_base.agent.fork_session()).collect();
    let after = best_of(reps, || {
        let mut a = cached_forks.pop().expect("one fork per rep");
        for _ in 0..rounds {
            for utterance in &mix {
                black_box(a.respond(utterance));
            }
        }
    });
    let mut cached_replay =
        comparison("cached_replay", format!("{mix_n} utterances x {rounds} rounds"), before, after);
    cached_replay.min_speedup = Some(CACHED_REPLAY_FLOOR);
    comparisons.push(cached_replay);

    // Stage group: the large-world scaling curve (DESIGN.md §14) —
    // point lookup, FK join, and LIKE-prefix at 150 / 1.5k / 15k drugs,
    // indexed vs scan twin, with `min_speedup` floors at the 15k point.
    let scale = crate::scale::run(opts);
    timings.extend(scale.timings);
    comparisons.extend(scale.comparisons);

    // Stage group: the socket serving benchmark (DESIGN.md §15) — a
    // real server under the Table 5 load mix, byte-identity asserted
    // before timing; p50/p99 served-turn latency plus run wall time
    // (throughput) join the committed baseline.
    let serve = crate::serve::run(opts);
    timings.extend(serve.timings);

    // Stage group: the durability benchmark (DESIGN.md §16) — snapshot
    // write, WAL append, and kill-style recovery over a torn log, with
    // recovered-vs-original served replies asserted byte-identical
    // before any number counts.
    let recover = crate::recover::run(opts);
    timings.extend(recover.timings);
    comparisons.extend(recover.comparisons);

    PerfReport {
        mode: if opts.quick { "quick" } else { "full" }.to_string(),
        seed: opts.seed,
        timings,
        comparisons,
    }
}

impl PerfReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf report serialises")
    }

    /// A fixed-width human rendering of the report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:<28} {:>12} {:>12} {:>9}\n",
            "stage", "work", "before(ms)", "after(ms)", "speedup"
        ));
        for t in &self.timings {
            out.push_str(&format!(
                "{:<14} {:<28} {:>12} {:>12.1} {:>9}\n",
                t.name, t.work, "-", t.ms, "-"
            ));
        }
        for c in &self.comparisons {
            out.push_str(&format!(
                "{:<14} {:<28} {:>12.1} {:>12.1} {:>8.1}x\n",
                c.name, c.work, c.before_ms, c.after_ms, c.speedup
            ));
        }
        out
    }

    /// Compares this run against a committed baseline report. Fails on a
    /// malformed baseline, a mode mismatch, a stage that disappeared, or
    /// any stage more than [`MAX_REGRESSION`]× slower than the baseline.
    /// Sub-millisecond baseline stages are clamped to 1 ms before the
    /// multiplier so timer jitter cannot trip the gate.
    pub fn check_against(&self, baseline: &PerfReport) -> Result<String, String> {
        if baseline.mode != self.mode {
            return Err(format!(
                "mode mismatch: baseline is {:?}, this run is {:?}",
                baseline.mode, self.mode
            ));
        }
        let mut checked = 0usize;
        for b in &baseline.timings {
            let cur = self
                .timings
                .iter()
                .find(|t| t.name == b.name)
                .ok_or_else(|| format!("stage {:?} missing from this run", b.name))?;
            gate(&b.name, cur.ms, b.ms)?;
            checked += 1;
        }
        for b in &baseline.comparisons {
            let cur = self
                .comparisons
                .iter()
                .find(|c| c.name == b.name)
                .ok_or_else(|| format!("stage {:?} missing from this run", b.name))?;
            gate(&b.name, cur.after_ms, b.after_ms)?;
            if let Some(floor) = b.min_speedup {
                if cur.speedup < floor {
                    return Err(format!(
                        "stage {:?} speedup {:.2}x fell below the committed floor of {floor:.2}x",
                        b.name, cur.speedup
                    ));
                }
            }
            checked += 1;
        }
        Ok(format!("perf check passed: {checked} stages within {MAX_REGRESSION}x of baseline"))
    }

    /// A copy of this report keeping only stages whose name starts with
    /// `prefix`. `repro scale` uses this to run and check just the
    /// scaling-curve stages against the full committed baseline without
    /// tripping `check_against`'s missing-stage error on the rest.
    pub fn filtered(&self, prefix: &str) -> PerfReport {
        PerfReport {
            mode: self.mode.clone(),
            seed: self.seed,
            timings: self.timings.iter().filter(|t| t.name.starts_with(prefix)).cloned().collect(),
            comparisons: self
                .comparisons
                .iter()
                .filter(|c| c.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

fn gate(name: &str, current_ms: f64, baseline_ms: f64) -> Result<(), String> {
    let ceiling = baseline_ms.max(1.0) * MAX_REGRESSION;
    if current_ms > ceiling {
        return Err(format!(
            "stage {name:?} regressed: {current_ms:.1} ms vs baseline {baseline_ms:.1} ms \
             (ceiling {ceiling:.1} ms)"
        ));
    }
    Ok(())
}

/// Parses a committed `BENCH_perf.json`.
pub fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("malformed {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ms: f64) -> PerfReport {
        PerfReport {
            mode: "quick".to_string(),
            seed: 7,
            timings: vec![Timing { name: "bootstrap".into(), work: "w".into(), ms }],
            comparisons: vec![Comparison {
                name: "annotate".into(),
                work: "w".into(),
                before_ms: ms * 4.0,
                after_ms: ms,
                speedup: 4.0,
                min_speedup: None,
            }],
        }
    }

    #[test]
    fn json_roundtrip() {
        let r = report(10.0);
        let parsed: PerfReport = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(parsed.mode, "quick");
        assert_eq!(parsed.timings.len(), 1);
        assert_eq!(parsed.comparisons.len(), 1);
        assert!((parsed.comparisons[0].speedup - 4.0).abs() < 1e-12);
    }

    #[test]
    fn check_passes_within_ceiling() {
        let baseline = report(10.0);
        let current = report(40.0);
        assert!(current.check_against(&baseline).is_ok());
    }

    #[test]
    fn check_fails_past_ceiling() {
        let baseline = report(10.0);
        let current = report(60.0);
        let err = current.check_against(&baseline).expect_err("should fail");
        assert!(err.contains("regressed"), "{err}");
    }

    #[test]
    fn check_fails_on_mode_mismatch() {
        let baseline = report(10.0);
        let mut current = report(10.0);
        current.mode = "full".to_string();
        assert!(current.check_against(&baseline).is_err());
    }

    #[test]
    fn check_fails_on_missing_stage() {
        let baseline = report(10.0);
        let mut current = report(10.0);
        current.comparisons.clear();
        let err = current.check_against(&baseline).expect_err("should fail");
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn speedup_floor_from_the_baseline_is_enforced() {
        let mut baseline = report(10.0);
        baseline.comparisons[0].min_speedup = Some(2.0);
        // 4.0x current speedup clears a 2.0x floor.
        let current = report(10.0);
        assert!(current.check_against(&baseline).is_ok());
        // A run whose speedup collapsed below the floor fails even though
        // its absolute time is within the regression ceiling.
        let mut slow = report(10.0);
        slow.comparisons[0].before_ms = 15.0;
        slow.comparisons[0].speedup = 1.5;
        let err = slow.check_against(&baseline).expect_err("floor should trip");
        assert!(err.contains("floor"), "{err}");
        // min_speedup in the baseline survives a JSON round-trip, and its
        // absence stays absent (old baselines remain readable).
        let parsed: PerfReport = serde_json::from_str(&baseline.to_json()).expect("parses");
        assert_eq!(parsed.comparisons[0].min_speedup, Some(2.0));
        let bare: PerfReport = serde_json::from_str(&report(10.0).to_json()).expect("parses");
        assert_eq!(bare.comparisons[0].min_speedup, None);
    }

    #[test]
    fn filtered_keeps_only_matching_stages() {
        let mut r = report(10.0);
        r.timings.push(Timing { name: "scale_build_150".into(), work: "w".into(), ms: 5.0 });
        r.comparisons.push(Comparison {
            name: "scale_point_lookup_150".into(),
            work: "w".into(),
            before_ms: 10.0,
            after_ms: 1.0,
            speedup: 10.0,
            min_speedup: None,
        });
        let f = r.filtered("scale_");
        assert_eq!(f.timings.len(), 1);
        assert_eq!(f.comparisons.len(), 1);
        assert_eq!(f.comparisons[0].name, "scale_point_lookup_150");
        // A scale-only run checks cleanly against a filtered baseline.
        assert!(f.check_against(&r.filtered("scale_")).is_ok());
        // …but the full baseline would demand the missing stages.
        assert!(f.check_against(&r).is_err());
    }

    #[test]
    fn sub_millisecond_baselines_are_clamped() {
        // 0.01 ms baseline with a 0.9 ms current run: 90x the raw ratio,
        // but under the 1 ms clamp it must pass.
        assert!(gate("fast", 0.9, 0.01).is_ok());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(load_baseline("/nonexistent/BENCH_perf.json").is_err());
    }
}
