//! # obcs-bench
//!
//! The benchmark and reproduction harness: shared world-building used by
//! both the `repro` binary (which regenerates every table and figure of
//! the paper) and the Criterion benches.
//!
//! Crate role: DESIGN.md §2; performance harness: §9; traced replay and
//! the `repro trace` latency report ([`trace`]): §10.

pub mod chaos;
pub mod library;
pub mod perf;
pub mod recover;
pub mod scale;
pub mod serve;
pub mod trace;

use obcs_core::ConversationSpace;
use obcs_kb::KnowledgeBase;
use obcs_mdx::data::MdxDataConfig;
use obcs_mdx::ConversationalMdx;
use obcs_nlq::OntologyMapping;
use obcs_ontology::Ontology;
use obcs_sim::utterance::ValuePools;

/// All offline artifacts of the MDX world, built once and shared.
pub struct World {
    pub onto: Ontology,
    pub kb: KnowledgeBase,
    pub mapping: OntologyMapping,
    pub space: ConversationSpace,
    pub pools: ValuePools,
    pub config: MdxDataConfig,
}

impl World {
    /// Builds the full-scale world (150 drugs).
    pub fn full(seed: u64) -> Self {
        Self::with_config(MdxDataConfig { seed, ..MdxDataConfig::default() })
    }

    /// Builds a reduced world for fast benches.
    pub fn small(seed: u64) -> Self {
        Self::with_config(MdxDataConfig { drugs: 60, seed })
    }

    pub fn with_config(config: MdxDataConfig) -> Self {
        let (onto, kb, mapping, space) = ConversationalMdx::bootstrap_space(config);
        let pools = ValuePools::from_kb(&kb);
        World { onto, kb, mapping, space, pools, config }
    }

    /// Assembles a fresh online agent over this world's configuration.
    pub fn agent(&self) -> ConversationalMdx {
        ConversationalMdx::with_config(self.config)
    }
}
