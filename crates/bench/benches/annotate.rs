//! Entity-annotation benches: the interned-token trie hot path against the
//! retained span-join scan oracle, on the full assembled NLU lexicon.

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_agent::nlu::Nlu;
use obcs_bench::World;
use obcs_sim::traffic::INTENT_MIX;
use obcs_sim::utterance::generate;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_annotate(c: &mut Criterion) {
    let world = World::small(7);
    let nlu = Nlu::from_space(&world.space, &world.onto, &world.kb, &world.mapping);
    let lex = nlu.lexicon();

    // A realistic utterance workload drawn from the simulator's templates.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut utterances = Vec::new();
    while utterances.len() < 64 {
        for (intent, _) in INTENT_MIX {
            if let Some(u) = generate(intent, &world.pools, &mut rng) {
                utterances.push(u);
            }
        }
    }
    utterances.truncate(64);

    let mut group = c.benchmark_group("annotate");
    group.bench_function("trie", |b| {
        b.iter(|| {
            for u in &utterances {
                black_box(lex.annotate(u));
            }
        })
    });
    group.bench_function("scan", |b| {
        b.iter(|| {
            for u in &utterances {
                black_box(lex.annotate_scan(u));
            }
        })
    });
    group.bench_function("partial_indexed", |b| b.iter(|| black_box(lex.partial_matches("aspir"))));
    group.bench_function("partial_scan", |b| {
        b.iter(|| black_box(lex.partial_matches_scan("aspir")))
    });
    group.finish();
}

criterion_group!(benches, bench_annotate);
criterion_main!(benches);
