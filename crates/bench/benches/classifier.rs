//! Classifier benches: training and prediction latency on the
//! bootstrapped MDX training set (the component replacing the paper's
//! Watson Assistant NLC), for both model families.

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use obcs_classifier::logreg::{LogReg, LogRegConfig};
use obcs_classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
use obcs_classifier::{Classifier, Dataset};
use std::hint::black_box;

fn dataset(world: &World) -> Dataset {
    let mut data = Dataset::new();
    for e in &world.space.training {
        if let Some(i) = world.space.intent(e.intent) {
            data.push(e.text.clone(), i.name.clone());
        }
    }
    data
}

fn bench_classifier(c: &mut Criterion) {
    let world = World::small(7);
    let data = dataset(&world);

    c.bench_function("classifier/naive_bayes_train", |b| {
        b.iter(|| black_box(NaiveBayes::train(&data, NaiveBayesConfig::default())))
    });
    let mut group = c.benchmark_group("classifier/logreg_train");
    group.sample_size(10);
    group.bench_function("default", |b| {
        b.iter(|| black_box(LogReg::train(&data, LogRegConfig::default())))
    });
    group.finish();

    let nb = NaiveBayes::train(&data, NaiveBayesConfig::default());
    let lr = LogReg::train(&data, LogRegConfig { epochs: 10, ..Default::default() });
    let probes = [
        "show me the precautions for aspirin",
        "dosage for tazarotene for psoriasis",
        "thanks a lot",
        "apfjhd",
    ];
    c.bench_function("classifier/naive_bayes_predict", |b| {
        b.iter(|| {
            for p in probes {
                black_box(nb.predict(p));
            }
        })
    });
    c.bench_function("classifier/logreg_predict", |b| {
        b.iter(|| {
            for p in probes {
                black_box(lr.predict(p));
            }
        })
    });
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
