//! Traffic-replay benches: the §7.2 simulated workload, sequential against
//! session-sharded parallel replay (identical record streams; a test in
//! obcs-sim enforces the bit-for-bit contract).

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use obcs_sim::traffic::{run_traffic, SimConfig};
use std::hint::black_box;

fn bench_traffic(c: &mut Criterion) {
    let world = World::small(7);
    let sim =
        |parallelism| SimConfig { interactions: 100, seed: 7, parallelism, ..SimConfig::default() };

    let mut group = c.benchmark_group("traffic");
    group.sample_size(10);
    group.bench_function("replay_sequential", |b| {
        b.iter(|| {
            let mut mdx = world.agent();
            black_box(run_traffic(&mut mdx.agent, &world.onto, &world.pools, sim(1)))
        })
    });
    group.bench_function("replay_parallel", |b| {
        b.iter(|| {
            let mut mdx = world.agent();
            black_box(run_traffic(&mut mdx.agent, &world.onto, &world.pools, sim(0)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
