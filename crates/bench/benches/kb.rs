//! Knowledge-base engine benches: SQL parsing, single-table filters, hash
//! joins (direct FK and M:N bridge), and the statistics the bootstrapper
//! relies on.

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use obcs_kb::sql::parser::parse;
use obcs_kb::stats::{column_stats, table_is_categorical, CategoricalPolicy};
use std::hint::black_box;

fn bench_kb(c: &mut Criterion) {
    let world = World::full(7);
    let kb = &world.kb;

    let mut group = c.benchmark_group("kb");
    group.bench_function("parse_join_query", |b| {
        b.iter(|| {
            black_box(parse(
                "SELECT p.description FROM precaution p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Aspirin'",
            ))
        })
    });
    group.bench_function("point_filter", |b| {
        b.iter(|| black_box(kb.query("SELECT name FROM drug WHERE name = 'Aspirin'")))
    });
    group.bench_function("fk_join", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT p.description FROM precaution p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Aspirin'",
            ))
        })
    });
    group.bench_function("bridge_join_two_hops", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT DISTINCT g.name FROM drug g \
                 INNER JOIN treats t ON g.drug_id = t.drug_id \
                 INNER JOIN condition c ON t.condition_id = c.condition_id \
                 WHERE c.name = 'Psoriasis'",
            ))
        })
    });
    group.bench_function("five_way_join", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT d.description FROM dosage d \
                 INNER JOIN drug g ON d.drug_id = g.drug_id \
                 INNER JOIN condition c ON d.condition_id = c.condition_id \
                 INNER JOIN age_group a ON d.age_group_id = a.age_group_id \
                 INNER JOIN frequency f ON d.frequency_id = f.frequency_id \
                 WHERE g.name = 'Tazarotene' AND c.name = 'Psoriasis' AND a.name = 'pediatric'",
            ))
        })
    });
    group.bench_function("distinct_order_limit", |b| {
        b.iter(|| black_box(kb.query("SELECT DISTINCT name FROM drug ORDER BY name DESC LIMIT 10")))
    });
    group.bench_function("column_stats", |b| {
        b.iter(|| black_box(column_stats(kb, "dosage", "description")))
    });
    group.bench_function("categorical_detection", |b| {
        b.iter(|| black_box(table_is_categorical(kb, "age_group", CategoricalPolicy::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_kb);
criterion_main!(benches);
