//! Knowledge-base engine benches: SQL parsing, single-table filters, hash
//! joins (direct FK and M:N bridge), the statistics the bootstrapper
//! relies on, and the secondary-index hot paths (point lookup, FK join,
//! LIKE-prefix) against a scan-only twin at small and large world sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use obcs_kb::sql::parser::parse;
use obcs_kb::stats::{column_stats, table_is_categorical, CategoricalPolicy};
use obcs_kb::KnowledgeBase;
use obcs_mdx::data::{build_mdx_kb, MdxDataConfig};
use std::hint::black_box;

fn bench_kb(c: &mut Criterion) {
    let world = World::full(7);
    let kb = &world.kb;

    let mut group = c.benchmark_group("kb");
    group.bench_function("parse_join_query", |b| {
        b.iter(|| {
            black_box(parse(
                "SELECT p.description FROM precaution p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Aspirin'",
            ))
        })
    });
    group.bench_function("point_filter", |b| {
        b.iter(|| black_box(kb.query("SELECT name FROM drug WHERE name = 'Aspirin'")))
    });
    group.bench_function("fk_join", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT p.description FROM precaution p \
                 INNER JOIN drug d ON p.drug_id = d.drug_id WHERE d.name = 'Aspirin'",
            ))
        })
    });
    group.bench_function("bridge_join_two_hops", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT DISTINCT g.name FROM drug g \
                 INNER JOIN treats t ON g.drug_id = t.drug_id \
                 INNER JOIN condition c ON t.condition_id = c.condition_id \
                 WHERE c.name = 'Psoriasis'",
            ))
        })
    });
    group.bench_function("five_way_join", |b| {
        b.iter(|| {
            black_box(kb.query(
                "SELECT d.description FROM dosage d \
                 INNER JOIN drug g ON d.drug_id = g.drug_id \
                 INNER JOIN condition c ON d.condition_id = c.condition_id \
                 INNER JOIN age_group a ON d.age_group_id = a.age_group_id \
                 INNER JOIN frequency f ON d.frequency_id = f.frequency_id \
                 WHERE g.name = 'Tazarotene' AND c.name = 'Psoriasis' AND a.name = 'pediatric'",
            ))
        })
    });
    group.bench_function("distinct_order_limit", |b| {
        b.iter(|| black_box(kb.query("SELECT DISTINCT name FROM drug ORDER BY name DESC LIMIT 10")))
    });
    group.bench_function("column_stats", |b| {
        b.iter(|| black_box(column_stats(kb, "dosage", "description")))
    });
    group.bench_function("categorical_detection", |b| {
        b.iter(|| black_box(table_is_categorical(kb, "age_group", CategoricalPolicy::default())))
    });
    group.finish();
}

/// The auto-indexed KB and its scan-only twin, caches off on both so
/// every iteration pays parse + bind + execute (never a cache hit).
fn twins(drugs: usize) -> (KnowledgeBase, KnowledgeBase) {
    let mut indexed = build_mdx_kb(MdxDataConfig { drugs, seed: 7 });
    indexed.set_cache_enabled(false);
    let mut scan = indexed.clone();
    scan.set_cache_enabled(false);
    scan.set_index_enabled(false);
    (indexed, scan)
}

/// Indexed execution vs the scan twin on the three index-accelerated
/// hot paths, at the paper-scale world and the 15k-drug large world
/// (the same curve `repro scale` commits to `BENCH_perf.json`).
fn bench_kb_index(c: &mut Criterion) {
    for drugs in [150usize, 15_000] {
        let (indexed, scan) = twins(drugs);
        let n = drugs as i64;
        let point = format!("SELECT name FROM drug WHERE drug_id = {}", (n * 37 + 11) % n);
        let join = format!(
            "SELECT a.effect FROM drug d \
             INNER JOIN adverse_effect a ON a.drug_id = d.drug_id \
             WHERE d.drug_id = {}",
            (n * 53 + 7) % n
        );
        let prefix = "SELECT name FROM drug WHERE name LIKE 'Cardio%'";

        let mut group = c.benchmark_group(format!("kb_index_{drugs}"));
        for (label, kb) in [("indexed", &indexed), ("scan", &scan)] {
            group.bench_function(format!("point_lookup_{label}"), |b| {
                b.iter(|| black_box(kb.query(&point)))
            });
            group.bench_function(format!("fk_join_{label}"), |b| {
                b.iter(|| black_box(kb.query(&join)))
            });
            group.bench_function(format!("like_prefix_{label}"), |b| {
                b.iter(|| black_box(kb.query(prefix)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kb, bench_kb_index);
criterion_main!(benches);
