//! Online-engine benches: full end-to-end turn latency for every reply
//! kind the paper's system produces (the agent must feel interactive —
//! its whole pipeline runs per user utterance).

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use std::hint::black_box;

fn bench_agent(c: &mut Criterion) {
    let world = World::small(7);

    let mut group = c.benchmark_group("agent_turn");
    group.sample_size(30);
    let cases: &[(&str, &str)] = &[
        ("fulfilment_lookup", "show me the precautions for Aspirin"),
        ("fulfilment_relationship", "what drugs treat Psoriasis for adult patients"),
        ("management_greeting", "hello"),
        ("management_thanks", "thanks"),
        ("entity_only_proposal", "Warfarin"),
        ("fallback_gibberish", "apfjhd"),
    ];
    for (name, utterance) in cases {
        // A fresh agent per case would dominate the measurement with
        // assembly cost; reuse one and reset between iterations.
        let mut mdx = world.agent();
        group.bench_function(*name, |b| {
            b.iter(|| {
                mdx.agent.reset();
                black_box(mdx.agent.respond(utterance))
            })
        });
    }
    group.finish();

    // Slot-filling conversation: two turns (elicit + answer).
    let mut mdx = world.agent();
    let mut group = c.benchmark_group("agent_conversation");
    group.sample_size(30);
    group.bench_function("elicit_then_fulfil", |b| {
        b.iter(|| {
            mdx.agent.reset();
            black_box(mdx.agent.respond("show me drugs that treat psoriasis"));
            black_box(mdx.agent.respond("pediatric"))
        })
    });
    group.finish();

    // Agent assembly (NLU training + tree generation) — the online-side
    // startup cost.
    let mut group = c.benchmark_group("agent_assembly");
    group.sample_size(10);
    group.bench_function("from_space", |b| b.iter(|| black_box(world.agent())));
    group.finish();
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);
