//! Offline-pipeline benches: the cost of bootstrapping a conversation
//! space (paper §4) as a function of ontology/KB scale — the price the
//! paper's approach pays *once* instead of weeks of manual conversation
//! design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obcs_core::concepts::{identify_dependent_concepts, identify_key_concepts, KeyConceptConfig};
use obcs_core::{bootstrap, BootstrapConfig};
use obcs_kb::stats::CategoricalPolicy;
use obcs_mdx::data::MdxDataConfig;
use obcs_mdx::sme::mdx_sme_feedback;
use obcs_nlq::OntologyMapping;
use std::hint::black_box;

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(10);
    for drugs in [40usize, 80, 150] {
        let onto = obcs_mdx::ontology::build_mdx_ontology();
        let kb = obcs_mdx::data::build_mdx_kb(MdxDataConfig { drugs, seed: 7 });
        let mapping = OntologyMapping::infer(&onto, &kb);
        let sme = mdx_sme_feedback(&onto);
        group.bench_with_input(BenchmarkId::new("full_space", drugs), &drugs, |b, _| {
            b.iter(|| black_box(bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme)))
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let onto = obcs_mdx::ontology::build_mdx_ontology();
    let kb = obcs_mdx::data::build_mdx_kb(MdxDataConfig { drugs: 80, seed: 7 });
    let mapping = OntologyMapping::infer(&onto, &kb);

    c.bench_function("stage/key_concepts", |b| {
        b.iter(|| black_box(identify_key_concepts(&onto, &mapping, KeyConceptConfig::default())))
    });
    let keys = identify_key_concepts(&onto, &mapping, KeyConceptConfig::default());
    c.bench_function("stage/dependent_concepts", |b| {
        b.iter(|| {
            black_box(identify_dependent_concepts(
                &onto,
                &kb,
                &mapping,
                &keys,
                CategoricalPolicy::default(),
            ))
        })
    });
    c.bench_function("stage/mapping_inference", |b| {
        b.iter(|| black_box(OntologyMapping::infer(&onto, &kb)))
    });
    c.bench_function("stage/mdx_ontology_build", |b| {
        b.iter(|| black_box(obcs_mdx::ontology::build_mdx_ontology()))
    });
}

criterion_group!(benches, bench_bootstrap, bench_stages);
criterion_main!(benches);
