//! NLQ benches: lexicon construction, utterance annotation, NL→SQL
//! interpretation, and template instantiation (the paper's Athena-style
//! service, §4.4).

use criterion::{criterion_group, criterion_main, Criterion};
use obcs_bench::World;
use obcs_nlq::annotate::Lexicon;
use obcs_nlq::interpret::{build_query, Filter};
use std::hint::black_box;

fn bench_nlq(c: &mut Criterion) {
    let world = World::small(7);
    let lexicon = Lexicon::build(&world.onto, &world.kb, &world.mapping);

    let mut group = c.benchmark_group("nlq");
    group.bench_function("lexicon_build", |b| {
        b.iter(|| black_box(Lexicon::build(&world.onto, &world.kb, &world.mapping)))
    });
    group.bench_function("annotate", |b| {
        b.iter(|| black_box(lexicon.annotate("show me the precautions for benztropine mesylate")))
    });
    group.bench_function("mask", |b| {
        b.iter(|| {
            black_box(lexicon.mask(
                "give me the dosage for tazarotene for psoriasis in pediatric patients",
                &world.onto,
            ))
        })
    });
    group.bench_function("partial_matches", |b| {
        b.iter(|| black_box(lexicon.partial_matches("calcium")))
    });

    // NL → SQL end to end for a lookup and an indirect pattern.
    let drug = world.onto.concept_id("Drug").expect("Drug");
    let condition = world.onto.concept_id("Condition").expect("Condition");
    let dosage = world.onto.concept_id("Dosage").expect("Dosage");
    group.bench_function("build_query_and_sql", |b| {
        b.iter(|| {
            let q = build_query(
                &world.onto,
                &world.mapping,
                dosage,
                &[
                    Filter { concept: drug, column: "name".into(), value: "Aspirin".into() },
                    Filter { concept: condition, column: "name".into(), value: "Fever".into() },
                ],
            )
            .expect("interpretable");
            black_box(q.to_sql(&world.onto, &world.kb, &world.mapping).expect("sql"))
        })
    });

    // Template instantiation (the online hot path).
    let intent = world.space.intent_by_name("Precautions of Drug").expect("intent");
    let tpl = &world.space.templates_for(intent.id)[0].template;
    group.bench_function("template_instantiate", |b| {
        b.iter(|| black_box(tpl.instantiate(&[(drug, "Aspirin".into())]).expect("sql")))
    });
    group.finish();
}

criterion_group!(benches, bench_nlq);
criterion_main!(benches);
