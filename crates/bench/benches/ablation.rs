//! Ablation benches for the design choices DESIGN.md calls out: the cost
//! side of each alternative (the quality side is printed by
//! `repro -- ablation-*`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obcs_bench::World;
use obcs_core::concepts::{identify_key_concepts, KeyConceptConfig};
use obcs_core::training::{generate_all, TrainingGenConfig};
use obcs_ontology::centrality::{centrality, CentralityMeasure};
use std::hint::black_box;

fn bench_centrality_measures(c: &mut Criterion) {
    let world = World::small(7);
    let mut group = c.benchmark_group("ablation/centrality");
    for (name, measure) in [
        ("degree", CentralityMeasure::Degree),
        ("pagerank", CentralityMeasure::PageRank),
        ("betweenness", CentralityMeasure::Betweenness),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(centrality(&world.onto, measure))));
        group.bench_function(format!("{name}_full_selection"), |b| {
            b.iter(|| {
                black_box(identify_key_concepts(
                    &world.onto,
                    &world.mapping,
                    KeyConceptConfig { measure, ..Default::default() },
                ))
            })
        });
    }
    group.finish();
}

fn bench_training_volume(c: &mut Criterion) {
    let world = World::small(7);
    let mut group = c.benchmark_group("ablation/training_volume");
    group.sample_size(10);
    for per_pattern in [4usize, 16, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(per_pattern),
            &per_pattern,
            |b, &per_pattern| {
                b.iter(|| {
                    black_box(generate_all(
                        &world.space.intents,
                        &world.onto,
                        &world.kb,
                        &world.mapping,
                        &world.space.synonyms,
                        TrainingGenConfig {
                            examples_per_pattern: per_pattern,
                            ..Default::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_union_detection(c: &mut Criterion) {
    use obcs_kb::ontogen::{generate_ontology, OntogenOptions};
    let world = World::small(7);
    let mut group = c.benchmark_group("ablation/ontogen_union_detection");
    group.sample_size(10);
    for detect in [false, true] {
        group.bench_with_input(BenchmarkId::from_parameter(detect), &detect, |b, &detect| {
            b.iter(|| {
                black_box(generate_ontology(
                    &world.kb,
                    "gen",
                    OntogenOptions { detect_unions: detect },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_centrality_measures, bench_training_volume, bench_union_detection);
criterion_main!(benches);
