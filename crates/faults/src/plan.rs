//! Deterministic, seeded fault injection.
//!
//! The injector mirrors the telemetry `Recorder` design: the engine holds
//! an `Arc<dyn FaultInjector>` initialised to [`NoFaults`], so production
//! turns pay exactly one virtual dispatch per injection point and nothing
//! else. Chaos replays swap in [`PlannedFaults`], which decides each
//! injection *statelessly* from a hash of `(seed, stage, key)` — the same
//! utterance at the same stage always draws the same fault, regardless of
//! thread interleaving, which is what makes sharded chaos replays
//! bit-for-bit reproducible at any parallelism.

use serde::{Deserialize, Serialize};

/// Pipeline stages at which faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultStage {
    /// Entity annotation over the utterance.
    Annotate,
    /// Intent classification.
    Classify,
    /// Knowledge-base query execution.
    KbExecute,
}

impl FaultStage {
    /// Stable lowercase label, aligned with the telemetry stage names.
    pub fn label(self) -> &'static str {
        match self {
            FaultStage::Annotate => "annotate",
            FaultStage::Classify => "classify",
            FaultStage::KbExecute => "kb_execute",
        }
    }

    /// The degradation-cause label turns at this stage degrade under.
    pub fn cause_label(self) -> &'static str {
        match self {
            FaultStage::Annotate => "annotator",
            FaultStage::Classify => "classifier",
            FaultStage::KbExecute => "kb",
        }
    }

    fn salt(self) -> u64 {
        match self {
            FaultStage::Annotate => 0x616e_6e6f,
            FaultStage::Classify => 0x636c_7366,
            FaultStage::KbExecute => 0x6b62_6578,
        }
    }
}

/// The fault classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The KB query runs past its deadline.
    KbTimeout,
    /// The KB query fails outright (storage-layer error).
    KbFailure,
    /// The classifier returns no usable prediction (confidence collapse).
    ClassifierCollapse,
    /// Entity annotation drops every recognised span.
    AnnotationDropout,
}

impl FaultKind {
    /// Stable lowercase label, used for telemetry counter labels.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::KbTimeout => "kb_timeout",
            FaultKind::KbFailure => "kb_failure",
            FaultKind::ClassifierCollapse => "classifier_collapse",
            FaultKind::AnnotationDropout => "annotation_dropout",
        }
    }
}

/// A single injection decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What kind of fault fires.
    pub kind: FaultKind,
    /// How many consecutive attempts fail before the operation recovers.
    /// `u32::MAX` means the fault is persistent: every retry fails too.
    pub fail_attempts: u32,
}

impl InjectedFault {
    /// True when no number of retries will clear this fault.
    pub fn is_persistent(&self) -> bool {
        self.fail_attempts == u32::MAX
    }
}

/// Decides, per stage and operation key, whether a fault fires.
///
/// Implementations must be pure functions of `(stage, key)` so that
/// replaying the same traffic yields the same faults — the chaos
/// harness's determinism contract depends on it.
pub trait FaultInjector: Send + Sync {
    /// Returns the fault to inject for this operation, if any. The `key`
    /// identifies the operation deterministically (the engine passes the
    /// turn's utterance).
    fn inject(&self, stage: FaultStage, key: &str) -> Option<InjectedFault>;

    /// True when this injector can ever fire. Lets call sites skip
    /// building keys on the production path.
    fn armed(&self) -> bool {
        true
    }
}

/// The production injector: never fires.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&self, _stage: FaultStage, _key: &str) -> Option<InjectedFault> {
        None
    }

    fn armed(&self) -> bool {
        false
    }
}

/// A seeded chaos profile: per-stage fault rates in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// Probability that a KB query fails outright.
    pub kb_failure: f64,
    /// Probability that a KB query times out.
    pub kb_timeout: f64,
    /// Probability that classification collapses.
    pub classifier_collapse: f64,
    /// Probability that annotation drops all spans.
    pub annotation_dropout: f64,
    /// Fraction of fired faults that are transient (clear after
    /// `transient_attempts` failures) rather than persistent.
    pub transient_share: f64,
    /// Failed attempts a transient fault charges before recovering.
    pub transient_attempts: u32,
}

impl FaultPlan {
    /// A plan that never fires; useful as a baseline in tests.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            kb_failure: 0.0,
            kb_timeout: 0.0,
            classifier_collapse: 0.0,
            annotation_dropout: 0.0,
            transient_share: 0.0,
            transient_attempts: 1,
        }
    }

    /// The standard chaos profile used by `repro chaos`: roughly one turn
    /// in eight hits some fault, split across all four kinds, with a
    /// third of faults transient (recoverable within one retry).
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            kb_failure: 0.04,
            kb_timeout: 0.03,
            classifier_collapse: 0.04,
            annotation_dropout: 0.02,
            transient_share: 1.0 / 3.0,
            transient_attempts: 1,
        }
    }
}

/// [`FaultInjector`] driven by a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct PlannedFaults {
    plan: FaultPlan,
}

impl PlannedFaults {
    /// Wraps a plan.
    pub fn new(plan: FaultPlan) -> Self {
        PlannedFaults { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn draw(&self, stage: FaultStage, key: &str, lane: u64) -> f64 {
        let mut h = splitmix64(self.plan.seed ^ stage.salt().wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for b in key.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        let bits = splitmix64(h ^ lane);
        // Map the top 53 bits to [0, 1): same construction as
        // `rand`'s `f64` sampling, bias-free at f64 precision.
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    fn fire(&self, stage: FaultStage, key: &str, kind: FaultKind) -> InjectedFault {
        let transient = self.draw(stage, key, 0x7472_616e) < self.plan.transient_share;
        InjectedFault {
            kind,
            fail_attempts: if transient { self.plan.transient_attempts } else { u32::MAX },
        }
    }
}

impl FaultInjector for PlannedFaults {
    fn inject(&self, stage: FaultStage, key: &str) -> Option<InjectedFault> {
        let u = self.draw(stage, key, 0);
        match stage {
            FaultStage::Annotate if u < self.plan.annotation_dropout => {
                Some(self.fire(stage, key, FaultKind::AnnotationDropout))
            }
            FaultStage::Classify if u < self.plan.classifier_collapse => {
                Some(self.fire(stage, key, FaultKind::ClassifierCollapse))
            }
            FaultStage::KbExecute if u < self.plan.kb_failure => {
                Some(self.fire(stage, key, FaultKind::KbFailure))
            }
            FaultStage::KbExecute if u < self.plan.kb_failure + self.plan.kb_timeout => {
                Some(self.fire(stage, key, FaultKind::KbTimeout))
            }
            _ => None,
        }
    }
}

/// The same finalizer the sim crate uses for session seeding; duplicated
/// here so the faults crate stays dependency-light.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disarmed_and_silent() {
        assert!(!NoFaults.armed());
        assert_eq!(NoFaults.inject(FaultStage::KbExecute, "anything"), None);
    }

    #[test]
    fn injection_is_a_pure_function_of_stage_and_key() {
        let inj = PlannedFaults::new(FaultPlan::chaos(42));
        for stage in [FaultStage::Annotate, FaultStage::Classify, FaultStage::KbExecute] {
            for key in ["what treats headaches", "dosage of aspirin", ""] {
                assert_eq!(inj.inject(stage, key), inj.inject(stage, key));
            }
        }
    }

    #[test]
    fn quiet_plan_never_fires() {
        let inj = PlannedFaults::new(FaultPlan::quiet(7));
        for i in 0..200 {
            let key = format!("utterance {i}");
            assert_eq!(inj.inject(FaultStage::KbExecute, &key), None);
            assert_eq!(inj.inject(FaultStage::Classify, &key), None);
        }
    }

    #[test]
    fn chaos_plan_fires_at_roughly_the_configured_rate() {
        let plan = FaultPlan::chaos(42);
        let inj = PlannedFaults::new(plan);
        let n = 4000;
        let mut kb = 0;
        let mut transient = 0;
        for i in 0..n {
            let key = format!("utterance number {i} about drugs");
            if let Some(f) = inj.inject(FaultStage::KbExecute, &key) {
                kb += 1;
                if !f.is_persistent() {
                    transient += 1;
                }
            }
        }
        let expect = (plan.kb_failure + plan.kb_timeout) * n as f64;
        assert!(
            (kb as f64) > expect * 0.5 && (kb as f64) < expect * 1.5,
            "kb fault rate off: {kb} fired, expected ~{expect}"
        );
        assert!(transient > 0, "some faults must be transient");
        assert!(transient < kb, "some faults must be persistent");
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let a = PlannedFaults::new(FaultPlan::chaos(1));
        let b = PlannedFaults::new(FaultPlan::chaos(2));
        let mut diff = 0;
        for i in 0..500 {
            let key = format!("utterance {i}");
            if a.inject(FaultStage::KbExecute, &key) != b.inject(FaultStage::KbExecute, &key) {
                diff += 1;
            }
        }
        assert!(diff > 0, "seeds must matter");
    }
}
