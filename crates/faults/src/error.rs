//! The unified error taxonomy for the online turn pipeline.
//!
//! Before this crate, each layer surfaced its own error enum (`KbError`,
//! `NlqError`, `TemplateError`) or — worse — stringly-typed fallbacks
//! inside the engine. [`ObcsError`] is the single type the engine reasons
//! about when deciding whether a turn can proceed, must retry, or must
//! degrade into a repair reply.

use std::fmt;

use obcs_kb::KbError;
use obcs_nlq::interpret::NlqError;
use obcs_nlq::template::TemplateError;

use crate::plan::{FaultKind, FaultStage};

/// Any fault the turn pipeline can encounter, typed per origin.
///
/// The engine's degradation policy is written against this enum: injected
/// and infrastructure faults are retried then degraded, while semantic
/// errors (a template that cannot bind, an unmapped concept) keep their
/// historical handling — they are user-repairable, not system faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObcsError {
    /// A knowledge-base storage or SQL error.
    Kb(KbError),
    /// A natural-language-query interpretation error.
    Nlq(NlqError),
    /// A query-template instantiation error.
    Template(TemplateError),
    /// The dialogue tree asked the engine to fulfil an intent it does not
    /// know how to translate into a query.
    UnknownIntent(String),
    /// A fault injected by the active [`FaultInjector`](crate::FaultInjector).
    Injected {
        /// Pipeline stage at which the fault fired.
        stage: FaultStage,
        /// The injected fault class.
        kind: FaultKind,
    },
    /// The per-turn deadline budget was exhausted.
    DeadlineExceeded {
        /// Pipeline stage that observed the exhausted budget.
        stage: FaultStage,
        /// Clock readings elapsed since the turn started.
        elapsed: u64,
        /// The configured budget, in the same clock units.
        budget: u64,
    },
    /// A retryable fault persisted past the configured retry allowance.
    RetriesExhausted {
        /// Pipeline stage whose operation kept failing.
        stage: FaultStage,
        /// Attempts made (initial call plus retries).
        attempts: u32,
        /// The last underlying failure.
        cause: Box<ObcsError>,
    },
}

impl ObcsError {
    /// True when the engine should retry the failing operation before
    /// degrading: injected faults model transient infrastructure trouble.
    /// Budget exhaustion and semantic errors are never retried.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ObcsError::Injected { .. })
    }

    /// Short stable label naming the degradation cause, used as the
    /// telemetry counter label (`degraded{cause}`).
    pub fn cause_label(&self) -> &'static str {
        match self {
            ObcsError::Kb(_) => "kb",
            ObcsError::Nlq(_) | ObcsError::Template(_) => "nlq",
            ObcsError::UnknownIntent(_) => "engine",
            ObcsError::Injected { stage, .. } | ObcsError::DeadlineExceeded { stage, .. } => {
                stage.cause_label()
            }
            ObcsError::RetriesExhausted { cause, .. } => cause.cause_label(),
        }
    }
}

impl fmt::Display for ObcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObcsError::Kb(e) => write!(f, "knowledge base error: {e}"),
            ObcsError::Nlq(e) => write!(f, "query interpretation error: {e}"),
            ObcsError::Template(e) => write!(f, "template error: {e}"),
            ObcsError::UnknownIntent(i) => write!(f, "no query translation for intent `{i}`"),
            ObcsError::Injected { stage, kind } => {
                write!(f, "injected {} fault at stage `{}`", kind.label(), stage.label())
            }
            ObcsError::DeadlineExceeded { stage, elapsed, budget } => write!(
                f,
                "turn budget exhausted at stage `{}` ({elapsed} of {budget} clock units)",
                stage.label()
            ),
            ObcsError::RetriesExhausted { stage, attempts, cause } => write!(
                f,
                "stage `{}` still failing after {attempts} attempts: {cause}",
                stage.label()
            ),
        }
    }
}

impl std::error::Error for ObcsError {}

impl From<KbError> for ObcsError {
    fn from(e: KbError) -> Self {
        ObcsError::Kb(e)
    }
}

impl From<NlqError> for ObcsError {
    fn from(e: NlqError) -> Self {
        ObcsError::Nlq(e)
    }
}

impl From<TemplateError> for ObcsError {
    fn from(e: TemplateError) -> Self {
        ObcsError::Template(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_labels_follow_origin() {
        assert_eq!(ObcsError::Kb(KbError::UnknownTable("t".into())).cause_label(), "kb");
        assert_eq!(ObcsError::Nlq(NlqError::NoEvidence).cause_label(), "nlq");
        assert_eq!(ObcsError::UnknownIntent("x".into()).cause_label(), "engine");
        let inj = ObcsError::Injected {
            stage: FaultStage::Classify,
            kind: FaultKind::ClassifierCollapse,
        };
        assert_eq!(inj.cause_label(), "classifier");
        let exhausted = ObcsError::RetriesExhausted {
            stage: FaultStage::KbExecute,
            attempts: 3,
            cause: Box::new(ObcsError::Injected {
                stage: FaultStage::KbExecute,
                kind: FaultKind::KbTimeout,
            }),
        };
        assert_eq!(exhausted.cause_label(), "kb");
    }

    #[test]
    fn only_injected_faults_are_retryable() {
        let inj = ObcsError::Injected { stage: FaultStage::KbExecute, kind: FaultKind::KbFailure };
        assert!(inj.is_retryable());
        assert!(!ObcsError::Kb(KbError::UnknownTable("t".into())).is_retryable());
        assert!(!ObcsError::DeadlineExceeded {
            stage: FaultStage::KbExecute,
            elapsed: 10,
            budget: 5
        }
        .is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e =
            ObcsError::Injected { stage: FaultStage::Annotate, kind: FaultKind::AnnotationDropout };
        assert!(e.to_string().contains("annotation_dropout"));
        assert!(e.to_string().contains("annotate"));
    }
}
