//! Retry, backoff, and per-turn deadline budget.
//!
//! The engine wraps each fault-exposed pipeline stage in
//! [`run_resilient`], which layers three policies over the raw operation:
//!
//! 1. **Injection** — if the active fault plan fired for this operation,
//!    the first `fail_attempts` attempts fail with
//!    [`ObcsError::Injected`] instead of running the real operation;
//! 2. **Retry with backoff** — retryable failures are retried up to
//!    [`ResilienceConfig::max_retries`] times, with an exponential
//!    backoff spun on the engine's [`Clock`] (deterministic under
//!    `TickClock`: a backoff of *d* consumes exactly *d* readings);
//! 3. **Deadline budget** — each attempt first checks the turn's elapsed
//!    clock readings against [`ResilienceConfig::turn_budget`]; an
//!    exhausted budget aborts with [`ObcsError::DeadlineExceeded`]
//!    rather than retrying forever.
//!
//! All time is read from one clock owned by the calling engine, so the
//! whole policy is a pure function of the call structure — which is what
//! lets the chaos harness demand bit-identical counters at any replay
//! parallelism.

use obcs_telemetry::{metric, Clock, Recorder};

use crate::error::ObcsError;
use crate::plan::{FaultKind, FaultStage, InjectedFault};

/// Tunables for the engine's degradation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retries allowed per operation (total attempts = 1 + retries).
    pub max_retries: u32,
    /// Backoff before retry `i` is `backoff_base << i` clock readings.
    pub backoff_base: u64,
    /// Clock readings an injected timeout burns before failing.
    pub timeout_cost: u64,
    /// Per-turn deadline in clock readings; `None` disables the budget.
    pub turn_budget: Option<u64>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig { max_retries: 2, backoff_base: 4, timeout_cost: 32, turn_budget: None }
    }
}

impl ResilienceConfig {
    /// The profile `repro chaos` runs under: two retries and a turn
    /// budget tight enough that repeated injected timeouts can exhaust
    /// it (exercising the `DeadlineExceeded` path).
    pub fn chaos() -> Self {
        ResilienceConfig {
            max_retries: 2,
            backoff_base: 4,
            timeout_cost: 32,
            turn_budget: Some(96),
        }
    }

    /// The profile `obcs-serve` installs on session forks: one retry
    /// (a served turn would rather degrade fast than stall a socket) and
    /// a generous-but-bounded per-turn tick budget so no single turn can
    /// hold a connection thread indefinitely (DESIGN.md §15).
    pub fn serving() -> Self {
        ResilienceConfig {
            max_retries: 1,
            backoff_base: 2,
            timeout_cost: 32,
            turn_budget: Some(4096),
        }
    }
}

/// How a resilient call concluded, from the fault-accounting side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No fault was injected; the operation ran normally.
    Clean,
    /// A fault was injected but retries cleared it.
    Recovered(FaultKind),
}

/// Runs `op` under the resilience policy. `injected` is the fault-plan
/// decision for this operation (made once by the caller, so the fault is
/// counted once no matter how many attempts run); `turn_start` is the
/// clock reading taken at the top of the turn.
///
/// On success returns the value plus whether an injected fault was
/// overcome; on failure returns the terminal [`ObcsError`] — the caller
/// degrades the turn. Retry attempts are counted on `rec` under
/// [`metric::RETRIES`] labelled with the stage.
pub fn run_resilient<T>(
    stage: FaultStage,
    injected: Option<InjectedFault>,
    config: &ResilienceConfig,
    clock: &dyn Clock,
    turn_start: u64,
    rec: &dyn Recorder,
    mut op: impl FnMut() -> Result<T, ObcsError>,
) -> Result<(T, Recovery), ObcsError> {
    let mut attempt: u32 = 0;
    loop {
        if let Some(budget) = config.turn_budget {
            let elapsed = clock.now().saturating_sub(turn_start);
            if elapsed >= budget {
                return Err(ObcsError::DeadlineExceeded { stage, elapsed, budget });
            }
        }
        let outcome = match injected {
            Some(fault) if attempt < fault.fail_attempts => {
                if fault.kind == FaultKind::KbTimeout {
                    spin(clock, config.timeout_cost);
                }
                Err(ObcsError::Injected { stage, kind: fault.kind })
            }
            _ => op(),
        };
        match outcome {
            Ok(value) => {
                let recovery = match injected {
                    Some(fault) if attempt >= fault.fail_attempts => {
                        Recovery::Recovered(fault.kind)
                    }
                    _ => Recovery::Clean,
                };
                return Ok((value, recovery));
            }
            Err(err) if !err.is_retryable() => return Err(err),
            Err(err) => {
                // Re-check the budget after the failed attempt: an
                // injected timeout burns clock inside the attempt, and
                // retrying past the deadline helps nobody.
                if let Some(budget) = config.turn_budget {
                    let elapsed = clock.now().saturating_sub(turn_start);
                    if elapsed >= budget {
                        return Err(ObcsError::DeadlineExceeded { stage, elapsed, budget });
                    }
                }
                if attempt >= config.max_retries {
                    return Err(ObcsError::RetriesExhausted {
                        stage,
                        attempts: attempt + 1,
                        cause: Box::new(err),
                    });
                }
                rec.incr(metric::RETRIES, stage.label());
                spin(clock, config.backoff_base << attempt);
                attempt += 1;
            }
        }
    }
}

/// Burns `readings` clock readings. Under `TickClock` each `now()`
/// advances time by one, so this terminates after exactly `readings`
/// reads; under a wall clock it busy-waits `readings` nanoseconds.
fn spin(clock: &dyn Clock, readings: u64) {
    let start = clock.now();
    while clock.now().saturating_sub(start) < readings {}
}

#[cfg(test)]
mod tests {
    use obcs_telemetry::{NoopRecorder, TickClock};

    use super::*;

    fn tick_env() -> (TickClock, NoopRecorder) {
        (TickClock::new(), NoopRecorder)
    }

    #[test]
    fn clean_call_runs_once() {
        let (clock, rec) = tick_env();
        let start = clock.now();
        let mut calls = 0;
        let out = run_resilient(
            FaultStage::KbExecute,
            None,
            &ResilienceConfig::default(),
            &clock,
            start,
            &rec,
            || {
                calls += 1;
                Ok::<_, ObcsError>(41)
            },
        );
        assert_eq!(out, Ok((41, Recovery::Clean)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_fault_recovers_after_retry() {
        let (clock, rec) = tick_env();
        let start = clock.now();
        let fault = InjectedFault { kind: FaultKind::KbFailure, fail_attempts: 1 };
        let mut calls = 0;
        let out = run_resilient(
            FaultStage::KbExecute,
            Some(fault),
            &ResilienceConfig::default(),
            &clock,
            start,
            &rec,
            || {
                calls += 1;
                Ok::<_, ObcsError>("rows")
            },
        );
        assert_eq!(out, Ok(("rows", Recovery::Recovered(FaultKind::KbFailure))));
        assert_eq!(calls, 1, "the real operation runs only once the fault clears");
    }

    #[test]
    fn persistent_fault_exhausts_retries() {
        let (clock, rec) = tick_env();
        let start = clock.now();
        let fault = InjectedFault { kind: FaultKind::KbFailure, fail_attempts: u32::MAX };
        let config = ResilienceConfig { max_retries: 2, ..ResilienceConfig::default() };
        let out = run_resilient::<()>(
            FaultStage::KbExecute,
            Some(fault),
            &config,
            &clock,
            start,
            &rec,
            || unreachable!("persistent fault never reaches the operation"),
        );
        match out {
            Err(ObcsError::RetriesExhausted { attempts: 3, cause, .. }) => {
                assert_eq!(
                    *cause,
                    ObcsError::Injected {
                        stage: FaultStage::KbExecute,
                        kind: FaultKind::KbFailure
                    }
                );
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let (clock, rec) = tick_env();
        let start = clock.now();
        let mut calls = 0;
        let out = run_resilient::<()>(
            FaultStage::KbExecute,
            None,
            &ResilienceConfig::default(),
            &clock,
            start,
            &rec,
            || {
                calls += 1;
                Err(ObcsError::UnknownIntent("x".into()))
            },
        );
        assert_eq!(out, Err(ObcsError::UnknownIntent("x".into())));
        assert_eq!(calls, 1);
    }

    #[test]
    fn timeouts_can_exhaust_the_turn_budget() {
        let (clock, rec) = tick_env();
        let start = clock.now();
        let fault = InjectedFault { kind: FaultKind::KbTimeout, fail_attempts: u32::MAX };
        let config = ResilienceConfig::chaos();
        let out = run_resilient::<()>(
            FaultStage::KbExecute,
            Some(fault),
            &config,
            &clock,
            start,
            &rec,
            || unreachable!(),
        );
        match out {
            Err(ObcsError::DeadlineExceeded { budget, elapsed, .. }) => {
                assert!(elapsed >= budget);
            }
            Err(ObcsError::RetriesExhausted { .. }) => {
                panic!("budget should trip before retries run out under chaos profile")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_in_ticks() {
        let run = || {
            let (clock, rec) = tick_env();
            let start = clock.now();
            let fault = InjectedFault { kind: FaultKind::KbFailure, fail_attempts: 2 };
            let out = run_resilient(
                FaultStage::Classify,
                Some(fault),
                &ResilienceConfig::default(),
                &clock,
                start,
                &rec,
                || Ok::<_, ObcsError>(()),
            );
            assert!(out.is_ok());
            clock.now()
        };
        assert_eq!(run(), run(), "tick cost of an identical call must be identical");
    }
}
