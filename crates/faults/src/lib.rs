//! # obcs-faults
//!
//! The robustness layer for the online turn pipeline: a typed error
//! taxonomy ([`ObcsError`]), deterministic seeded fault injection
//! ([`FaultPlan`] / [`FaultInjector`]), and the retry/backoff/deadline
//! policy the engine degrades under ([`ResilienceConfig`],
//! [`run_resilient`]).
//!
//! The paper's §6 repair machinery covers *user* errors (misspellings,
//! ambiguity, low-confidence intents); this crate covers *system* errors
//! — a KB query that fails or times out, a classifier that collapses, an
//! annotator that drops its spans — and guarantees each one surfaces as
//! a user-visible degraded reply instead of a panic or a silent empty
//! answer. Design notes: DESIGN.md §11.
//!
//! Like the telemetry `Recorder`, the injector is a trait object the
//! engine always holds: production installs [`NoFaults`] (one virtual
//! dispatch, no other cost), the chaos harness installs
//! [`PlannedFaults`]. Injection decisions are stateless hashes of
//! `(seed, stage, utterance)`, so a sharded chaos replay produces
//! bit-for-bit identical fault, retry, and degradation counters at any
//! parallelism.

pub mod error;
pub mod plan;
pub mod resilience;

pub use error::ObcsError;
pub use plan::{
    FaultInjector, FaultKind, FaultPlan, FaultStage, InjectedFault, NoFaults, PlannedFaults,
};
pub use resilience::{run_resilient, Recovery, ResilienceConfig};
