//! Edge-case integration tests for the conversation engine: classifier-
//! detected management intents, concept-guided resolution preferences,
//! and context interactions that the happy-path tests don't reach.

use obcs_agent::{AgentConfig, ConversationAgent, ReplyKind};
use obcs_core::testutil::fig2_fixture;
use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};

fn agent_with_management() -> ConversationAgent {
    let (onto, kb, mapping) = fig2_fixture();
    let drug = onto.concept_id("Drug").expect("Drug concept");
    let sme = SmeFeedback::new()
        .management_intent("Gratitude", "Happy to help! Anything else?")
        .labelled_query("Gratitude", "much obliged")
        .labelled_query("Gratitude", "much obliged indeed")
        .labelled_query("Gratitude", "i am much obliged")
        .entity_only(drug);
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
    ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default())
}

#[test]
fn classifier_detected_management_uses_canned_response() {
    let mut a = agent_with_management();
    // "much obliged" is not in the rule catalog; the classifier routes it
    // to the registered management intent at high confidence.
    let r = a.respond("much obliged");
    assert_eq!(r.kind, ReplyKind::Management, "{r:?}");
    assert_eq!(r.text, "Happy to help! Anything else?");
}

#[test]
fn rule_catalog_outranks_classifier_for_known_phrasings() {
    let mut a = agent_with_management();
    // "thanks" is in the rule catalog — it must use the catalog response
    // (which carries the stateful behaviour), not the canned intent.
    let r = a.respond("thanks");
    assert_eq!(r.text, "You're welcome! Anything else?");
}

#[test]
fn concept_mention_resolves_intent_when_classifier_is_unsure() {
    let (onto, kb, mapping) = fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    // An impossible threshold forces the concept-guided path.
    let mut a = ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { intent_confidence_threshold: 2.0, ..AgentConfig::default() },
    );
    let r = a.respond("precaution for Aspirin");
    assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
    let name = r.intent.and_then(|id| a.space().intent(id)).map(|i| i.name.clone());
    assert_eq!(name.as_deref(), Some("Precautions of Drug"));
}

#[test]
fn concept_resolution_prefers_satisfied_requirements() {
    let (onto, kb, mapping) = fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let mut a = ConversationAgent::new(
        onto,
        kb,
        mapping,
        space,
        AgentConfig { intent_confidence_threshold: 2.0, ..AgentConfig::default() },
    );
    // "dosage" is the focus of both "Dosages of Drug" (requires Drug) and
    // the indirect dosage intents (require Drug + Indication). With only a
    // drug in hand, the drug-scoped intent must win.
    let r = a.respond("dosage for Aspirin");
    let name = r.intent.and_then(|id| a.space().intent(id)).map(|i| i.name.clone());
    assert_eq!(name.as_deref(), Some("Dosages of Drug"), "{r:?}");
    assert_eq!(r.kind, ReplyKind::Fulfilment);
}

#[test]
fn elicitation_answer_with_unrelated_entity_still_merges() {
    let (onto, kb, mapping) = fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let mut a = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    let r1 = a.respond("show me the precaution");
    assert_eq!(r1.kind, ReplyKind::Elicitation);
    // The user answers with a full phrase instead of a bare value.
    let r2 = a.respond("for the drug Aspirin please");
    assert_eq!(r2.kind, ReplyKind::Fulfilment, "{r2:?}");
}

#[test]
fn empty_and_whitespace_utterances_fall_back() {
    let (onto, kb, mapping) = fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let mut a = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    for u in ["", "   ", "???"] {
        let r = a.respond(u);
        assert_eq!(r.kind, ReplyKind::Fallback, "utterance {u:?} → {r:?}");
    }
    assert_eq!(a.log.len(), 3, "every turn is logged");
}

#[test]
fn turn_counter_advances_once_per_utterance() {
    let (onto, kb, mapping) = fig2_fixture();
    let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
    let mut a = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
    a.respond("hello");
    a.respond("what drug treats Fever?");
    a.respond("thanks");
    assert_eq!(a.context().turn, 3);
}
