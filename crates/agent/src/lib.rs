//! # obcs-agent
//!
//! The online conversation engine (paper §2 "online process", Fig. 1b):
//! given a bootstrapped conversation space, it serves multi-turn
//! conversations end to end —
//!
//! 1. **NLU** ([`nlu`]): the intent classifier (trained on the
//!    bootstrapped examples) detects the user's intent with a confidence
//!    score; dictionary-based entity recognition (concept names, instance
//!    values, synonyms) extracts entities, with partial-name
//!    disambiguation (§6.1).
//! 2. **Dialogue** (via `obcs-dialogue`): the dialogue tree decides
//!    whether to respond with a management pattern, elicit a missing slot,
//!    propose a dependent concept, or fulfill the request.
//! 3. **Fulfilment** ([`engine`]): the intent's structured query templates
//!    are instantiated with the context entities, executed against the KB,
//!    and the results are verbalised through the intent's response
//!    template ([`nlg`]).
//!
//! Every turn is recorded in an [`log::InteractionLog`] with optional
//! thumbs-up/down feedback — the raw material of the paper's §7
//! evaluation.
//!
//! ```
//! use obcs_agent::{AgentConfig, ConversationAgent, ReplyKind};
//! use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};
//!
//! let (onto, kb, mapping) = obcs_core::testutil::fig2_fixture();
//! let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
//! let mut agent = ConversationAgent::new(onto, kb, mapping, space, AgentConfig::default());
//!
//! // Slot filling across two turns (paper Fig. 10).
//! let reply = agent.respond("show me the precaution");
//! assert_eq!(reply.kind, ReplyKind::Elicitation);
//! let reply = agent.respond("Aspirin");
//! assert_eq!(reply.kind, ReplyKind::Fulfilment);
//! ```
//!
//! Crate role: DESIGN.md §2; turn-level observability (the engine's
//! [`engine::ConversationAgent::set_recorder`] hook and the per-stage
//! spans it emits): §10.

pub mod engine;
pub mod log;
pub mod nlg;
pub mod nlu;

pub use engine::{AgentConfig, AgentReply, ConversationAgent, ReplyKind};
pub use log::{Feedback, InteractionLog, InteractionRecord};
pub use obcs_core::IntentId;
