//! Natural-language understanding: intent classification over the
//! bootstrapped training set plus dictionary-based entity recognition with
//! synonyms and partial-name disambiguation (paper §6.1).

use std::sync::{Mutex, MutexGuard};

use obcs_cache::{CacheConfig, CacheStats, GenCache};
use obcs_classifier::logreg::{LogReg, LogRegConfig};
use obcs_classifier::naive_bayes::{NaiveBayes, NaiveBayesConfig};
use obcs_classifier::{Classifier, Dataset};
use obcs_core::entities::EntityKind;
use obcs_core::{ConversationSpace, IntentId};
use obcs_kb::KnowledgeBase;
use obcs_nlq::annotate::{Evidence, Lexicon};
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

/// The result of entity recognition on one utterance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecognizedEntities {
    /// Fully recognised instances `(concept, canonical value)`.
    pub instances: Vec<(ConceptId, String)>,
    /// Concepts mentioned by name (no instance).
    pub concepts: Vec<ConceptId>,
    /// Partial-name candidates when nothing fully matched: the user's
    /// fragment plus the matching instances (§6.1 Calcium → Calcium
    /// Carbonate, Calcium Citrate).
    pub partial: Option<(String, Vec<(ConceptId, String)>)>,
}

/// Which intent-classifier family to train (see the `ablation-classifier`
/// harness for the accuracy/latency trade-off: logistic regression scores
/// noticeably higher on the bootstrapped data but trains slower — ~5× at
/// MDX scale since the CSR/class-blocked rewrite; `repro perf` tracks it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ClassifierKind {
    #[default]
    NaiveBayes,
    LogisticRegression,
}

/// Hit/miss counters of the NLU memo's two layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NluMemoStats {
    /// Classification memo (`nlu_classify` telemetry layer).
    pub classify: CacheStats,
    /// Entity-recognition memo (`nlu_recognize` telemetry layer).
    pub recognize: CacheStats,
}

/// Memoisation of classify/recognize on repeated utterances (DESIGN.md
/// §12). Both results are pure functions of the utterance and the
/// lexicon/classifier state, so entries are validated against a
/// generation bumped on every post-build mutation
/// ([`Nlu::add_instance_synonym`]). The memo sits inside `Nlu`, behind
/// the engine's `Arc`, so forked sessions share one read-mostly memo —
/// the `Mutex` keeps `Nlu: Sync` across shard threads.
struct NluMemo {
    enabled: bool,
    classify: Mutex<GenCache<Option<(IntentId, f64)>>>,
    recognize: Mutex<GenCache<RecognizedEntities>>,
}

/// Utterances are short and results small; cap by count only.
const MEMO_ENTRIES: usize = 2048;

impl Default for NluMemo {
    fn default() -> Self {
        NluMemo {
            enabled: true,
            classify: Mutex::new(GenCache::new(CacheConfig::entries(MEMO_ENTRIES))),
            recognize: Mutex::new(GenCache::new(CacheConfig::entries(MEMO_ENTRIES))),
        }
    }
}

/// Locks a memo layer, recovering from a poisoned mutex (the memo holds
/// no cross-panic invariants).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// NLU component: classifier + entity lexicon.
pub struct Nlu {
    classifier: Box<dyn Classifier + Send + Sync>,
    lexicon: Lexicon,
    /// Intent names in classifier-label order resolve through this map.
    intents_by_name: Vec<(String, IntentId)>,
    /// Entity-only intents per concept (DRUG_GENERAL).
    entity_only: Vec<(ConceptId, IntentId)>,
    /// Concept names needed for entity masking during classification.
    onto: Ontology,
    /// Bumped on every post-build mutation; validates memo entries.
    generation: u64,
    memo: NluMemo,
}

impl Nlu {
    /// Builds the NLU from a conversation space: trains the classifier on
    /// the bootstrapped training examples and assembles the entity lexicon
    /// (concept names, instance values, synonyms).
    pub fn from_space(
        space: &ConversationSpace,
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
    ) -> Self {
        Self::from_space_with(space, onto, kb, mapping, ClassifierKind::default())
    }

    /// Like [`Nlu::from_space`], with an explicit classifier family.
    pub fn from_space_with(
        space: &ConversationSpace,
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
        kind: ClassifierKind,
    ) -> Self {
        let mut lexicon = Lexicon::build(onto, kb, mapping);
        // Concept-name synonyms from the space's entity definitions.
        for e in &space.entities {
            for syn in &e.synonyms {
                lexicon.add_phrase(syn, Evidence::Concept(e.concept));
            }
            // Grouping entities also answer to their members' names via the
            // members themselves (already in the lexicon as concepts).
            if let EntityKind::Grouping(_) = e.kind {
                // nothing extra: members are concepts in the ontology
            }
        }
        // Instance-value synonyms from the synonym dictionary: a synonym
        // whose canonical phrase is an instance value resolves to that
        // instance.
        for (canonical, synonyms) in space.synonyms.iter() {
            for e in &space.entities {
                if let Some(value) = e.examples.iter().find(|v| v.eq_ignore_ascii_case(canonical)) {
                    for syn in synonyms {
                        lexicon.add_phrase(
                            syn,
                            Evidence::Instance { concept: e.concept, value: value.clone() },
                        );
                    }
                }
            }
        }

        // Train on *masked* text: instance values become concept
        // placeholders, so the classifier learns intent-bearing words, not
        // incidental entity vocabularies (the paper's intent + entity
        // separation).
        let mut data = Dataset::new();
        for ex in &space.training {
            if let Some(intent) = space.intent(ex.intent) {
                data.push(lexicon.mask(&ex.text, onto), intent.name.clone());
            }
        }
        let classifier: Box<dyn Classifier + Send + Sync> = match kind {
            ClassifierKind::NaiveBayes => {
                Box::new(NaiveBayes::train(&data, NaiveBayesConfig::default()))
            }
            ClassifierKind::LogisticRegression => {
                Box::new(LogReg::train(&data, LogRegConfig::default()))
            }
        };

        let intents_by_name = space.intents.iter().map(|i| (i.name.clone(), i.id)).collect();
        let entity_only = space
            .intents
            .iter()
            .filter_map(|i| match i.goal {
                obcs_core::intents::IntentGoal::EntityOnly(c) => Some((c, i.id)),
                _ => None,
            })
            .collect();
        Nlu {
            classifier,
            lexicon,
            intents_by_name,
            entity_only,
            onto: onto.clone(),
            generation: 0,
            memo: NluMemo::default(),
        }
    }

    /// Registers an extra instance synonym (e.g. brand names).
    pub fn add_instance_synonym(&mut self, concept: ConceptId, canonical: &str, synonym: &str) {
        self.lexicon
            .add_phrase(synonym, Evidence::Instance { concept, value: canonical.to_string() });
        // The lexicon changed: memoised results may now be stale.
        self.generation += 1;
    }

    /// Enables or disables the classify/recognize memo. Disabling drops
    /// every memoised entry (counters are kept).
    pub fn set_memo_enabled(&mut self, on: bool) {
        self.memo.enabled = on;
        if !on {
            lock(&self.memo.classify).clear();
            lock(&self.memo.recognize).clear();
        }
    }

    /// Whether the classify/recognize memo is enabled.
    pub fn memo_enabled(&self) -> bool {
        self.memo.enabled
    }

    /// Counters accumulated by the memo layers so far.
    pub fn memo_stats(&self) -> NluMemoStats {
        NluMemoStats {
            classify: lock(&self.memo.classify).stats(),
            recognize: lock(&self.memo.recognize).stats(),
        }
    }

    /// Classifies the intent of an utterance; returns `(intent,
    /// confidence)` of the winner even when weak — thresholding is the
    /// engine's call.
    pub fn classify(&self, utterance: &str) -> Option<(IntentId, f64)> {
        self.classify_traced(utterance, &obcs_telemetry::NoopRecorder)
    }

    /// Like [`Nlu::classify`], recording a
    /// [`classify`](obcs_telemetry::stage::CLASSIFY) span on `rec`.
    pub fn classify_traced(
        &self,
        utterance: &str,
        rec: &dyn obcs_telemetry::Recorder,
    ) -> Option<(IntentId, f64)> {
        if self.memo.enabled {
            let memoised = lock(&self.memo.classify).get(utterance, self.generation);
            if let Some(result) = memoised {
                // Replay the miss path's exact span structure — one
                // `classify` span, nothing inside it — so a memo hit is
                // tick-identical to a miss and traces stay bit-for-bit
                // equal with the memo on or off (DESIGN.md §12).
                let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::CLASSIFY);
                return result;
            }
        }
        let pred = self.classifier.predict_traced(&self.lexicon.mask(utterance, &self.onto), rec);
        let result = self
            .intents_by_name
            .iter()
            .find(|(name, _)| *name == pred.label)
            .map(|&(_, id)| (id, pred.confidence));
        if self.memo.enabled {
            lock(&self.memo.classify).put(utterance, self.generation, result, 1);
        }
        result
    }

    /// Stateless intent detection as the deployed system would label a
    /// log record: entity-dominant utterances (bare entity mentions plus
    /// filler, §6.1) resolve to the concept's entity-only intent
    /// (DRUG_GENERAL); everything else goes through the classifier.
    pub fn detect_intent(&self, utterance: &str) -> Option<(IntentId, f64)> {
        let recognized = self.recognize(utterance);
        if is_entity_dominant(utterance, &recognized.instances) {
            if let Some(&(_, intent)) = self
                .entity_only
                .iter()
                .find(|(c, _)| recognized.instances.iter().any(|(ic, _)| ic == c))
            {
                return Some((intent, 1.0));
            }
        }
        self.classify(utterance)
    }

    /// Recognises entities in an utterance.
    pub fn recognize(&self, utterance: &str) -> RecognizedEntities {
        self.recognize_traced(utterance, &obcs_telemetry::NoopRecorder)
    }

    /// Like [`Nlu::recognize`], recording an
    /// [`annotate`](obcs_telemetry::stage::ANNOTATE) span around the
    /// lexicon scan on `rec`.
    pub fn recognize_traced(
        &self,
        utterance: &str,
        rec: &dyn obcs_telemetry::Recorder,
    ) -> RecognizedEntities {
        if self.memo.enabled {
            let memoised = lock(&self.memo.recognize).get(utterance, self.generation);
            if let Some(result) = memoised {
                // One `annotate` span, like the miss path (partial
                // matching runs outside the span there); see
                // `classify_traced` for the determinism argument.
                let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::ANNOTATE);
                return result;
            }
        }
        let mut out = RecognizedEntities::default();
        for ann in self.lexicon.annotate_traced(utterance, rec) {
            match ann.evidence {
                Evidence::Instance { concept, value } => {
                    if !out.instances.iter().any(|(c, v)| *c == concept && *v == value) {
                        out.instances.push((concept, value));
                    }
                }
                Evidence::Concept(c) => {
                    if !out.concepts.contains(&c) {
                        out.concepts.push(c);
                    }
                }
            }
        }
        // Partial matching: only when no full instance matched, try the
        // longest unknown token run against instance values.
        if out.instances.is_empty() {
            let candidates = self.lexicon.partial_matches(utterance.trim());
            if !candidates.is_empty() && candidates.len() <= 8 {
                out.partial = Some((utterance.trim().to_string(), candidates));
            }
        }
        if self.memo.enabled {
            lock(&self.memo.recognize).put(utterance, self.generation, out.clone(), 1);
        }
        out
    }

    /// The entity lexicon (for tests and tooling).
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }
}

/// Whether an utterance consists only of recognised entity values plus
/// filler words — i.e. it names *what* but not *what about it* (the
/// incremental specifications of paper §6.3 and the keyword queries of
/// §6.1).
pub fn is_entity_dominant(utterance: &str, instances: &[(ConceptId, String)]) -> bool {
    if instances.is_empty() {
        return false;
    }
    const FILLER: &[&str] = &[
        "how", "about", "for", "what", "whats", "the", "a", "an", "i", "mean", "meant", "please",
        "and", "also", "of", "in", "on", "to", "it", "that", "this", "now", "instead", "try",
        "with", "same", "again", "ok", "okay",
    ];
    let mut remaining = obcs_nlq::annotate::normalize(utterance);
    for (_, value) in instances {
        let norm_value = obcs_nlq::annotate::normalize(value);
        remaining = remaining.replace(&norm_value, " ");
    }
    remaining.split_whitespace().all(|tok| FILLER.contains(&tok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_core::testutil::fig2_fixture;
    use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};

    fn nlu() -> (Ontology, ConversationSpace, Nlu) {
        let (onto, kb, mapping) = fig2_fixture();
        let drug = onto.concept_id("Drug").unwrap();
        let sme = SmeFeedback::new()
            .synonym("Drug", &["medicine", "medication"])
            .synonym("Aspirin", &["asa"])
            .entity_only(drug);
        let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        let nlu = Nlu::from_space(&space, &onto, &kb, &mapping);
        (onto, space, nlu)
    }

    #[test]
    fn classifies_lookup_intent() {
        let (_, space, nlu) = nlu();
        let (intent, conf) = nlu.classify("show me the precaution for Aspirin").unwrap();
        let expected = space.intent_by_name("Precautions of Drug").unwrap();
        assert_eq!(intent, expected.id);
        assert!(conf > 0.3, "confidence {conf}");
    }

    #[test]
    fn recognizes_instances_and_concepts() {
        let (onto, _, nlu) = nlu();
        let drug = onto.concept_id("Drug").unwrap();
        let prec = onto.concept_id("Precaution").unwrap();
        let rec = nlu.recognize("precaution for aspirin");
        assert_eq!(rec.instances, vec![(drug, "Aspirin".to_string())]);
        assert_eq!(rec.concepts, vec![prec]);
    }

    #[test]
    fn synonym_resolution_for_concepts_and_instances() {
        let (onto, _, nlu) = nlu();
        let drug = onto.concept_id("Drug").unwrap();
        let rec = nlu.recognize("which medicine");
        assert_eq!(rec.concepts, vec![drug]);
        // Instance synonym "asa" → Aspirin.
        let rec = nlu.recognize("dosage of asa");
        assert!(rec.instances.contains(&(drug, "Aspirin".to_string())));
    }

    #[test]
    fn partial_matching_surfaces_candidates() {
        let (onto, _, mut nlu) = nlu();
        let drug = onto.concept_id("Drug").unwrap();
        nlu.add_instance_synonym(drug, "Aspirin", "acetylsalicylic acid");
        let rec = nlu.recognize("tazaro");
        let (fragment, candidates) = rec.partial.expect("partial match for tazaro");
        assert_eq!(fragment, "tazaro");
        assert_eq!(candidates, vec![(drug, "Tazarotene".to_string())]);
    }

    #[test]
    fn no_partial_when_full_match_exists() {
        let (_, _, nlu) = nlu();
        let rec = nlu.recognize("aspirin");
        assert!(rec.partial.is_none());
        assert_eq!(rec.instances.len(), 1);
    }

    #[test]
    fn logistic_regression_backend_classifies_too() {
        let (onto, kb, mapping) = fig2_fixture();
        let space =
            bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &SmeFeedback::new());
        let nlu =
            Nlu::from_space_with(&space, &onto, &kb, &mapping, ClassifierKind::LogisticRegression);
        let (intent, conf) = nlu.classify("show me the precaution for Aspirin").unwrap();
        let expected = space.intent_by_name("Precautions of Drug").unwrap();
        assert_eq!(intent, expected.id);
        assert!(conf > 0.2, "confidence {conf}");
    }

    #[test]
    fn memo_hits_on_repeats_and_matches_unmemoised() {
        let (_, _, nlu) = nlu();
        assert!(nlu.memo_enabled(), "memo is on by default");
        let utterance = "show me the precaution for Aspirin";
        let first = nlu.classify(utterance);
        let again = nlu.classify(utterance);
        assert_eq!(first, again);
        let rec1 = nlu.recognize(utterance);
        let rec2 = nlu.recognize(utterance);
        assert_eq!(rec1, rec2);
        let stats = nlu.memo_stats();
        assert_eq!(stats.classify.hits, 1);
        assert_eq!(stats.recognize.hits, 1);
    }

    #[test]
    fn add_synonym_invalidates_memo() {
        let (onto, _, mut nlu) = nlu();
        let drug = onto.concept_id("Drug").unwrap();
        assert!(nlu.recognize("dosage of acetylsalicylic acid").instances.is_empty());
        nlu.add_instance_synonym(drug, "Aspirin", "acetylsalicylic acid");
        let rec = nlu.recognize("dosage of acetylsalicylic acid");
        assert!(
            rec.instances.contains(&(drug, "Aspirin".to_string())),
            "memoised pre-synonym result must not serve"
        );
        assert_eq!(nlu.memo_stats().recognize.invalidations, 1);
    }

    #[test]
    fn disabling_memo_clears_entries() {
        let (_, _, mut nlu) = nlu();
        nlu.recognize("aspirin");
        nlu.set_memo_enabled(false);
        assert!(!nlu.memo_enabled());
        nlu.recognize("aspirin");
        let stats = nlu.memo_stats();
        assert_eq!(stats.recognize.hits, 0, "no hits once disabled");
    }

    #[test]
    fn memo_hit_replays_identical_trace() {
        use obcs_telemetry::CollectingRecorder;
        let (_, _, nlu) = nlu();
        let utterance = "show me the precaution for Aspirin";
        let miss_rec = CollectingRecorder::ticks();
        nlu.classify_traced(utterance, &miss_rec);
        nlu.recognize_traced(utterance, &miss_rec);
        let hit_rec = CollectingRecorder::ticks();
        nlu.classify_traced(utterance, &hit_rec);
        nlu.recognize_traced(utterance, &hit_rec);
        assert_eq!(
            miss_rec.take_report().to_jsonl(),
            hit_rec.take_report().to_jsonl(),
            "a memo hit must be span- and tick-identical to the miss that filled it"
        );
    }

    #[test]
    fn gibberish_yields_nothing() {
        let (_, _, nlu) = nlu();
        let rec = nlu.recognize("apfjhd");
        assert!(rec.instances.is_empty());
        assert!(rec.concepts.is_empty());
        assert!(rec.partial.is_none());
    }
}
