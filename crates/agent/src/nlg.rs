//! Natural-language generation: verbalising query results through an
//! intent's response template.

use obcs_kb::ResultSet;

/// Fills an intent response template: `{entities}` with the entity values
/// used, `{results}` with verbalised rows.
pub fn fill_response(template: &str, entities: &[(String, String)], results: &ResultSet) -> String {
    let entity_text = if entities.is_empty() {
        "your request".to_string()
    } else {
        entities.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>().join(", ")
    };
    template.replace("{entities}", &entity_text).replace("{results}", &render_results(results))
}

/// Verbalises a result set: single-column results become a comma list,
/// multi-column results become one line per row.
pub fn render_results(results: &ResultSet) -> String {
    if results.rows.is_empty() {
        return "(no results found)".to_string();
    }
    if results.columns.len() == 1 {
        let values: Vec<String> = results.rows.iter().map(|r| r[0].to_string()).collect();
        values.join(", ")
    } else {
        results
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&results.columns)
                    .map(|(v, c)| format!("{c}: {v}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Merges several result sets (an intent's multiple templates, e.g. the
/// union augmentation) into one labelled body.
pub fn render_merged(results: &[(String, ResultSet)]) -> String {
    let non_empty: Vec<&(String, ResultSet)> =
        results.iter().filter(|(_, r)| !r.rows.is_empty()).collect();
    if non_empty.is_empty() {
        return "(no results found)".to_string();
    }
    if non_empty.len() == 1 {
        return render_results(&non_empty[0].1);
    }
    non_empty
        .iter()
        .map(|(label, r)| format!("{label}: {}", render_results(r)))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_kb::Value;

    fn rs(columns: &[&str], rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { columns: columns.iter().map(|s| s.to_string()).collect(), rows }
    }

    #[test]
    fn single_column_comma_list() {
        let r = rs(&["name"], vec![vec![Value::text("A")], vec![Value::text("B")]]);
        assert_eq!(render_results(&r), "A, B");
    }

    #[test]
    fn multi_column_lines() {
        let r = rs(&["name", "dose"], vec![vec![Value::text("A"), Value::text("5mg")]]);
        assert_eq!(render_results(&r), "name: A; dose: 5mg");
    }

    #[test]
    fn empty_results_message() {
        let r = rs(&["name"], vec![]);
        assert_eq!(render_results(&r), "(no results found)");
    }

    #[test]
    fn fill_response_substitutes() {
        let r = rs(&["name"], vec![vec![Value::text("X")]]);
        let text = fill_response(
            "Here are the Precautions for {entities}:\n{results}",
            &[("Drug".into(), "Aspirin".into())],
            &r,
        );
        assert_eq!(text, "Here are the Precautions for Aspirin:\nX");
    }

    #[test]
    fn merged_results_label_sections() {
        let merged = render_merged(&[
            ("Contra Indications".into(), rs(&["d"], vec![vec![Value::text("x")]])),
            ("Black Box Warnings".into(), rs(&["d"], vec![])),
            ("Risks".into(), rs(&["d"], vec![vec![Value::text("y")]])),
        ]);
        assert!(merged.contains("Contra Indications: x"));
        assert!(!merged.contains("Black Box"));
        assert!(merged.contains("Risks: y"));
    }

    #[test]
    fn merged_single_section_unlabelled() {
        let merged = render_merged(&[
            ("Only".into(), rs(&["d"], vec![vec![Value::text("x")]])),
            ("Empty".into(), rs(&["d"], vec![])),
        ]);
        assert_eq!(merged, "x");
    }

    #[test]
    fn merged_all_empty() {
        let merged = render_merged(&[("A".into(), rs(&["d"], vec![]))]);
        assert_eq!(merged, "(no results found)");
    }
}
