//! The conversation engine: ties NLU, the dialogue tree, template
//! instantiation, KB execution, and NLG into a single `respond` loop —
//! the fully automated online process of the paper's Figure 1(b).
//!
//! The trained NLU (classifier weights + entity lexicon) is by far the
//! most expensive part of agent assembly, so it is held behind an [`Arc`]:
//! [`ConversationAgent::fork_session`] stamps out an independent session
//! (own context, own log) that *shares* the trained NLU — the mechanism
//! the traffic replay uses to run shards on separate threads without
//! retraining per shard.

use std::sync::Arc;

use obcs_core::{ConversationSpace, IntentId};
use obcs_dialogue::tree::TurnInput;
use obcs_dialogue::{AgentAction, ConversationContext, DialogueTree};
use obcs_faults::{
    run_resilient, FaultInjector, FaultStage, InjectedFault, NoFaults, ObcsError, Recovery,
    ResilienceConfig,
};
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};
use obcs_telemetry::{metric, stage, Clock, NoopRecorder, Recorder, TickClock};
use serde::{Deserialize, Serialize};

use crate::log::{Feedback, InteractionLog, InteractionRecord, LoggedAction};
use crate::nlg;
use crate::nlu::Nlu;

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Agent display name used in openings/closings.
    pub name: String,
    /// Minimum classifier confidence for a domain intent to be accepted.
    pub intent_confidence_threshold: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig { name: "Assistant".to_string(), intent_confidence_threshold: 0.35 }
    }
}

/// The kind of reply the agent produced (flattened dialogue action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplyKind {
    Management,
    Elicitation,
    Fulfilment,
    Proposal,
    Disambiguation,
    Fallback,
    Closing,
    /// A system fault (KB, classifier, annotator, …) could not be
    /// recovered within the turn's retry/deadline policy; the reply is an
    /// apology/fallback rather than a panic or a silent empty answer
    /// (DESIGN.md §11).
    Degraded,
}

/// One agent reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentReply {
    pub text: String,
    pub kind: ReplyKind,
    pub intent: Option<IntentId>,
    pub confidence: Option<f64>,
    /// Whether fulfilment found any rows (true for non-fulfilment kinds).
    pub found_results: bool,
}

/// The online conversation agent.
pub struct ConversationAgent {
    onto: Ontology,
    kb: KnowledgeBase,
    mapping: OntologyMapping,
    space: ConversationSpace,
    tree: DialogueTree,
    nlu: Arc<Nlu>,
    ctx: ConversationContext,
    pub log: InteractionLog,
    config: AgentConfig,
    /// Pending partial-name candidates awaiting user choice (§6.1).
    pending_disambiguation: Vec<(ConceptId, String)>,
    /// Consecutive turns the pending candidates went unmatched; after one
    /// repair re-prompt the engine gives up and processes the turn
    /// normally instead of looping forever.
    disambiguation_misses: u8,
    /// Telemetry sink for the turn pipeline (DESIGN.md §10). Defaults to
    /// the zero-cost [`NoopRecorder`].
    recorder: Arc<dyn Recorder>,
    /// Fault injector for chaos replays (DESIGN.md §11). Defaults to
    /// [`NoFaults`], so production turns pay one virtual dispatch per
    /// injection point and nothing else.
    faults: Arc<dyn FaultInjector>,
    /// Retry/backoff/deadline policy applied when a stage faults.
    resilience: ResilienceConfig,
    /// Per-session virtual clock driving retry backoff and the turn
    /// budget. A fresh tick clock per fork, read only by this session's
    /// turns, so all elapsed-tick measurements are a pure function of the
    /// turn's call structure — deterministic at any replay parallelism.
    chaos_clock: TickClock,
}

impl ConversationAgent {
    /// Assembles the agent from a bootstrapped conversation space.
    pub fn new(
        onto: Ontology,
        kb: KnowledgeBase,
        mapping: OntologyMapping,
        space: ConversationSpace,
        config: AgentConfig,
    ) -> Self {
        let tree = DialogueTree::from_space(&space, &onto, &config.name);
        let nlu = Arc::new(Nlu::from_space(&space, &onto, &kb, &mapping));
        ConversationAgent {
            onto,
            kb,
            mapping,
            space,
            tree,
            nlu,
            ctx: ConversationContext::new(),
            log: InteractionLog::new(),
            config,
            pending_disambiguation: Vec::new(),
            disambiguation_misses: 0,
            recorder: Arc::new(NoopRecorder),
            faults: Arc::new(NoFaults),
            resilience: ResilienceConfig::default(),
            chaos_clock: TickClock::new(),
        }
    }

    /// Installs a fault injector; every subsequent turn consults it at
    /// each injection point (annotate, classify, kb_execute). Pass
    /// [`PlannedFaults`](obcs_faults::PlannedFaults) for chaos replays;
    /// the default is the inert [`NoFaults`].
    pub fn set_fault_injector(&mut self, faults: Arc<dyn FaultInjector>) {
        self.faults = faults;
    }

    /// The currently installed fault injector handle.
    pub fn fault_injector(&self) -> Arc<dyn FaultInjector> {
        Arc::clone(&self.faults)
    }

    /// Sets the retry/backoff/deadline policy for degraded turns.
    pub fn set_resilience(&mut self, config: ResilienceConfig) {
        self.resilience = config;
    }

    /// The active resilience policy.
    pub fn resilience(&self) -> ResilienceConfig {
        self.resilience
    }

    /// The agent's construction config (display name, confidence
    /// threshold) — read-only; serving layers use it to identify the
    /// engine on the wire.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The agent's knowledge base — read-only; the durable serving layer
    /// snapshots it when a durability directory is first created.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Replaces the agent's knowledge base, e.g. with one recovered from
    /// a snapshot + WAL (DESIGN.md §16). The conversation space, NLU, and
    /// dialogue tree are untouched: they are derived from the schema and
    /// instance names, which recovery restores identically — a recovered
    /// KB with the same data yields byte-identical replies.
    pub fn set_kb(&mut self, kb: KnowledgeBase) {
        self.kb = kb;
    }

    /// Installs a telemetry recorder; every subsequent turn records spans
    /// and counters through it. Pass an `Arc<CollectingRecorder>` handle
    /// you keep, then drain it with `take_report` (DESIGN.md §10).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    /// The currently installed telemetry recorder handle.
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder)
    }

    /// Access to the dialogue tree for customisation (glossary, prompts).
    pub fn tree_mut(&mut self) -> &mut DialogueTree {
        &mut self.tree
    }

    /// Access to the NLU for synonym registration. Only available while
    /// this agent is the sole owner — customise the NLU *before* forking
    /// sessions off it.
    pub fn nlu_mut(&mut self) -> &mut Nlu {
        Arc::get_mut(&mut self.nlu)
            .expect("NLU is shared by forked sessions; customise before forking")
    }

    /// The shared trained NLU (cheap to clone the handle).
    pub fn shared_nlu(&self) -> Arc<Nlu> {
        Arc::clone(&self.nlu)
    }

    /// Enables or disables every cache layer of this agent's pipeline:
    /// the KB's plan/result caches and the NLU classify/recognize memo
    /// (DESIGN.md §12). All layers are on by default. Like
    /// [`nlu_mut`](Self::nlu_mut), the NLU side requires sole ownership —
    /// configure caching *before* forking sessions.
    pub fn set_caching(&mut self, enabled: bool) {
        self.kb.set_cache_enabled(enabled);
        Arc::get_mut(&mut self.nlu)
            .expect("NLU is shared by forked sessions; configure caching before forking")
            .set_memo_enabled(enabled);
    }

    /// Whether the pipeline caches are enabled (they toggle together).
    pub fn caching_enabled(&self) -> bool {
        self.kb.cache_enabled()
    }

    /// Counters accumulated by this session's KB caches and the shared
    /// NLU memo. Note the memo lives behind the shared `Arc`, so forks
    /// see (and contribute to) one common classify/recognize count.
    pub fn cache_stats(&self) -> (obcs_kb::KbCacheStats, crate::nlu::NluMemoStats) {
        (self.kb.cache_stats(), self.nlu.memo_stats())
    }

    /// Publishes the cache counters through `rec` under the shared layer
    /// labels (`kb_plan`, `kb_result`, `nlu_classify`, `nlu_recognize`).
    /// Call on demand — end of a replay, a stats endpoint — never per
    /// turn: hit patterns depend on shard layout, and per-turn recording
    /// would break trace determinism (DESIGN.md §12).
    pub fn record_cache_stats(&self, rec: &dyn Recorder) {
        let (kb, memo) = self.cache_stats();
        obcs_cache::record_stats(kb.plan, "kb_plan", rec);
        obcs_cache::record_stats(kb.result, "kb_result", rec);
        obcs_cache::record_stats(memo.classify, "nlu_classify", rec);
        obcs_cache::record_stats(memo.recognize, "nlu_recognize", rec);
    }

    /// Stamps out an independent conversation session sharing this agent's
    /// trained NLU: the classifier and lexicon are behind the same `Arc`
    /// (no retraining), while the context, pending disambiguation, and log
    /// start fresh. Forks are `Send` — the traffic replay runs one per
    /// shard thread.
    pub fn fork_session(&self) -> ConversationAgent {
        ConversationAgent {
            onto: self.onto.clone(),
            kb: self.kb.clone(),
            mapping: self.mapping.clone(),
            space: self.space.clone(),
            tree: self.tree.clone(),
            nlu: Arc::clone(&self.nlu),
            ctx: ConversationContext::new(),
            log: InteractionLog::new(),
            config: self.config.clone(),
            pending_disambiguation: Vec::new(),
            disambiguation_misses: 0,
            recorder: Arc::clone(&self.recorder),
            faults: Arc::clone(&self.faults),
            resilience: self.resilience,
            chaos_clock: TickClock::new(),
        }
    }

    /// The conversation space the agent serves.
    pub fn space(&self) -> &ConversationSpace {
        &self.space
    }

    /// The current conversation context (inspection/testing).
    pub fn context(&self) -> &ConversationContext {
        &self.ctx
    }

    /// Clears the conversation (new session); the log is kept.
    pub fn reset(&mut self) {
        self.ctx = ConversationContext::new();
        self.pending_disambiguation.clear();
        self.disambiguation_misses = 0;
    }

    /// Records user feedback on the last reply.
    pub fn feedback(&mut self, feedback: Feedback) {
        self.log.feedback_on_last(feedback);
    }

    /// Learning from usage logs — the paper's stated next step (§9:
    /// "learning from the system usage logs, and using that as a feedback
    /// to further improve the system"). SMEs review logged utterances
    /// (typically the thumbs-down ones), label them with the intended
    /// intent, and the labelled pairs are folded into the training set;
    /// the NLU is retrained in place. Unknown intent names are returned
    /// untouched.
    pub fn retrain_with(&mut self, labelled: &[(String, String)]) -> Vec<String> {
        use obcs_core::training::{ExampleSource, TrainingExample};
        let mut unknown = Vec::new();
        let mut added = false;
        for (utterance, intent_name) in labelled {
            match self.space.intent_by_name(intent_name) {
                Some(intent) => {
                    self.space.training.push(TrainingExample {
                        text: utterance.clone(),
                        intent: intent.id,
                        source: ExampleSource::SmeAugmented,
                    });
                    added = true;
                }
                None => unknown.push(intent_name.clone()),
            }
        }
        if added {
            // Rebuild the NLU over the augmented training set; dialogue
            // tree and templates are unaffected. Existing forks keep the
            // old NLU — retraining swaps the Arc, it never mutates through
            // it.
            self.nlu = Arc::new(Nlu::from_space(&self.space, &self.onto, &self.kb, &self.mapping));
        }
        unknown
    }

    /// The utterances of interactions the user flagged negative — the raw
    /// material the SME labels for [`ConversationAgent::retrain_with`].
    pub fn negative_utterances(&self) -> Vec<&str> {
        self.log
            .records
            .iter()
            .filter(|r| r.feedback == Some(Feedback::ThumbsDown))
            .map(|r| r.utterance.as_str())
            .collect()
    }

    /// Handles one user utterance and produces the agent's reply.
    pub fn respond(&mut self, utterance: &str) -> AgentReply {
        // Hold a local handle so span guards can borrow the recorder while
        // `&mut self` stays free for the pipeline below.
        let rec = Arc::clone(&self.recorder);
        let _turn = obcs_telemetry::span(&*rec, stage::TURN);
        // Anchor of this turn's deadline budget; all resilience decisions
        // measure elapsed ticks against it (DESIGN.md §11).
        let turn_start = self.chaos_clock.now();
        // --- NLU ---
        let annotate_fault = self.faults.inject(FaultStage::Annotate, utterance);
        if let Some(f) = annotate_fault {
            rec.incr(metric::FAULTS, f.kind.label());
        }
        let annotated = run_resilient(
            FaultStage::Annotate,
            annotate_fault,
            &self.resilience,
            &self.chaos_clock,
            turn_start,
            &*rec,
            || Ok::<_, ObcsError>(self.nlu.recognize_traced(utterance, &*rec)),
        );
        let mut recognized = match annotated {
            Ok((r, recovery)) => {
                if let Recovery::Recovered(kind) = recovery {
                    rec.incr(metric::FAULT_RECOVERED, kind.label());
                }
                r
            }
            Err(err) => return self.degrade(utterance, &err, None, None),
        };
        // Management patterns outrank entity heuristics: "hi" must greet,
        // not fuzzy-match a drug name.
        let catalog_handles = self.tree.catalog.detect(utterance).is_some();

        // Resolve a pending partial-name disambiguation: the user's next
        // input picks one of the offered candidates.
        if !self.pending_disambiguation.is_empty() {
            // Full entity mentions that name a pending candidate.
            let mut matched: Vec<(ConceptId, String)> = recognized
                .instances
                .iter()
                .filter(|(c, v)| {
                    self.pending_disambiguation.iter().any(|(pc, pv)| pc == c && pv == v)
                })
                .cloned()
                .collect();
            // Otherwise a fragment reply ("the extra-strength one")
            // selects candidates by substring.
            if matched.is_empty() {
                let norm = utterance.trim().to_lowercase();
                if !norm.is_empty() {
                    matched = self
                        .pending_disambiguation
                        .iter()
                        .filter(|(_, v)| v.to_lowercase().contains(&norm))
                        .cloned()
                        .collect();
                }
            }
            if matched.len() == 1 {
                let (concept, value) = matched.swap_remove(0);
                self.pending_disambiguation.clear();
                self.disambiguation_misses = 0;
                if !recognized.instances.iter().any(|(c, _)| *c == concept) {
                    recognized.instances.push((concept, value));
                }
            } else if matched.len() > 1 {
                // Still ambiguous: narrow to the matched subset and
                // re-prompt instead of silently picking the first.
                let names: Vec<&str> = matched.iter().map(|(_, v)| v.as_str()).collect();
                let text = format!(
                    "That still matches several options: {}. Which one do you mean?",
                    names.join(", ")
                );
                self.pending_disambiguation = matched;
                self.disambiguation_misses = 0;
                return self.record(
                    utterance,
                    None,
                    None,
                    LoggedAction::Disambiguate,
                    AgentReply {
                        text,
                        kind: ReplyKind::Disambiguation,
                        intent: None,
                        confidence: None,
                        found_results: true,
                    },
                );
            } else if !recognized.instances.is_empty() || catalog_handles {
                // A reply naming other entities or a management phrase is
                // a topic change — drop the pending question and move on.
                self.pending_disambiguation.clear();
                self.disambiguation_misses = 0;
            } else if self.disambiguation_misses == 0 {
                // Nothing matched: repair once, keeping the candidates on
                // the table for one more turn.
                self.disambiguation_misses = 1;
                let names: Vec<&str> =
                    self.pending_disambiguation.iter().map(|(_, v)| v.as_str()).collect();
                let text = format!(
                    "Sorry, I didn't catch which one you meant. The options are: {}. Which one?",
                    names.join(", ")
                );
                return self.record(
                    utterance,
                    None,
                    None,
                    LoggedAction::Disambiguate,
                    AgentReply {
                        text,
                        kind: ReplyKind::Disambiguation,
                        intent: None,
                        confidence: None,
                        found_results: true,
                    },
                );
            } else {
                // Second miss: give up on the offer and process the turn
                // normally.
                self.pending_disambiguation.clear();
                self.disambiguation_misses = 0;
            }
        }

        // Partial-name disambiguation (§6.1): nothing fully matched but a
        // fragment matches known instances.
        if recognized.instances.is_empty() && !catalog_handles {
            if let Some((fragment, candidates)) = recognized.partial.clone() {
                if candidates.len() == 1 {
                    recognized.instances.push(candidates[0].clone());
                } else {
                    let names: Vec<&str> = candidates.iter().map(|(_, v)| v.as_str()).collect();
                    let text = format!(
                        "I found several matches for \"{fragment}\": {}. Which one do you mean?",
                        names.join(", ")
                    );
                    self.pending_disambiguation = candidates;
                    return self.record(
                        utterance,
                        None,
                        None,
                        LoggedAction::Disambiguate,
                        AgentReply {
                            text,
                            kind: ReplyKind::Disambiguation,
                            intent: None,
                            confidence: None,
                            found_results: true,
                        },
                    );
                }
            }
        }

        let classify_fault = self.faults.inject(FaultStage::Classify, utterance);
        if let Some(f) = classify_fault {
            rec.incr(metric::FAULTS, f.kind.label());
        }
        let classify_outcome = run_resilient(
            FaultStage::Classify,
            classify_fault,
            &self.resilience,
            &self.chaos_clock,
            turn_start,
            &*rec,
            || Ok::<_, ObcsError>(self.nlu.classify_traced(utterance, &*rec)),
        );
        let classified = match classify_outcome {
            Ok((c, recovery)) => {
                if let Recovery::Recovered(kind) = recovery {
                    rec.incr(metric::FAULT_RECOVERED, kind.label());
                }
                c
            }
            Err(err) => return self.degrade(utterance, &err, None, None),
        };
        if let Some((id, conf)) = classified {
            if let Some(intent) = self.space.intent(id) {
                rec.observe_ratio(metric::CONFIDENCE, &intent.name, conf);
            }
        }
        // Incremental specifications (paper §6.3): an utterance that is
        // nothing but entity mentions plus filler ("Ibuprofen", "how about
        // for Fluocinonide?") carries no intent of its own — it operates on
        // the previous request (or triggers the entity-only proposal flow),
        // so the classifier's guess is suppressed.
        let entity_dominant = crate::nlu::is_entity_dominant(utterance, &recognized.instances);
        let mut accepted = classified
            .filter(|&(_, conf)| conf >= self.config.intent_confidence_threshold)
            .map(|(id, _)| id)
            .filter(|_| !entity_dominant);
        let confidence = classified.map(|(_, c)| c);
        if confidence.is_some_and(|c| c < self.config.intent_confidence_threshold) {
            rec.incr(metric::REPAIR, "low_confidence");
        }

        // Concept-guided resolution: when the classifier is unsure but the
        // utterance names a dependent concept ("moa of Albuterol",
        // "precautions"), the concept anchors the intent — the paper's
        // intent+entity model, where each lookup intent is grounded on one
        // dependent concept.
        if accepted.is_none() && !entity_dominant {
            accepted = self.resolve_by_concepts(&recognized);
        }

        // Classifier-detected conversation-management intents (phrasings
        // the rule catalog missed) answer with their canned response, but
        // only at high confidence — the rule catalog already covers the
        // common phrasings, and a borderline management guess must not
        // swallow a domain query.
        let strong_management = confidence.is_some_and(|c| c >= 0.5);
        if let (Some(id), false, true) = (accepted, catalog_handles, strong_management) {
            if let Some(intent) = self.space.intent(id) {
                if matches!(intent.goal, obcs_core::intents::IntentGoal::ConversationManagement) {
                    let text = intent.response_template.replace("{agent}", &self.config.name);
                    let reply = AgentReply {
                        text,
                        kind: ReplyKind::Management,
                        intent: Some(id),
                        confidence,
                        found_results: true,
                    };
                    self.ctx.begin_turn();
                    return self.record(
                        utterance,
                        Some(id),
                        confidence,
                        LoggedAction::Management,
                        reply,
                    );
                }
            }
        }

        // --- Dialogue ---
        let input = TurnInput {
            utterance: utterance.to_string(),
            intent: accepted,
            entities: recognized.instances.clone(),
        };
        let action = {
            let _eval = obcs_telemetry::span(&*rec, stage::DIALOGUE_EVAL);
            self.tree.evaluate(&mut self.ctx, &input)
        };

        // --- Action execution ---
        let (reply, logged) = match action {
            AgentAction::Say { text } => (
                AgentReply {
                    text,
                    kind: ReplyKind::Management,
                    intent: accepted,
                    confidence,
                    found_results: true,
                },
                LoggedAction::Management,
            ),
            AgentAction::Close { text } => (
                AgentReply {
                    text,
                    kind: ReplyKind::Closing,
                    intent: accepted,
                    confidence,
                    found_results: true,
                },
                LoggedAction::Close,
            ),
            AgentAction::Fallback { text } => (
                AgentReply {
                    text,
                    kind: ReplyKind::Fallback,
                    intent: None,
                    confidence,
                    found_results: false,
                },
                LoggedAction::Fallback,
            ),
            AgentAction::Elicit { intent, prompt, .. } => (
                AgentReply {
                    text: prompt,
                    kind: ReplyKind::Elicitation,
                    intent: Some(intent),
                    confidence,
                    found_results: true,
                },
                LoggedAction::Elicit,
            ),
            AgentAction::Propose { intent, text } => (
                AgentReply {
                    text,
                    kind: ReplyKind::Proposal,
                    intent: Some(intent),
                    confidence,
                    found_results: true,
                },
                LoggedAction::Propose,
            ),
            AgentAction::Fulfill { intent } => {
                match self.fulfill(intent, confidence, utterance, turn_start) {
                    Ok(reply) => (reply, LoggedAction::Fulfill),
                    Err(err) => return self.degrade(utterance, &err, Some(intent), confidence),
                }
            }
        };
        let intent_for_log = reply.intent;
        let conf_for_log = reply.confidence;
        self.record(utterance, intent_for_log, conf_for_log, logged, reply)
    }

    /// Executes an intent's templates with the context entities and builds
    /// the fulfilment response. System faults (injected or real) that
    /// survive the retry policy bubble up as [`ObcsError`]s; `respond`
    /// turns them into a degraded reply.
    fn fulfill(
        &mut self,
        intent_id: IntentId,
        confidence: Option<f64>,
        utterance: &str,
        turn_start: u64,
    ) -> Result<AgentReply, ObcsError> {
        let rec = Arc::clone(&self.recorder);
        let Some(intent) = self.space.intent(intent_id).cloned() else {
            // Historically a stringly "Internal error" fallback; now a
            // typed engine fault that degrades like any other.
            return Err(ObcsError::UnknownIntent(format!("{intent_id:?}")));
        };
        // One injection decision per fulfilment, keyed on the utterance:
        // every KB query this turn issues shares the same (deterministic)
        // fault, and fault/recovery accounting happens exactly once.
        let kb_fault = self.faults.inject(FaultStage::KbExecute, utterance);
        let mut kb_fault_accounted = false;
        let values = self.ctx.entity_values();
        // Optional entities (paper Tables 3-4): captured when present but
        // never elicited. When one is in the context, the static template
        // is bypassed and the query is built dynamically with the extra
        // filter (e.g. "severe adverse effects of aspirin" filters the
        // AdverseEffect lookup by Severity).
        let optional_present: Vec<ConceptId> = intent
            .optional_entities
            .iter()
            .copied()
            .filter(|c| self.ctx.entity(*c).is_some())
            .collect();
        let mut sections: Vec<(String, obcs_kb::ResultSet)> = Vec::new();
        if !optional_present.is_empty() {
            for pattern in intent.patterns() {
                let mut filters = Vec::new();
                let mut ok = true;
                for &concept in pattern.required.iter().chain(&optional_present) {
                    let (Some(column), Some(value)) =
                        (self.mapping.label(concept), self.ctx.entity(concept))
                    else {
                        ok = false;
                        break;
                    };
                    filters.push(obcs_nlq::interpret::Filter {
                        concept,
                        column: column.to_string(),
                        value: value.to_string(),
                    });
                }
                if !ok {
                    continue;
                }
                let sql = {
                    let _interp = obcs_telemetry::span(&*rec, stage::NLQ_INTERPRET);
                    obcs_nlq::interpret::build_query(
                        &self.onto,
                        &self.mapping,
                        pattern.focus,
                        &filters,
                    )
                    .and_then(|query| query.to_sql(&self.onto, &self.kb, &self.mapping))
                };
                let Ok(sql) = sql else {
                    continue;
                };
                match self.kb_execute(&sql, kb_fault, &mut kb_fault_accounted, turn_start, &*rec)? {
                    Some(rs) => sections.push((pattern.topic.clone(), rs)),
                    None => continue,
                }
            }
        }
        if sections.is_empty() {
            for labeled in self.space.templates_for(intent_id) {
                // Skip templates whose parameters are not all available.
                let required = labeled.template.required_concepts();
                if !required.iter().all(|c| values.iter().any(|(vc, _)| vc == c)) {
                    continue;
                }
                let sql = {
                    let _inst = obcs_telemetry::span(&*rec, stage::TEMPLATE_INSTANTIATE);
                    labeled.template.instantiate(&values)
                };
                let Ok(sql) = sql else {
                    continue;
                };
                match self.kb_execute(&sql, kb_fault, &mut kb_fault_accounted, turn_start, &*rec)? {
                    Some(rs) => sections.push((labeled.topic.clone(), rs)),
                    None => continue,
                }
            }
        }
        let found = sections.iter().any(|(_, r)| !r.rows.is_empty());
        let entity_summary: Vec<(String, String)> = intent
            .required_entities
            .iter()
            .filter_map(|&c| {
                self.ctx.entity(c).map(|v| (self.onto.concept_name(c).to_string(), v.to_string()))
            })
            .collect();
        let text = if sections.is_empty() {
            format!("I cannot answer {} requests against this knowledge base yet.", intent.name)
        } else {
            let entity_text = if entity_summary.is_empty() {
                "your request".to_string()
            } else {
                entity_summary.iter().map(|(_, v)| v.clone()).collect::<Vec<_>>().join(", ")
            };
            let rendered = {
                let _nlg = obcs_telemetry::span(&*rec, stage::NLG);
                nlg::render_merged(&sections)
            };
            intent
                .response_template
                .replace("{entities}", &entity_text)
                .replace("{results}", &rendered)
        };
        // Record terms for definition repair.
        self.ctx.record_response(&text, vec![intent.name.to_lowercase()]);
        Ok(AgentReply {
            text,
            kind: ReplyKind::Fulfilment,
            intent: Some(intent_id),
            confidence,
            found_results: found,
        })
    }

    /// Runs one KB query under the resilience policy. Returns `Ok(None)`
    /// for a real (non-injected) KB error — those keep the historical
    /// template-skip semantics, now counted under `pipeline_error` — and
    /// `Err` for unrecovered injected faults and budget exhaustion, which
    /// degrade the whole turn. The `accounted` flag makes fault/recovery
    /// counters fire once per fulfilment even when several templates run.
    fn kb_execute(
        &self,
        sql: &str,
        fault: Option<InjectedFault>,
        accounted: &mut bool,
        turn_start: u64,
        rec: &dyn Recorder,
    ) -> Result<Option<obcs_kb::ResultSet>, ObcsError> {
        let first = !*accounted;
        *accounted = true;
        if first {
            if let Some(f) = fault {
                rec.incr(metric::FAULTS, f.kind.label());
            }
        }
        let outcome = run_resilient(
            FaultStage::KbExecute,
            fault,
            &self.resilience,
            &self.chaos_clock,
            turn_start,
            rec,
            || self.kb.query_traced(sql, rec).map_err(ObcsError::from),
        );
        match outcome {
            Ok((rs, recovery)) => {
                if first {
                    if let Recovery::Recovered(kind) = recovery {
                        rec.incr(metric::FAULT_RECOVERED, kind.label());
                    }
                }
                Ok(Some(rs))
            }
            Err(ObcsError::Kb(_)) => {
                rec.incr(metric::PIPELINE_ERRORS, "kb");
                Ok(None)
            }
            Err(err) => Err(err),
        }
    }

    /// Builds, counts, and records the degraded (apology) reply for an
    /// unrecovered system fault.
    fn degrade(
        &mut self,
        utterance: &str,
        err: &ObcsError,
        intent: Option<IntentId>,
        confidence: Option<f64>,
    ) -> AgentReply {
        let cause = err.cause_label();
        self.recorder.incr(metric::DEGRADED, cause);
        let reply = AgentReply {
            text: degraded_text(cause).to_string(),
            kind: ReplyKind::Degraded,
            intent,
            confidence,
            found_results: false,
        };
        self.record(utterance, intent, confidence, LoggedAction::Degraded, reply)
    }

    fn record(
        &mut self,
        utterance: &str,
        intent: Option<IntentId>,
        confidence: Option<f64>,
        action: LoggedAction,
        reply: AgentReply,
    ) -> AgentReply {
        // Per-turn usage counters (DESIGN.md §10): every reply path in
        // `respond` funnels through here exactly once.
        self.recorder.incr(metric::TURNS, "");
        self.recorder.incr(metric::REPLY_KIND, reply_kind_label(reply.kind));
        if let Some(name) = intent.and_then(|id| self.space.intent(id)).map(|i| i.name.as_str()) {
            self.recorder.incr(metric::INTENT, name);
        }
        // Repair turns: replies that ask the user to rephrase, pick, or
        // fill in — the paper's §7 "conversation repair" bucket.
        match reply.kind {
            ReplyKind::Fallback => self.recorder.incr(metric::REPAIR, "fallback"),
            ReplyKind::Disambiguation => self.recorder.incr(metric::REPAIR, "disambiguation"),
            ReplyKind::Elicitation => self.recorder.incr(metric::REPAIR, "elicitation"),
            ReplyKind::Degraded => self.recorder.incr(metric::REPAIR, "degraded"),
            _ => {}
        }
        self.log.push(InteractionRecord {
            turn: self.ctx.turn,
            utterance: utterance.to_string(),
            intent,
            confidence,
            action,
            response: reply.text.clone(),
            feedback: None,
        });
        reply
    }
}

/// Stable counter label for a reply kind (the `reply_kind{...}` metric).
fn reply_kind_label(kind: ReplyKind) -> &'static str {
    match kind {
        ReplyKind::Management => "management",
        ReplyKind::Elicitation => "elicitation",
        ReplyKind::Fulfilment => "fulfilment",
        ReplyKind::Proposal => "proposal",
        ReplyKind::Disambiguation => "disambiguation",
        ReplyKind::Fallback => "fallback",
        ReplyKind::Closing => "closing",
        ReplyKind::Degraded => "degraded",
    }
}

/// The user-visible apology for each degradation cause. Every unrecovered
/// system fault funnels through one of these — never a panic, never a
/// silent empty answer.
fn degraded_text(cause: &str) -> &'static str {
    match cause {
        "kb" => {
            "I'm sorry — I couldn't reach the knowledge base just now. \
             Please try your question again in a moment."
        }
        "classifier" => {
            "I'm sorry — I'm having trouble understanding requests right now. \
             Please try again in a moment."
        }
        "annotator" => "I'm sorry — I had trouble reading that. Could you rephrase your question?",
        "nlq" => "I'm sorry — I couldn't build a query for that request.",
        _ => "I'm sorry — something went wrong on my side handling that request.",
    }
}

impl ConversationAgent {
    /// Finds the query intent grounded on a mentioned dependent concept.
    /// Among candidates (pattern focus or derived-from parent equals a
    /// mentioned concept), prefers the intent with the most required
    /// entities already available from the utterance and context, breaking
    /// ties toward fewer requirements.
    fn resolve_by_concepts(&self, recognized: &crate::nlu::RecognizedEntities) -> Option<IntentId> {
        if recognized.concepts.is_empty() {
            return None;
        }
        let available: Vec<ConceptId> = recognized
            .instances
            .iter()
            .map(|&(c, _)| c)
            .chain(self.ctx.entities.iter().map(|e| e.concept))
            .collect();
        let mut best: Option<(usize, usize, IntentId)> = None; // (satisfied, -required, id)
        for intent in self.space.intents.iter().filter(|i| i.is_query()) {
            let anchors = intent.patterns().iter().any(|p| {
                recognized.concepts.contains(&p.focus)
                    || p.derived_from.map(|d| recognized.concepts.contains(&d)).unwrap_or(false)
            });
            if !anchors {
                continue;
            }
            let satisfied =
                intent.required_entities.iter().filter(|c| available.contains(c)).count();
            let candidate = (satisfied, usize::MAX - intent.required_entities.len(), intent.id);
            if best.map(|b| candidate > (b.0, b.1, b.2)).unwrap_or(true) {
                best = Some(candidate);
            }
        }
        best.map(|(_, _, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_core::testutil::fig2_fixture;
    use obcs_core::{bootstrap, BootstrapConfig, SmeFeedback};

    fn agent() -> ConversationAgent {
        let (onto, kb, mapping) = fig2_fixture();
        let drug = onto.concept_id("Drug").unwrap();
        let sme = SmeFeedback::new().entity_only(drug);
        let space = bootstrap(&onto, &kb, &mapping, BootstrapConfig::default(), &sme);
        ConversationAgent::new(
            onto,
            kb,
            mapping,
            space,
            AgentConfig { name: "Micromedex".into(), intent_confidence_threshold: 0.3 },
        )
    }

    #[test]
    fn end_to_end_lookup() {
        let mut a = agent();
        let reply = a.respond("show me the precaution for Aspirin");
        assert_eq!(reply.kind, ReplyKind::Fulfilment, "reply: {reply:?}");
        assert!(reply.found_results);
        assert!(reply.text.contains("precaution info 0"), "text: {}", reply.text);
    }

    #[test]
    fn slot_filling_conversation() {
        let mut a = agent();
        let r1 = a.respond("show me the precaution");
        assert_eq!(r1.kind, ReplyKind::Elicitation);
        assert_eq!(r1.text, "For which drug?");
        let r2 = a.respond("Ibuprofen");
        assert_eq!(r2.kind, ReplyKind::Fulfilment, "reply: {r2:?}");
        assert!(r2.text.contains("precaution info 1"), "text: {}", r2.text);
    }

    #[test]
    fn incremental_modification() {
        let mut a = agent();
        a.respond("show me the precaution for Aspirin");
        let r = a.respond("how about Ibuprofen?");
        assert_eq!(r.kind, ReplyKind::Fulfilment);
        assert!(r.text.contains("precaution info 1"), "text: {}", r.text);
    }

    #[test]
    fn greeting_and_closing_management() {
        let mut a = agent();
        let r = a.respond("hello");
        assert_eq!(r.kind, ReplyKind::Management);
        assert!(r.text.contains("Micromedex"));
        let r = a.respond("goodbye");
        assert_eq!(r.kind, ReplyKind::Closing);
    }

    #[test]
    fn gibberish_falls_back_and_is_logged() {
        let mut a = agent();
        let r = a.respond("apfjhd");
        assert_eq!(r.kind, ReplyKind::Fallback);
        assert_eq!(a.log.len(), 1);
        a.feedback(Feedback::ThumbsDown);
        assert_eq!(a.log.success_rate(), Some(0.0));
    }

    #[test]
    fn entity_only_proposal_accept_flow() {
        let mut a = agent();
        let r = a.respond("Tazarotene");
        assert_eq!(r.kind, ReplyKind::Proposal, "reply: {r:?}");
        assert!(r.text.contains("Tazarotene"));
        let r = a.respond("yes");
        assert_eq!(r.kind, ReplyKind::Fulfilment);
        assert!(r.text.contains("info 2"), "text: {}", r.text);
    }

    #[test]
    fn union_intent_merges_sections() {
        let mut a = agent();
        let r = a.respond("show me the risk for Aspirin");
        assert_eq!(r.kind, ReplyKind::Fulfilment, "reply: {r:?}");
        assert!(r.text.contains("risk info 0"), "text: {}", r.text);
    }

    #[test]
    fn relationship_query_through_bridge() {
        let mut a = agent();
        let r = a.respond("what drug treats Fever?");
        assert_eq!(r.kind, ReplyKind::Fulfilment, "reply: {r:?}");
        assert!(r.text.contains("Aspirin"), "text: {}", r.text);
        assert!(r.text.contains("Ibuprofen"), "text: {}", r.text);
        assert!(!r.text.contains("Tazarotene"), "text: {}", r.text);
    }

    #[test]
    fn empty_results_say_so() {
        let mut a = agent();
        // Psoriasis is treated only by Tazarotene; ask for a drug that
        // doesn't treat anything recorded for an unknown indication value.
        let r = a.respond("what drug treats Psoriasis?");
        assert_eq!(r.kind, ReplyKind::Fulfilment);
        assert!(r.text.contains("Tazarotene"));
    }

    #[test]
    fn reset_clears_context_keeps_log() {
        let mut a = agent();
        a.respond("show me the precaution for Aspirin");
        a.reset();
        assert!(a.context().entities.is_empty());
        assert_eq!(a.log.len(), 1);
        // After reset, the same elicitation starts over.
        let r = a.respond("show me the precaution");
        assert_eq!(r.kind, ReplyKind::Elicitation);
    }

    #[test]
    fn retrain_with_improves_a_confused_phrasing() {
        let mut a = agent();
        // An idiosyncratic phrasing the generated training never produces.
        let utterance = "gimme the lowdown on hazards of Aspirin";
        // SME labels it; after retraining the classifier must route it to
        // the Risks intent.
        let unknown = a.retrain_with(&[
            (utterance.to_string(), "Risks of Drug".to_string()),
            ("lowdown on hazards of Ibuprofen".to_string(), "Risks of Drug".to_string()),
            ("the lowdown on hazards please".to_string(), "Risks of Drug".to_string()),
            ("x".to_string(), "No Such Intent".to_string()),
        ]);
        assert_eq!(unknown, vec!["No Such Intent".to_string()]);
        let r = a.respond(utterance);
        let risks = a.space().intent_by_name("Risks of Drug").unwrap().id;
        assert_eq!(r.intent, Some(risks), "reply: {r:?}");
        assert_eq!(r.kind, ReplyKind::Fulfilment);
    }

    #[test]
    fn forked_sessions_share_nlu_and_answer_independently() {
        let mut a = agent();
        a.respond("show me the precaution for Aspirin");
        let mut forks: Vec<ConversationAgent> = (0..2).map(|_| a.fork_session()).collect();
        // Forks share the trained NLU (same allocation)…
        assert!(Arc::ptr_eq(&a.shared_nlu(), &forks[0].shared_nlu()));
        // …but start with a fresh context and log.
        assert!(forks[0].context().entities.is_empty());
        assert_eq!(forks[0].log.len(), 0);
        // A fork answers exactly like a reset original would.
        let expected = {
            let mut fresh = a.fork_session();
            fresh.respond("what drug treats Fever?")
        };
        for f in &mut forks {
            assert_eq!(f.respond("what drug treats Fever?"), expected);
        }
        // The parent's session state was untouched by the forks.
        assert!(!a.context().entities.is_empty());
    }

    #[test]
    fn negative_utterances_surface_for_sme_review() {
        let mut a = agent();
        a.respond("apfjhd");
        a.feedback(Feedback::ThumbsDown);
        a.respond("what drug treats Fever");
        assert_eq!(a.negative_utterances(), vec!["apfjhd"]);
    }

    #[test]
    fn traced_turn_records_spans_and_counters() {
        use obcs_telemetry::CollectingRecorder;
        let mut a = agent();
        let rec = Arc::new(CollectingRecorder::ticks());
        a.set_recorder(rec.clone());
        a.respond("show me the precaution for Aspirin");
        a.respond("apfjhd");
        let report = rec.take_report();
        // Each turn opened one root span with the pipeline stages inside.
        assert_eq!(report.stages["turn"].count, 2);
        for stage in ["annotate", "classify", "dialogue_eval", "kb_execute", "nlg"] {
            assert!(report.stages.contains_key(stage), "missing stage {stage}");
        }
        let roots: Vec<_> = report.spans.iter().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 2);
        assert!(roots.iter().all(|s| s.stage == "turn"));
        // Usage counters: two turns, one fulfilment, one fallback repair.
        assert_eq!(report.counters[&("turns".into(), String::new())], 2);
        assert_eq!(report.counters[&("reply_kind".into(), "fulfilment".into())], 1);
        assert_eq!(report.counters[&("repair".into(), "fallback".into())], 1);
        assert_eq!(report.counters[&("kb_queries".into(), String::new())], 1);
        assert!(report.counters[&("kb_rows".into(), String::new())] >= 1);
        // Classifier confidence was observed for some intent.
        assert!(!report.ratios.is_empty());
        // The default recorder is inert: replacing it back loses nothing.
        a.set_recorder(Arc::new(obcs_telemetry::NoopRecorder));
        let r = a.respond("show me the precaution for Ibuprofen");
        assert_eq!(r.kind, ReplyKind::Fulfilment);
    }

    #[test]
    fn forked_sessions_inherit_the_recorder_handle() {
        use obcs_telemetry::CollectingRecorder;
        let mut a = agent();
        let rec = Arc::new(CollectingRecorder::ticks());
        a.set_recorder(rec.clone());
        let mut fork = a.fork_session();
        fork.respond("what drug treats Fever?");
        let report = rec.take_report();
        assert_eq!(report.counters[&("turns".into(), String::new())], 1);
    }

    #[test]
    fn ambiguous_disambiguation_reply_reprompts_with_subset() {
        let mut a = agent();
        let drug = a.onto.concept_id("Drug").unwrap();
        a.pending_disambiguation =
            vec![(drug, "Aspirin".into()), (drug, "Tazarotene".into()), (drug, "Ibuprofen".into())];
        // "a" is a substring of both Aspirin and Tazarotene: the old code
        // silently picked the first; now the engine narrows and re-prompts.
        let r = a.respond("a");
        assert_eq!(r.kind, ReplyKind::Disambiguation, "{r:?}");
        assert!(r.text.contains("Aspirin") && r.text.contains("Tazarotene"), "{}", r.text);
        assert!(!r.text.contains("Ibuprofen"), "narrowed out: {}", r.text);
        assert_eq!(a.pending_disambiguation.len(), 2);
        // A unique follow-up resolves the pick (entity-only → proposal).
        let r = a.respond("Aspirin");
        assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
        assert!(r.text.contains("Aspirin"), "{}", r.text);
        assert!(a.pending_disambiguation.is_empty());
    }

    #[test]
    fn unmatched_disambiguation_reply_repairs_then_gives_up() {
        let mut a = agent();
        let drug = a.onto.concept_id("Drug").unwrap();
        a.pending_disambiguation = vec![(drug, "Aspirin".into()), (drug, "Tazarotene".into())];
        // First miss: repair reply, candidates stay on the table.
        let r = a.respond("qqqxyz");
        assert_eq!(r.kind, ReplyKind::Disambiguation, "{r:?}");
        assert!(r.text.contains("Aspirin") && r.text.contains("Tazarotene"), "{}", r.text);
        assert_eq!(a.pending_disambiguation.len(), 2, "candidates kept one more turn");
        // The kept candidates still work on the retry.
        let r = a.respond("Tazarotene");
        assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
        assert!(r.text.contains("Tazarotene"), "{}", r.text);
    }

    #[test]
    fn second_unmatched_disambiguation_reply_falls_through() {
        let mut a = agent();
        let drug = a.onto.concept_id("Drug").unwrap();
        a.pending_disambiguation = vec![(drug, "Aspirin".into()), (drug, "Tazarotene".into())];
        let r = a.respond("qqqxyz");
        assert_eq!(r.kind, ReplyKind::Disambiguation);
        // Second miss: the engine gives up on the offer and processes the
        // utterance normally (gibberish → fallback).
        let r = a.respond("qqqxyz");
        assert_eq!(r.kind, ReplyKind::Fallback, "{r:?}");
        assert!(a.pending_disambiguation.is_empty());
    }

    #[test]
    fn topic_change_cancels_pending_disambiguation() {
        let mut a = agent();
        let drug = a.onto.concept_id("Drug").unwrap();
        a.pending_disambiguation = vec![(drug, "Aspirin".into()), (drug, "Tazarotene".into())];
        // Naming an entirely different entity abandons the offer.
        let r = a.respond("show me the precaution for Ibuprofen");
        assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
        assert!(r.text.contains("precaution info 1"), "{}", r.text);
        assert!(a.pending_disambiguation.is_empty());
    }

    #[test]
    fn persistent_kb_fault_degrades_with_counters() {
        use obcs_faults::{FaultPlan, PlannedFaults};
        use obcs_telemetry::CollectingRecorder;
        let mut a = agent();
        let rec = Arc::new(CollectingRecorder::ticks());
        a.set_recorder(rec.clone());
        // Every KB query fails, persistently (no transient recovery).
        let plan = FaultPlan { kb_failure: 1.0, transient_share: 0.0, ..FaultPlan::quiet(7) };
        a.set_fault_injector(Arc::new(PlannedFaults::new(plan)));
        let r = a.respond("show me the precaution for Aspirin");
        assert_eq!(r.kind, ReplyKind::Degraded, "{r:?}");
        assert!(!r.text.is_empty() && r.text.contains("knowledge base"), "{}", r.text);
        assert!(!r.found_results);
        let report = rec.take_report();
        assert_eq!(report.counters[&("fault".into(), "kb_failure".into())], 1);
        assert_eq!(report.counters[&("degraded".into(), "kb".into())], 1);
        assert_eq!(report.counters[&("repair".into(), "degraded".into())], 1);
        assert!(report.counters[&("retry".into(), "kb_execute".into())] >= 1);
        assert_eq!(a.log.records.last().map(|r| r.action), Some(LoggedAction::Degraded));
    }

    #[test]
    fn transient_kb_fault_recovers_via_retry() {
        use obcs_faults::{FaultPlan, PlannedFaults};
        use obcs_telemetry::CollectingRecorder;
        let mut a = agent();
        let rec = Arc::new(CollectingRecorder::ticks());
        a.set_recorder(rec.clone());
        // Every KB query faults once, then the retry succeeds.
        let plan = FaultPlan {
            kb_failure: 1.0,
            transient_share: 1.0,
            transient_attempts: 1,
            ..FaultPlan::quiet(7)
        };
        a.set_fault_injector(Arc::new(PlannedFaults::new(plan)));
        let r = a.respond("show me the precaution for Aspirin");
        assert_eq!(r.kind, ReplyKind::Fulfilment, "recovered turn answers normally: {r:?}");
        assert!(r.text.contains("precaution info 0"), "{}", r.text);
        let report = rec.take_report();
        assert_eq!(report.counters[&("fault".into(), "kb_failure".into())], 1);
        assert_eq!(report.counters[&("fault_recovered".into(), "kb_failure".into())], 1);
        assert!(!report.counters.contains_key(&("degraded".into(), "kb".into())));
    }

    #[test]
    fn classifier_collapse_degrades_before_fulfilment() {
        use obcs_faults::{FaultPlan, PlannedFaults};
        use obcs_telemetry::CollectingRecorder;
        let mut a = agent();
        let rec = Arc::new(CollectingRecorder::ticks());
        a.set_recorder(rec.clone());
        let plan =
            FaultPlan { classifier_collapse: 1.0, transient_share: 0.0, ..FaultPlan::quiet(7) };
        a.set_fault_injector(Arc::new(PlannedFaults::new(plan)));
        let r = a.respond("show me the precaution for Aspirin");
        assert_eq!(r.kind, ReplyKind::Degraded, "{r:?}");
        assert!(r.text.contains("understanding"), "{}", r.text);
        let report = rec.take_report();
        assert_eq!(report.counters[&("fault".into(), "classifier_collapse".into())], 1);
        assert_eq!(report.counters[&("degraded".into(), "classifier".into())], 1);
        // The turn degraded before any KB work.
        assert!(!report.counters.contains_key(&("kb_queries".into(), String::new())));
    }

    #[test]
    fn exhausted_turn_budget_degrades_deterministically() {
        use obcs_faults::{FaultPlan, PlannedFaults};
        let build = || {
            let mut a = agent();
            let plan = FaultPlan { kb_timeout: 1.0, transient_share: 0.0, ..FaultPlan::quiet(7) };
            a.set_fault_injector(Arc::new(PlannedFaults::new(plan)));
            a.set_resilience(obcs_faults::ResilienceConfig::chaos());
            a
        };
        let r1 = build().respond("show me the precaution for Aspirin");
        let r2 = build().respond("show me the precaution for Aspirin");
        assert_eq!(r1.kind, ReplyKind::Degraded, "{r1:?}");
        assert_eq!(r1, r2, "degradation under a tick budget is deterministic");
    }

    #[test]
    fn forks_inherit_injector_and_resilience() {
        use obcs_faults::{FaultPlan, PlannedFaults};
        let mut a = agent();
        let plan = FaultPlan { kb_failure: 1.0, transient_share: 0.0, ..FaultPlan::quiet(7) };
        a.set_fault_injector(Arc::new(PlannedFaults::new(plan)));
        let mut fork = a.fork_session();
        let r = fork.respond("show me the precaution for Aspirin");
        assert_eq!(r.kind, ReplyKind::Degraded, "{r:?}");
    }

    #[test]
    fn abort_forgets_the_last_response() {
        // Regression: `reset_topic` left `last_agent_response` (and
        // `last_terms`) populated, so "never mind" followed by a repeat
        // request replayed the aborted topic's answer.
        let mut a = agent();
        let r = a.respond("show me the precaution for Aspirin");
        assert!(r.text.contains("precaution info 0"), "{}", r.text);
        let r = a.respond("never mind");
        assert_eq!(r.kind, ReplyKind::Management, "{r:?}");
        let r = a.respond("can you repeat that?");
        assert!(
            !r.text.contains("precaution info 0"),
            "aborted topic's answer must not replay: {}",
            r.text
        );
        assert!(r.text.contains("haven't said anything"), "{}", r.text);
    }

    #[test]
    fn intent_switch_drops_stale_proposal() {
        // Regression: `set_intent` kept `proposal`/`rejected_proposals`
        // across an intent switch, so a "yes" long after the user moved
        // on fired the abandoned proposal.
        let mut a = agent();
        let r = a.respond("Tazarotene");
        assert_eq!(r.kind, ReplyKind::Proposal, "{r:?}");
        // The user ignores the offer and asks something concrete.
        let r = a.respond("show me the precaution for Aspirin");
        assert_eq!(r.kind, ReplyKind::Fulfilment, "{r:?}");
        // "yes" now has nothing on the table — it must not fulfil the
        // abandoned Tazarotene proposal.
        let r = a.respond("yes");
        assert_ne!(r.kind, ReplyKind::Fulfilment, "stale proposal fired: {r:?}");
        assert_eq!(r.kind, ReplyKind::Management, "{r:?}");
    }

    #[test]
    fn caching_is_invisible_to_replies_and_reports_stats() {
        use obcs_telemetry::CollectingRecorder;
        let mut cached = agent();
        let mut uncached = agent();
        uncached.set_caching(false);
        assert!(cached.caching_enabled() && !uncached.caching_enabled());
        let script = [
            "show me the precaution for Aspirin",
            "show me the precaution for Aspirin",
            "what drug treats Fever?",
            "show me the precaution for Aspirin",
        ];
        for u in script {
            assert_eq!(cached.respond(u), uncached.respond(u), "cache changed a reply for {u:?}");
        }
        let (kb, memo) = cached.cache_stats();
        assert!(kb.result.hits >= 1, "repeated query served from the result cache: {kb:?}");
        assert!(memo.classify.hits >= 1, "repeated utterance served from the memo: {memo:?}");
        let (kb, _) = uncached.cache_stats();
        assert_eq!(kb.result.lookups(), 0, "disabled caches see no traffic");

        let rec = CollectingRecorder::ticks();
        cached.record_cache_stats(&rec);
        let report = rec.take_report();
        for layer in ["kb_plan", "kb_result", "nlu_classify", "nlu_recognize"] {
            assert!(
                report.counters.contains_key(&("cache_hit".into(), layer.into())),
                "missing cache_hit counter for layer {layer}"
            );
        }
    }

    #[test]
    fn log_usage_statistics() {
        let mut a = agent();
        a.respond("show me the precaution for Aspirin");
        a.respond("show me the precaution for Ibuprofen");
        a.respond("what drug treats Fever");
        let usage = a.log.usage_by_intent();
        assert_eq!(usage[0].1, 2);
    }
}
