//! Interaction logging and user feedback capture — the raw material of the
//! paper's §7 evaluation (success rate per Equation 1).

use obcs_core::IntentId;
use serde::{Deserialize, Serialize};

/// Thumbs feedback on one interaction (paper Fig. 14: feedback buttons).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feedback {
    ThumbsUp,
    ThumbsDown,
}

/// How the agent replied (mirrors `AgentAction`, flattened for logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoggedAction {
    Management,
    Elicit,
    Fulfill,
    Propose,
    Disambiguate,
    Fallback,
    Close,
    /// An unrecovered system fault degraded the turn (DESIGN.md §11).
    Degraded,
}

/// One logged interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InteractionRecord {
    pub turn: usize,
    pub utterance: String,
    /// Detected domain intent (after thresholding), if any.
    pub intent: Option<IntentId>,
    pub confidence: Option<f64>,
    pub action: LoggedAction,
    pub response: String,
    pub feedback: Option<Feedback>,
}

/// The interaction log of one agent instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InteractionLog {
    pub records: Vec<InteractionRecord>,
}

impl InteractionLog {
    pub fn new() -> Self {
        InteractionLog::default()
    }

    pub fn push(&mut self, record: InteractionRecord) {
        self.records.push(record);
    }

    /// Attaches feedback to the most recent interaction.
    pub fn feedback_on_last(&mut self, feedback: Feedback) {
        if let Some(last) = self.records.last_mut() {
            last.feedback = Some(feedback);
        }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Success rate per the paper's Equation 1: interactions not marked
    /// negative over all interactions. Returns `None` for an empty log.
    pub fn success_rate(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let negative =
            self.records.iter().filter(|r| r.feedback == Some(Feedback::ThumbsDown)).count();
        Some((self.records.len() - negative) as f64 / self.records.len() as f64)
    }

    /// Success rate restricted to one intent.
    pub fn success_rate_for(&self, intent: IntentId) -> Option<f64> {
        let of_intent: Vec<&InteractionRecord> =
            self.records.iter().filter(|r| r.intent == Some(intent)).collect();
        if of_intent.is_empty() {
            return None;
        }
        let negative =
            of_intent.iter().filter(|r| r.feedback == Some(Feedback::ThumbsDown)).count();
        Some((of_intent.len() - negative) as f64 / of_intent.len() as f64)
    }

    /// Serialises the log as JSON Lines (one record per line) — the
    /// format the 7-month usage statistics of §7.2 are accumulated in.
    pub fn to_jsonl(&self) -> String {
        self.records
            .iter()
            .map(|r| serde_json::to_string(r).expect("record serialises"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Parses a JSON Lines log; blank lines are skipped, malformed lines
    /// are returned as errors with their line number.
    pub fn from_jsonl(text: &str) -> Result<Self, (usize, serde_json::Error)> {
        let mut log = InteractionLog::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = serde_json::from_str(line).map_err(|e| (i + 1, e))?;
            log.push(record);
        }
        Ok(log)
    }

    /// Appends another log's records (merging per-session logs into the
    /// long-running usage log).
    pub fn merge(&mut self, other: &InteractionLog) {
        self.records.extend(other.records.iter().cloned());
    }

    /// Interaction counts per intent, descending — the paper's usage
    /// statistics (Table 5 "Usage" column).
    pub fn usage_by_intent(&self) -> Vec<(IntentId, usize)> {
        let mut counts: Vec<(IntentId, usize)> = Vec::new();
        for r in &self.records {
            if let Some(i) = r.intent {
                match counts.iter_mut().find(|(id, _)| *id == i) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((i, 1)),
                }
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(turn: usize, intent: Option<u32>, fb: Option<Feedback>) -> InteractionRecord {
        InteractionRecord {
            turn,
            utterance: format!("u{turn}"),
            intent: intent.map(IntentId),
            confidence: Some(0.9),
            action: LoggedAction::Fulfill,
            response: "r".into(),
            feedback: fb,
        }
    }

    #[test]
    fn success_rate_equation_1() {
        let mut log = InteractionLog::new();
        for i in 0..10 {
            log.push(rec(i, Some(0), None));
        }
        log.push(rec(10, Some(0), Some(Feedback::ThumbsDown)));
        // 11 interactions, 1 negative → 10/11.
        assert!((log.success_rate().unwrap() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn thumbs_up_is_not_negative() {
        let mut log = InteractionLog::new();
        log.push(rec(0, Some(0), Some(Feedback::ThumbsUp)));
        assert_eq!(log.success_rate(), Some(1.0));
    }

    #[test]
    fn empty_log_has_no_rate() {
        assert_eq!(InteractionLog::new().success_rate(), None);
        assert_eq!(InteractionLog::new().success_rate_for(IntentId(0)), None);
    }

    #[test]
    fn per_intent_rates() {
        let mut log = InteractionLog::new();
        log.push(rec(0, Some(1), None));
        log.push(rec(1, Some(1), Some(Feedback::ThumbsDown)));
        log.push(rec(2, Some(2), None));
        assert_eq!(log.success_rate_for(IntentId(1)), Some(0.5));
        assert_eq!(log.success_rate_for(IntentId(2)), Some(1.0));
        assert_eq!(log.success_rate_for(IntentId(9)), None);
    }

    #[test]
    fn feedback_on_last_attaches() {
        let mut log = InteractionLog::new();
        log.push(rec(0, None, None));
        log.feedback_on_last(Feedback::ThumbsDown);
        assert_eq!(log.records[0].feedback, Some(Feedback::ThumbsDown));
    }

    #[test]
    fn jsonl_round_trip() {
        let mut log = InteractionLog::new();
        log.push(rec(0, Some(1), Some(Feedback::ThumbsDown)));
        log.push(rec(1, None, None));
        let text = log.to_jsonl();
        let back = InteractionLog::from_jsonl(&text).expect("parses");
        assert_eq!(back.records, log.records);
        // Blank lines tolerated; junk rejected with a line number.
        assert!(InteractionLog::from_jsonl("\n\n").unwrap().is_empty());
        let err = InteractionLog::from_jsonl("{}\nnot json").unwrap_err();
        assert_eq!(err.0, 1, "first line is already malformed: {:?}", err.1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = InteractionLog::new();
        a.push(rec(0, Some(1), None));
        let mut b = InteractionLog::new();
        b.push(rec(1, Some(2), Some(Feedback::ThumbsDown)));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.success_rate(), Some(0.5));
    }

    #[test]
    fn usage_sorted_descending() {
        let mut log = InteractionLog::new();
        for _ in 0..3 {
            log.push(rec(0, Some(5), None));
        }
        log.push(rec(0, Some(7), None));
        log.push(rec(0, None, None));
        let usage = log.usage_by_intent();
        assert_eq!(usage, vec![(IntentId(5), 3), (IntentId(7), 1)]);
    }
}
