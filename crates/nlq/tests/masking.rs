//! Tests for entity masking and lexicon number-variants — the features
//! the intent classifier's accuracy rests on.

use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use obcs_nlq::annotate::{Evidence, Lexicon};
use obcs_nlq::OntologyMapping;
use obcs_ontology::{Ontology, OntologyBuilder};
use proptest::prelude::*;

fn world() -> (Ontology, KnowledgeBase, OntologyMapping) {
    let onto = OntologyBuilder::new("m")
        .data("Drug", &["name"])
        .data("Condition", &["name"])
        .data("Precaution", &["description"])
        .relation("treats", "Drug", "Condition")
        .relation("has", "Drug", "Precaution")
        .build()
        .expect("ontology");
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("drug_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("drug_id"),
    )
    .expect("schema");
    kb.create_table(
        TableSchema::new("condition")
            .column("condition_id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("condition_id"),
    )
    .expect("schema");
    for (i, n) in ["Aspirin", "Calcium Carbonate"].iter().enumerate() {
        kb.insert("drug", vec![Value::Int(i as i64), Value::text(*n)]).expect("drug row");
    }
    kb.insert("condition", vec![Value::Int(0), Value::text("Fever")]).expect("condition row");
    let mapping = OntologyMapping::infer(&onto, &kb);
    (onto, kb, mapping)
}

#[test]
fn mask_replaces_instances_with_concept_placeholders() {
    let (onto, kb, mapping) = world();
    let lex = Lexicon::build(&onto, &kb, &mapping);
    assert_eq!(
        lex.mask("dosage of Aspirin for Fever", &onto),
        "dosage of entdrug for entcondition"
    );
    // Multi-word instances collapse to a single placeholder.
    assert_eq!(
        lex.mask("precautions for calcium carbonate", &onto),
        // "precautions" is the plural variant of the Precaution concept —
        // concept mentions are kept as-is, instances masked.
        "precautions for entdrug"
    );
}

#[test]
fn mask_of_entityless_text_is_normalisation_only() {
    let (onto, kb, mapping) = world();
    let lex = Lexicon::build(&onto, &kb, &mapping);
    assert_eq!(lex.mask("Hello, THERE!", &onto), "hello there");
    assert_eq!(lex.mask("", &onto), "");
}

#[test]
fn plural_variants_match_in_both_directions() {
    let (onto, kb, mapping) = world();
    let lex = Lexicon::build(&onto, &kb, &mapping);
    let prec = onto.concept_id("Precaution").unwrap();
    // Singular concept name matches a plural mention and vice versa.
    assert!(lex
        .annotate("precautions for aspirin")
        .iter()
        .any(|a| a.evidence == Evidence::Concept(prec)));
    assert!(lex
        .annotate("precaution for aspirin")
        .iter()
        .any(|a| a.evidence == Evidence::Concept(prec)));
}

#[test]
fn synonym_phrases_also_mask() {
    let (onto, kb, mapping) = world();
    let mut lex = Lexicon::build(&onto, &kb, &mapping);
    let drug = onto.concept_id("Drug").unwrap();
    lex.add_phrase("asa", Evidence::Instance { concept: drug, value: "Aspirin".into() });
    assert_eq!(lex.mask("dosage of asa", &onto), "dosage of entdrug");
}

proptest! {
    /// Masking never panics and its output contains no original instance
    /// values.
    #[test]
    fn mask_never_panics_and_removes_known_instances(text in "\\PC{0,50}") {
        let (onto, kb, mapping) = world();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let masked = lex.mask(&text, &onto);
        prop_assert!(!masked.to_lowercase().contains("aspirin"));
    }

    /// Annotation spans never overlap and stay within the token range.
    #[test]
    fn annotations_are_well_formed(text in "[a-zA-Z ]{0,60}") {
        let (onto, kb, mapping) = world();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate(&text);
        for w in anns.windows(2) {
            prop_assert!(w[0].end <= w[1].start || w[0].start == w[1].start,
                "overlap: {:?}", w);
        }
        for a in &anns {
            prop_assert!(a.start < a.end);
        }
    }
}
