//! Equivalence between the trie-based hot path and the naive scan oracles.
//!
//! `Lexicon::annotate` (interned-token trie) and `Lexicon::partial_matches`
//! (token inverted index) must return exactly what the original span-join
//! implementations (`annotate_scan`, `partial_matches_scan`) return, for any
//! lexicon and any utterance. The token alphabet is kept tiny (`[a-d]{1,3}`)
//! so phrases collide, overlap, and share prefixes aggressively.

use obcs_nlq::annotate::{Evidence, Lexicon};
use obcs_ontology::ConceptId;
use proptest::prelude::*;

fn build_lexicon(phrases: &[Vec<String>]) -> Lexicon {
    let mut lex = Lexicon::default();
    for (i, words) in phrases.iter().enumerate() {
        let phrase = words.join(" ");
        let concept = ConceptId(i as u32 % 3);
        // Alternate evidence kinds so both enum arms flow through the trie.
        let evidence = if i % 2 == 0 {
            Evidence::Concept(concept)
        } else {
            Evidence::Instance { concept, value: phrase.clone() }
        };
        lex.add_phrase(&phrase, evidence);
    }
    lex
}

proptest! {
    /// The trie walker finds the same leftmost-longest matches as the
    /// join-and-hash scan, span for span and evidence for evidence.
    #[test]
    fn trie_annotate_matches_scan_oracle(
        phrases in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,3}", 1..4),
            1..12,
        ),
        words in proptest::collection::vec("[a-d]{1,3}", 0..15),
    ) {
        let lex = build_lexicon(&phrases);
        let utterance = words.join(" ");
        prop_assert_eq!(lex.annotate(&utterance), lex.annotate_scan(&utterance));
    }

    /// Punctuation, casing, and camel-case splits go through the same
    /// normalisation on both paths.
    #[test]
    fn trie_annotate_matches_scan_on_messy_text(
        phrases in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,3}", 1..4),
            1..8,
        ),
        utterance in "[a-dA-D ,.?!0-9]{0,40}",
    ) {
        let lex = build_lexicon(&phrases);
        prop_assert_eq!(lex.annotate(&utterance), lex.annotate_scan(&utterance));
    }

    /// The inverted index returns the same completion set, in the same
    /// order, as the full phrase-table scan.
    #[test]
    fn indexed_partial_matches_match_scan_oracle(
        phrases in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,4}", 1..4),
            1..12,
        ),
        fragment in "[a-d]{1,7}( [a-d]{1,3})?",
    ) {
        let lex = build_lexicon(&phrases);
        prop_assert_eq!(lex.partial_matches(&fragment), lex.partial_matches_scan(&fragment));
    }
}
