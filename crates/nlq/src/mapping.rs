//! Ontology-to-schema mapping: how concepts, properties and relationships
//! of the domain ontology bind to tables, columns and joins of the KB.

use std::collections::HashMap;

use obcs_kb::schema::ColumnType;
use obcs_kb::KnowledgeBase;
use obcs_ontology::{ConceptId, ObjectPropertyId, Ontology};
use serde::{Deserialize, Serialize};

/// A single equi-join step: `left_table.left_column =
/// right_table.right_column`, where the right table is the one newly
/// brought into scope when traversing the step left-to-right.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEdge {
    pub left_table: String,
    pub left_column: String,
    pub right_table: String,
    pub right_column: String,
}

impl JoinEdge {
    /// The step traversed in the opposite direction.
    pub fn reversed(&self) -> JoinEdge {
        JoinEdge {
            left_table: self.right_table.clone(),
            left_column: self.right_column.clone(),
            right_table: self.left_table.clone(),
            right_column: self.left_column.clone(),
        }
    }
}

/// The physical realisation of one ontology object property: a sequence of
/// join steps from the property's source table to its target table. One
/// step for a plain foreign key; two steps when the relationship is
/// realised by an M:N bridge table (e.g. `drug —treats→ indication` via a
/// `treats(drug_id, indication_id)` table).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPath {
    pub steps: Vec<JoinEdge>,
}

impl JoinPath {
    pub fn direct(edge: JoinEdge) -> Self {
        JoinPath { steps: vec![edge] }
    }

    /// The path traversed target-to-source.
    pub fn reversed(&self) -> JoinPath {
        JoinPath { steps: self.steps.iter().rev().map(JoinEdge::reversed).collect() }
    }
}

/// The binding of a domain ontology to a physical schema.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OntologyMapping {
    /// Concept → table name.
    table_of: HashMap<ConceptId, String>,
    /// Concept → the text column instances are referred to by (e.g.
    /// `drug.name`).
    label_column: HashMap<ConceptId, String>,
    /// Object property → join realisation.
    join_of: HashMap<ObjectPropertyId, JoinPath>,
}

impl OntologyMapping {
    /// Infers the mapping by convention: concept `DrugFoodInteraction` ↔
    /// table `drug_food_interaction`; the label column is the first text
    /// column named `name`, else the first text column; each non-hierarchy
    /// object property binds to a foreign key between the two tables
    /// (looked up in either direction, preferring an FK column whose name
    /// resembles the relationship).
    ///
    /// Concepts without a matching table (abstract concepts such as union
    /// parents) are left unmapped and resolved through their members at
    /// query time.
    pub fn infer(onto: &Ontology, kb: &KnowledgeBase) -> Self {
        let mut m = OntologyMapping::default();
        for c in onto.concepts() {
            let table = snake_case(&c.name);
            if !kb.has_table(&table) {
                continue;
            }
            m.table_of.insert(c.id, table.clone());
            if let Some(col) = label_column(kb, &table) {
                m.label_column.insert(c.id, col);
            }
        }
        for op in onto.object_properties() {
            let (Some(src), Some(tgt)) = (m.table_of.get(&op.source), m.table_of.get(&op.target))
            else {
                continue;
            };
            // Hierarchical edges (isA/unionOf) are physically realised by
            // shared-primary-key joins (child PK = FK to parent PK), which
            // `find_join` discovers like any other FK.
            if let Some(edge) = find_join(kb, src, tgt, &op.name) {
                m.join_of.insert(op.id, edge);
            }
        }
        m
    }

    /// Overrides or sets the table for a concept.
    pub fn set_table(&mut self, concept: ConceptId, table: impl Into<String>) {
        self.table_of.insert(concept, table.into());
    }

    /// Overrides or sets the label column for a concept.
    pub fn set_label_column(&mut self, concept: ConceptId, column: impl Into<String>) {
        self.label_column.insert(concept, column.into());
    }

    /// Overrides or sets the join for an object property.
    pub fn set_join(&mut self, prop: ObjectPropertyId, path: JoinPath) {
        self.join_of.insert(prop, path);
    }

    pub fn table(&self, concept: ConceptId) -> Option<&str> {
        self.table_of.get(&concept).map(String::as_str)
    }

    pub fn label(&self, concept: ConceptId) -> Option<&str> {
        self.label_column.get(&concept).map(String::as_str)
    }

    pub fn join(&self, prop: ObjectPropertyId) -> Option<&JoinPath> {
        self.join_of.get(&prop)
    }

    /// Whether a concept's instances carry a proper *name* — a label
    /// column literally called `name`, `title`, or `label`. The paper's
    /// key concepts are entities users refer to by name; dependent
    /// concepts typically only have free-text descriptions.
    pub fn is_nameable(&self, concept: ConceptId) -> bool {
        matches!(self.label(concept), Some("name" | "title" | "label"))
    }

    /// Concepts that have both a table and a label column — i.e. whose
    /// instances can be referenced by name in utterances.
    pub fn nameable_concepts(&self) -> Vec<ConceptId> {
        let mut out: Vec<ConceptId> =
            self.table_of.keys().filter(|c| self.label_column.contains_key(c)).copied().collect();
        out.sort();
        out
    }
}

/// `DrugFoodInteraction` → `drug_food_interaction`.
pub fn snake_case(camel: &str) -> String {
    let mut out = String::with_capacity(camel.len() + 4);
    for ch in camel.chars() {
        if ch.is_uppercase() {
            if !out.is_empty() && !out.ends_with('_') {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
        } else if ch == ' ' {
            if !out.ends_with('_') {
                out.push('_');
            }
        } else {
            out.push(ch);
        }
    }
    out
}

fn label_column(kb: &KnowledgeBase, table: &str) -> Option<String> {
    let t = kb.table(table).ok()?;
    let mut first_text: Option<&str> = None;
    for col in &t.schema.columns {
        if col.ty == ColumnType::Text && !t.schema.is_foreign_key(&col.name) {
            if col.name == "name" {
                return Some(col.name.clone());
            }
            first_text.get_or_insert(&col.name);
        }
    }
    first_text.map(str::to_string)
}

/// How strongly an FK column name matches a (snake-cased) relationship
/// name: exact match (ignoring a trailing `_id`) ranks above the length of
/// the shared suffix, so `drug_class_id` wins `drug_id` for relationship
/// `drug_class` — and loses it for `drug`.
fn fk_affinity(column: &str, rel_snake: &str) -> (bool, usize) {
    let lower = column.to_lowercase();
    let base = lower.strip_suffix("_id").unwrap_or(&lower);
    let common_suffix =
        base.chars().rev().zip(rel_snake.chars().rev()).take_while(|(a, b)| a == b).count();
    (base == rel_snake, common_suffix)
}

fn find_join(kb: &KnowledgeBase, src: &str, tgt: &str, rel_name: &str) -> Option<JoinPath> {
    // A foreign key held by `from` that references `to`, as a join step
    // stated left-to-right from `to`'s perspective when needed.
    let fk_between = |from: &str, to: &str| -> Option<JoinEdge> {
        let t = kb.table(from).ok()?;
        let fks: Vec<_> =
            t.schema.foreign_keys.iter().filter(|fk| fk.references_table == to).collect();
        let chosen = if fks.len() > 1 {
            // Pick the FK whose column name best matches the relationship:
            // exact (modulo `_id`) beats longest common suffix beats
            // nothing, with a deterministic tie-break. A bare substring
            // test bound the wrong key when names overlap (`drug_id`
            // shadowing `drug_class_id` and vice versa).
            let rel_snake = snake_case(rel_name);
            fks.iter()
                .max_by(|a, b| {
                    fk_affinity(&a.column, &rel_snake)
                        .cmp(&fk_affinity(&b.column, &rel_snake))
                        // Prefer the shorter, then lexicographically
                        // smaller column name.
                        .then_with(|| b.column.len().cmp(&a.column.len()))
                        .then_with(|| b.column.cmp(&a.column))
                })
                .copied()
        } else {
            fks.first().copied()
        };
        chosen.map(|fk| JoinEdge {
            left_table: from.to_string(),
            left_column: fk.column.clone(),
            right_table: to.to_string(),
            right_column: fk.references_column.clone(),
        })
    };
    // Direct FK in either direction.
    if let Some(edge) = fk_between(tgt, src) {
        // tgt holds the FK: step goes src → tgt.
        return Some(JoinPath::direct(edge.reversed()));
    }
    if let Some(edge) = fk_between(src, tgt) {
        return Some(JoinPath::direct(edge));
    }
    // M:N bridge: a table named after the relationship (or `src_tgt`) with
    // FKs to both sides.
    let rel_snake = snake_case(rel_name);
    let candidates = [rel_snake.clone(), format!("{src}_{tgt}"), format!("{tgt}_{src}")];
    for bridge in candidates {
        if !kb.has_table(&bridge) || bridge == src || bridge == tgt {
            continue;
        }
        let (Some(to_src), Some(to_tgt)) = (fk_between(&bridge, src), fk_between(&bridge, tgt))
        else {
            continue;
        };
        return Some(JoinPath { steps: vec![to_src.reversed(), to_tgt] });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_kb::schema::TableSchema;
    use obcs_kb::Value;
    use obcs_ontology::OntologyBuilder;

    fn fixture() -> (Ontology, KnowledgeBase) {
        let onto = OntologyBuilder::new("m")
            .data("Drug", &["name", "brand"])
            .data("Precaution", &["description"])
            .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
            .relation("has", "Drug", "Precaution")
            .data("Indication", &["name"])
            .build()
            .unwrap();
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .column("brand", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        kb.create_table(
            TableSchema::new("indication")
                .column("indication_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("indication_id"),
        )
        .unwrap();
        kb.create_table(
            TableSchema::new("precaution")
                .column("prec_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("description", ColumnType::Text)
                .primary_key("prec_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .unwrap();
        kb.create_table(
            TableSchema::new("treats")
                .column("treats_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("indication_id", ColumnType::Int)
                .primary_key("treats_id")
                .foreign_key("drug_id", "drug", "drug_id")
                .foreign_key("indication_id", "indication", "indication_id"),
        )
        .unwrap();
        kb.insert("drug", vec![Value::Int(1), Value::text("Aspirin"), Value::text("Bayer")])
            .unwrap();
        (onto, kb)
    }

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake_case("Drug"), "drug");
        assert_eq!(snake_case("DrugFoodInteraction"), "drug_food_interaction");
        assert_eq!(snake_case("Black Box Warning"), "black_box_warning");
        assert_eq!(snake_case("already_snake"), "already_snake");
    }

    #[test]
    fn infer_tables_and_labels() {
        let (onto, kb) = fixture();
        let m = OntologyMapping::infer(&onto, &kb);
        let drug = onto.concept_id("Drug").unwrap();
        let prec = onto.concept_id("Precaution").unwrap();
        assert_eq!(m.table(drug), Some("drug"));
        assert_eq!(m.label(drug), Some("name"), "prefers `name` column");
        assert_eq!(m.label(prec), Some("description"), "falls back to first text column");
    }

    #[test]
    fn infer_join_from_child_fk() {
        let (onto, kb) = fixture();
        let m = OntologyMapping::infer(&onto, &kb);
        // Drug --has--> Precaution: FK lives in precaution table.
        let has = onto.object_properties().iter().find(|op| op.name == "has").unwrap();
        let path = m.join(has.id).unwrap();
        assert_eq!(path.steps.len(), 1);
        let edge = &path.steps[0];
        assert_eq!(edge.left_table, "drug");
        assert_eq!(edge.right_table, "precaution");
        assert_eq!(edge.right_column, "drug_id");
    }

    #[test]
    fn infer_join_through_bridge_table() {
        let (onto, kb) = fixture();
        let m = OntologyMapping::infer(&onto, &kb);
        // Drug --treats--> Indication realised by the `treats` bridge.
        let treats = onto.object_properties().iter().find(|op| op.name == "treats").unwrap();
        let path = m.join(treats.id).unwrap();
        assert_eq!(path.steps.len(), 2);
        assert_eq!(path.steps[0].left_table, "drug");
        assert_eq!(path.steps[0].right_table, "treats");
        assert_eq!(path.steps[1].left_table, "treats");
        assert_eq!(path.steps[1].right_table, "indication");
        // Reversal flips the walk.
        let rev = path.reversed();
        assert_eq!(rev.steps[0].left_table, "indication");
        assert_eq!(rev.steps[1].right_table, "drug");
    }

    #[test]
    fn overlapping_fk_names_bind_the_right_key() {
        // Two relationships into tables whose FK column names overlap as
        // substrings: `drug_id` vs `drug_class_id`. The old lowercase
        // `contains` chooser could bind `drug_class` through `drug_id`
        // (and vice versa) depending on declaration order.
        let onto = OntologyBuilder::new("m")
            .data("Prescription", &["note"])
            .data("Drug", &["name"])
            .data("DrugClass", &["name"])
            .relation("drug", "Prescription", "Drug")
            .relation("drug_class", "Prescription", "Drug")
            .build()
            .unwrap();
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        // Both FKs reference `drug` (the class is modelled as a
        // representative drug), so the chooser must disambiguate by name.
        kb.create_table(
            TableSchema::new("prescription")
                .column("prescription_id", ColumnType::Int)
                .column("drug_class_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("note", ColumnType::Text)
                .primary_key("prescription_id")
                .foreign_key("drug_class_id", "drug", "drug_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )
        .unwrap();
        let m = OntologyMapping::infer(&onto, &kb);
        let rel_drug = onto.object_properties().iter().find(|op| op.name == "drug").unwrap();
        let rel_class = onto.object_properties().iter().find(|op| op.name == "drug_class").unwrap();
        let drug_path = m.join(rel_drug.id).expect("drug relationship mapped");
        assert_eq!(
            drug_path.steps[0].left_column, "drug_id",
            "`drug` must not bind through drug_class_id: {drug_path:?}"
        );
        let class_path = m.join(rel_class.id).expect("drug_class relationship mapped");
        assert_eq!(
            class_path.steps[0].left_column, "drug_class_id",
            "`drug_class` must bind its exact column: {class_path:?}"
        );
    }

    #[test]
    fn fk_affinity_prefers_exact_then_suffix() {
        // Exact (modulo _id) beats everything.
        assert!(fk_affinity("drug_class_id", "drug_class") > fk_affinity("drug_id", "drug_class"));
        assert!(fk_affinity("drug_id", "drug") > fk_affinity("drug_class_id", "drug"));
        // Longest common suffix ranks next: `interacting_drug_id` shares
        // the `drug` suffix with relationship `drug`; `class_id` none.
        assert!(fk_affinity("interacting_drug_id", "drug") > fk_affinity("class_id", "drug"));
    }

    #[test]
    fn unmapped_concepts_skipped() {
        let (mut onto, kb) = fixture();
        // An abstract concept with no table.
        onto.add_concept("Risk").unwrap();
        let m = OntologyMapping::infer(&onto, &kb);
        let risk = onto.concept_id("Risk").unwrap();
        assert!(m.table(risk).is_none());
        assert!(!m.nameable_concepts().contains(&risk));
    }

    #[test]
    fn manual_overrides() {
        let (onto, kb) = fixture();
        let mut m = OntologyMapping::infer(&onto, &kb);
        let drug = onto.concept_id("Drug").unwrap();
        m.set_label_column(drug, "brand");
        assert_eq!(m.label(drug), Some("brand"));
    }

    #[test]
    fn nameable_concepts_sorted() {
        let (onto, kb) = fixture();
        let m = OntologyMapping::infer(&onto, &kb);
        let nameable = m.nameable_concepts();
        assert!(nameable.windows(2).all(|w| w[0] < w[1]));
        assert!(nameable.contains(&onto.concept_id("Drug").unwrap()));
    }
}
