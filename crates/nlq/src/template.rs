//! Parameterised structured query templates (paper §4.4, Fig. 9).
//!
//! A template is a SQL string containing `'<@Concept>'` parameter markers,
//! one per required entity. At runtime the dialogue layer instantiates the
//! template with the entities recognised in (or elicited from) the user's
//! utterances.

use std::fmt;

use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

/// A parameterised SQL query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    sql: String,
    /// The concepts whose instance values must be supplied, in marker
    /// order. Each entry carries the marker text used in the SQL.
    params: Vec<TemplateParam>,
}

/// One parameter of a template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateParam {
    pub concept: ConceptId,
    /// The marker as it appears in the SQL, e.g. `<@Drug>`.
    pub marker: String,
}

/// Errors instantiating a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// A required parameter was not supplied.
    MissingParam(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::MissingParam(m) => write!(f, "missing value for parameter `{m}`"),
        }
    }
}

impl std::error::Error for TemplateError {}

impl QueryTemplate {
    /// Creates a template from SQL containing `<@Concept>` markers for the
    /// given concepts.
    pub fn new(sql: String, param_concepts: Vec<ConceptId>, onto: &Ontology) -> Self {
        let params = param_concepts
            .into_iter()
            .map(|c| TemplateParam { concept: c, marker: format!("<@{}>", onto.concept_name(c)) })
            .collect();
        QueryTemplate { sql, params }
    }

    /// The template SQL with markers.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The required parameters (deduplicated, in order of first use).
    pub fn required_concepts(&self) -> Vec<ConceptId> {
        let mut out = Vec::new();
        for p in &self.params {
            if !out.contains(&p.concept) {
                out.push(p.concept);
            }
        }
        out
    }

    /// Instantiates the template: every marker is replaced by the supplied
    /// value for its concept (single-quote-escaped). All parameters must be
    /// supplied.
    pub fn instantiate(&self, values: &[(ConceptId, String)]) -> Result<String, TemplateError> {
        let mut sql = self.sql.clone();
        for p in &self.params {
            let value = values
                .iter()
                .find(|(c, _)| *c == p.concept)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| TemplateError::MissingParam(p.marker.clone()))?;
            // The marker sits inside single quotes in the SQL; escape the
            // value for that context.
            sql = sql.replace(&p.marker, &value.replace('\'', "''"));
        }
        Ok(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_ontology::OntologyBuilder;

    fn onto() -> Ontology {
        OntologyBuilder::new("t").concept("Drug").concept("Indication").build().unwrap()
    }

    #[test]
    fn instantiate_replaces_markers() {
        let o = onto();
        let drug = o.concept_id("Drug").unwrap();
        let tpl =
            QueryTemplate::new("SELECT x FROM t WHERE name = '<@Drug>'".into(), vec![drug], &o);
        let sql = tpl.instantiate(&[(drug, "Aspirin".into())]).unwrap();
        assert_eq!(sql, "SELECT x FROM t WHERE name = 'Aspirin'");
    }

    #[test]
    fn missing_param_errors() {
        let o = onto();
        let drug = o.concept_id("Drug").unwrap();
        let tpl = QueryTemplate::new("… '<@Drug>' …".into(), vec![drug], &o);
        assert!(matches!(tpl.instantiate(&[]), Err(TemplateError::MissingParam(_))));
    }

    #[test]
    fn values_are_escaped() {
        let o = onto();
        let drug = o.concept_id("Drug").unwrap();
        let tpl = QueryTemplate::new("name = '<@Drug>'".into(), vec![drug], &o);
        let sql = tpl.instantiate(&[(drug, "O'Neil".into())]).unwrap();
        assert_eq!(sql, "name = 'O''Neil'");
    }

    #[test]
    fn multiple_params_and_dedup() {
        let o = onto();
        let drug = o.concept_id("Drug").unwrap();
        let ind = o.concept_id("Indication").unwrap();
        let tpl = QueryTemplate::new(
            "a = '<@Drug>' AND b = '<@Indication>' AND c = '<@Drug>'".into(),
            vec![drug, ind, drug],
            &o,
        );
        assert_eq!(tpl.required_concepts(), vec![drug, ind]);
        let sql = tpl.instantiate(&[(drug, "X".into()), (ind, "Y".into())]).unwrap();
        assert_eq!(sql, "a = 'X' AND b = 'Y' AND c = 'X'");
    }

    #[test]
    fn serde_roundtrip() {
        let o = onto();
        let drug = o.concept_id("Drug").unwrap();
        let tpl = QueryTemplate::new("x = '<@Drug>'".into(), vec![drug], &o);
        let tpl2: QueryTemplate =
            serde_json::from_str(&serde_json::to_string(&tpl).unwrap()).unwrap();
        assert_eq!(tpl, tpl2);
    }
}
