//! Interpretation of an annotated utterance into a structured query over
//! the ontology, and rendering of that query as SQL.
//!
//! The heuristic mirrors how the paper's intents are shaped (§4.2.1): the
//! first concept mentioned is the *requested* information (the focus);
//! instance mentions become filter conditions on their concept's label
//! column; the join tree is the union of shortest relationship paths from
//! the focus to every filter concept.

use std::fmt;

use obcs_kb::value::sql_quote;
use obcs_kb::KnowledgeBase;
use obcs_ontology::graph::{shortest_path, EdgeFilter, Path};
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::annotate::{Evidence, Lexicon};
use crate::mapping::OntologyMapping;
use crate::template::QueryTemplate;

/// Errors from interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NlqError {
    /// Nothing in the utterance matched the ontology or KB.
    NoEvidence,
    /// The focus concept has no table (abstract concept such as a union
    /// parent); interpret the augmented member patterns instead.
    UnmappedConcept(String),
    /// No relationship path connects the focus to a filter concept.
    Disconnected { from: String, to: String },
    /// An object property on the join path has no join columns.
    UnmappedRelationship(String),
}

impl fmt::Display for NlqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlqError::NoEvidence => f.write_str("utterance contains no recognisable evidence"),
            NlqError::UnmappedConcept(c) => {
                write!(f, "concept `{c}` is not mapped to a table")
            }
            NlqError::Disconnected { from, to } => {
                write!(f, "no relationship path from `{from}` to `{to}`")
            }
            NlqError::UnmappedRelationship(r) => {
                write!(f, "relationship `{r}` has no join mapping")
            }
        }
    }
}

impl std::error::Error for NlqError {}

/// A filter condition: `concept.column = value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    pub concept: ConceptId,
    pub column: String,
    pub value: String,
}

/// A structured interpretation of an utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpretedQuery {
    /// The concept whose information is requested.
    pub focus: ConceptId,
    /// Join paths from the focus to each filter concept (deduplicated
    /// hops are handled at SQL generation).
    pub paths: Vec<Path>,
    pub filters: Vec<Filter>,
}

/// Interprets an utterance over the ontology using a prebuilt lexicon.
pub fn interpret(
    utterance: &str,
    onto: &Ontology,
    lexicon: &Lexicon,
    mapping: &OntologyMapping,
) -> Result<InterpretedQuery, NlqError> {
    let annotations = lexicon.annotate(utterance);
    if annotations.is_empty() {
        return Err(NlqError::NoEvidence);
    }
    // Focus: the first pure concept mention; fallback: concept of the first
    // instance mention.
    let mut focus: Option<ConceptId> = None;
    let mut filters: Vec<Filter> = Vec::new();
    for ann in &annotations {
        match &ann.evidence {
            Evidence::Concept(c) => {
                if focus.is_none() {
                    focus = Some(*c);
                }
            }
            Evidence::Instance { concept, value } => {
                let column = mapping
                    .label(*concept)
                    .ok_or_else(|| {
                        NlqError::UnmappedConcept(onto.concept_name(*concept).to_string())
                    })?
                    .to_string();
                filters.push(Filter { concept: *concept, column, value: value.clone() });
            }
        }
    }
    let focus = focus
        .or_else(|| filters.first().map(|f| f.concept))
        .expect("annotations non-empty implies focus or filter");
    build_query(onto, mapping, focus, &filters)
}

/// Like [`fn@interpret`], recording an
/// [`nlq_interpret`](obcs_telemetry::stage::NLQ_INTERPRET) span on `rec`
/// (see DESIGN.md §10).
pub fn interpret_traced(
    utterance: &str,
    onto: &Ontology,
    lexicon: &Lexicon,
    mapping: &OntologyMapping,
    rec: &dyn obcs_telemetry::Recorder,
) -> Result<InterpretedQuery, NlqError> {
    let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::NLQ_INTERPRET);
    interpret(utterance, onto, lexicon, mapping)
}

/// Builds an interpreted query directly from a focus concept and filters
/// (used by the bootstrapper, which knows the pattern structure).
pub fn build_query(
    onto: &Ontology,
    mapping: &OntologyMapping,
    focus: ConceptId,
    filters: &[Filter],
) -> Result<InterpretedQuery, NlqError> {
    if mapping.table(focus).is_none() {
        return Err(NlqError::UnmappedConcept(onto.concept_name(focus).to_string()));
    }
    let mut paths = Vec::new();
    for f in filters {
        if f.concept == focus {
            continue;
        }
        // All edges admitted: hierarchy edges let union/isA members reach
        // their key concept through the parent's table (PK-sharing join).
        let path = shortest_path(onto, focus, f.concept, EdgeFilter::All).ok_or_else(|| {
            NlqError::Disconnected {
                from: onto.concept_name(focus).to_string(),
                to: onto.concept_name(f.concept).to_string(),
            }
        })?;
        paths.push(path);
    }
    Ok(InterpretedQuery { focus, paths, filters: filters.to_vec() })
}

impl InterpretedQuery {
    /// Renders the query as executable SQL.
    pub fn to_sql(
        &self,
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
    ) -> Result<String, NlqError> {
        self.render(onto, kb, mapping, |f| sql_quote(&f.value))
    }

    /// Renders a parameterised template: each filter value becomes a
    /// `'<@Concept>'` marker (Fig. 9).
    pub fn to_template(
        &self,
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
    ) -> Result<QueryTemplate, NlqError> {
        let sql =
            self.render(onto, kb, mapping, |f| format!("'<@{}>'", onto.concept_name(f.concept)))?;
        let params: Vec<ConceptId> = self.filters.iter().map(|f| f.concept).collect();
        Ok(QueryTemplate::new(sql, params, onto))
    }

    fn render(
        &self,
        onto: &Ontology,
        kb: &KnowledgeBase,
        mapping: &OntologyMapping,
        literal: impl Fn(&Filter) -> String,
    ) -> Result<String, NlqError> {
        let focus_table = mapping
            .table(self.focus)
            .ok_or_else(|| NlqError::UnmappedConcept(onto.concept_name(self.focus).to_string()))?;

        // Assign one alias per concept appearing in the query, in
        // deterministic first-use order.
        let mut aliased: Vec<(ConceptId, String, String)> = Vec::new(); // (concept, table, alias)
        let mut ensure_alias =
            |concept: ConceptId, mapping: &OntologyMapping| -> Result<String, NlqError> {
                if let Some((_, _, a)) = aliased.iter().find(|(c, _, _)| *c == concept) {
                    return Ok(a.clone());
                }
                let table = mapping.table(concept).ok_or_else(|| {
                    NlqError::UnmappedConcept(onto.concept_name(concept).to_string())
                })?;
                let alias = format!("o{}", onto.concept_name(concept));
                aliased.push((concept, table.to_string(), alias.clone()));
                Ok(alias)
            };
        ensure_alias(self.focus, mapping)?;

        // Collect join clauses by walking each path; deduplicate edges.
        let mut join_clauses: Vec<String> = Vec::new();
        let mut seen_edges: Vec<(ConceptId, ConceptId, u32)> = Vec::new();
        let mut bridge_counter = 0usize;
        for path in &self.paths {
            let mut current = path.start;
            for hop in &path.hops {
                let op = onto.object_property(hop.property);
                let next = if hop.forward { op.target } else { op.source };
                let key = (current.min(next), current.max(next), op.id.0);
                if !seen_edges.contains(&key) {
                    seen_edges.push(key);
                    let join_path = mapping
                        .join(op.id)
                        .ok_or_else(|| NlqError::UnmappedRelationship(op.name.clone()))?;
                    // Orient the physical steps along the traversal
                    // direction of this hop.
                    let oriented =
                        if hop.forward { join_path.clone() } else { join_path.reversed() };
                    let mut left_alias = ensure_alias(current, mapping)?;
                    let n_steps = oriented.steps.len();
                    for (si, step) in oriented.steps.iter().enumerate() {
                        let right_alias = if si + 1 == n_steps {
                            ensure_alias(next, mapping)?
                        } else {
                            // Bridge tables get fresh aliases.
                            bridge_counter += 1;
                            format!("b{bridge_counter}")
                        };
                        join_clauses.push(format!(
                            "INNER JOIN {} {} ON {}.{} = {}.{}",
                            step.right_table,
                            right_alias,
                            left_alias,
                            step.left_column,
                            right_alias,
                            step.right_column
                        ));
                        left_alias = right_alias;
                    }
                }
                current = next;
            }
        }

        // Projection: the focus concept's descriptive columns — its data
        // properties that exist as physical columns, else all columns.
        let focus_alias = ensure_alias(self.focus, mapping)?;
        let table = kb
            .table(focus_table)
            .map_err(|_| NlqError::UnmappedConcept(onto.concept_name(self.focus).to_string()))?;
        // A nameable focus (Drug, Condition) answers with its names — the
        // paper's treatment responses list drug names, not full records.
        let mut proj: Vec<String> = if let Some(label) =
            mapping.label(self.focus).filter(|_| mapping.is_nameable(self.focus))
        {
            vec![format!("{focus_alias}.{label}")]
        } else {
            onto.data_properties_of(self.focus)
                .filter(|dp| table.schema.column_index(&dp.name).is_some())
                .map(|dp| format!("{focus_alias}.{}", dp.name))
                .collect()
        };
        if proj.is_empty() {
            // Fall back to every descriptive (non-key) column of the table.
            proj.extend(
                table
                    .schema
                    .columns
                    .iter()
                    .filter(|c| {
                        table.schema.primary_key.as_deref() != Some(c.name.as_str())
                            && !table.schema.is_foreign_key(&c.name)
                    })
                    .map(|c| format!("{focus_alias}.{}", c.name)),
            );
        }
        if proj.is_empty() {
            // Degenerate table of nothing but keys: project the PK.
            proj.extend(table.schema.columns.iter().map(|c| format!("{focus_alias}.{}", c.name)));
        }

        // WHERE clause.
        let mut conditions: Vec<String> = Vec::new();
        for f in &self.filters {
            let alias = ensure_alias(f.concept, mapping)?;
            conditions.push(format!("{alias}.{} = {}", f.column, literal(f)));
        }

        let mut sql =
            format!("SELECT DISTINCT {} FROM {} {}", proj.join(", "), focus_table, focus_alias);
        for j in &join_clauses {
            sql.push(' ');
            sql.push_str(j);
        }
        if !conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conditions.join(" AND "));
        }
        Ok(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_kb::schema::{ColumnType, TableSchema};
    use obcs_kb::Value;
    use obcs_ontology::OntologyBuilder;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    /// Drug(name) --has--> Precaution(description); Drug --treats--> Indication(name);
    /// Drug --has--> Dosage(amount) --for--> Indication.
    fn fixture(
    ) -> Result<(Ontology, KnowledgeBase, OntologyMapping, Lexicon), Box<dyn std::error::Error>>
    {
        let onto = OntologyBuilder::new("m")
            .data("Drug", &["name"])
            .data("Precaution", &["description"])
            .data("Indication", &["name"])
            .data("Dosage", &["amount"])
            .relation("hasPrecaution", "Drug", "Precaution")
            .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
            .relation("hasDosage", "Drug", "Dosage")
            .relation("dosageFor", "Dosage", "Indication")
            .build()?;
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )?;
        kb.create_table(
            TableSchema::new("indication")
                .column("indication_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("indication_id"),
        )?;
        kb.create_table(
            TableSchema::new("precaution")
                .column("prec_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("description", ColumnType::Text)
                .primary_key("prec_id")
                .foreign_key("drug_id", "drug", "drug_id"),
        )?;
        kb.create_table(
            TableSchema::new("treats")
                .column("treats_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("indication_id", ColumnType::Int)
                .primary_key("treats_id")
                .foreign_key("drug_id", "drug", "drug_id")
                .foreign_key("indication_id", "indication", "indication_id"),
        )?;
        kb.create_table(
            TableSchema::new("dosage")
                .column("dosage_id", ColumnType::Int)
                .column("drug_id", ColumnType::Int)
                .column("indication_id", ColumnType::Int)
                .column("amount", ColumnType::Text)
                .primary_key("dosage_id")
                .foreign_key("drug_id", "drug", "drug_id")
                .foreign_key("indication_id", "indication", "indication_id"),
        )?;
        // Instances.
        for (i, n) in ["Aspirin", "Ibuprofen"].iter().enumerate() {
            kb.insert("drug", vec![Value::Int(i as i64), Value::text(*n)])?;
        }
        for (i, n) in ["Fever", "Psoriasis"].iter().enumerate() {
            kb.insert("indication", vec![Value::Int(i as i64), Value::text(*n)])?;
        }
        kb.insert("precaution", vec![Value::Int(0), Value::Int(0), Value::text("bleeding risk")])?;
        kb.insert("treats", vec![Value::Int(0), Value::Int(0), Value::Int(0)])?;
        kb.insert(
            "dosage",
            vec![Value::Int(0), Value::Int(0), Value::Int(0), Value::text("500mg")],
        )?;
        let mapping = OntologyMapping::infer(&onto, &kb);
        let lexicon = Lexicon::build(&onto, &kb, &mapping);
        Ok((onto, kb, mapping, lexicon))
    }

    #[test]
    fn lookup_query_interprets_and_executes() -> TestResult {
        let (onto, kb, mapping, lex) = fixture()?;
        let q = interpret("show me the precaution for aspirin", &onto, &lex, &mapping)?;
        assert_eq!(q.focus, onto.concept_id("Precaution")?);
        assert_eq!(q.filters.len(), 1);
        let sql = q.to_sql(&onto, &kb, &mapping)?;
        assert!(sql.contains("INNER JOIN drug oDrug"), "sql: {sql}");
        assert!(sql.contains("oDrug.name = 'Aspirin'"), "sql: {sql}");
        let rs = kb.query(&sql)?;
        assert_eq!(rs.rows[0][0], Value::text("bleeding risk"));
        Ok(())
    }

    #[test]
    fn instance_only_utterance_focuses_its_concept() -> TestResult {
        let (onto, kb, mapping, lex) = fixture()?;
        let q = interpret("aspirin", &onto, &lex, &mapping)?;
        assert_eq!(q.focus, onto.concept_id("Drug")?);
        let sql = q.to_sql(&onto, &kb, &mapping)?;
        let rs = kb.query(&sql)?;
        assert_eq!(rs.rows, vec![vec![Value::text("Aspirin")]]);
        Ok(())
    }

    #[test]
    fn no_evidence_errors() -> TestResult {
        let (onto, _, mapping, lex) = fixture()?;
        assert_eq!(
            interpret("hello world", &onto, &lex, &mapping).unwrap_err(),
            NlqError::NoEvidence
        );
        Ok(())
    }

    #[test]
    fn two_hop_path_generates_two_joins() -> TestResult {
        let (onto, kb, mapping, _) = fixture()?;
        // Dosage of Aspirin for Fever: focus Dosage, filters Drug + Indication.
        let drug = onto.concept_id("Drug")?;
        let ind = onto.concept_id("Indication")?;
        let dosage = onto.concept_id("Dosage")?;
        let q = build_query(
            &onto,
            &mapping,
            dosage,
            &[
                Filter { concept: drug, column: "name".into(), value: "Aspirin".into() },
                Filter { concept: ind, column: "name".into(), value: "Fever".into() },
            ],
        )?;
        let sql = q.to_sql(&onto, &kb, &mapping)?;
        let rs = kb.query(&sql)?;
        assert_eq!(rs.rows, vec![vec![Value::text("500mg")]]);
        Ok(())
    }

    #[test]
    fn template_has_markers_and_instantiates() -> TestResult {
        let (onto, kb, mapping, lex) = fixture()?;
        let q = interpret("precaution for aspirin", &onto, &lex, &mapping)?;
        let tpl = q.to_template(&onto, &kb, &mapping)?;
        assert!(tpl.sql().contains("'<@Drug>'"), "template: {}", tpl.sql());
        let sql = tpl.instantiate(&[(onto.concept_id("Drug")?, "Aspirin".to_string())])?;
        let rs = kb.query(&sql)?;
        assert_eq!(rs.rows.len(), 1);
        Ok(())
    }

    #[test]
    fn unmapped_focus_errors() -> TestResult {
        let (mut onto, kb, mapping, _) = fixture()?;
        let ghost = onto.add_concept("Ghost")?;
        let err = build_query(&onto, &mapping, ghost, &[]).unwrap_err();
        assert!(matches!(err, NlqError::UnmappedConcept(_)));
        let _ = kb;
        Ok(())
    }

    #[test]
    fn disconnected_filter_errors() -> TestResult {
        let (mut onto, kb, mapping, _) = fixture()?;
        let island = onto.add_concept("Island")?;
        onto.add_data_property(island, "name")?;
        let drug = onto.concept_id("Drug")?;
        // Need island mapped to err on path, not mapping — give it a table.
        let mut mapping = mapping;
        let mut kb = kb;
        kb.create_table(
            TableSchema::new("island")
                .column("island_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("island_id"),
        )?;
        mapping.set_table(island, "island");
        mapping.set_label_column(island, "name");
        let err = build_query(
            &onto,
            &mapping,
            island,
            &[Filter { concept: drug, column: "name".into(), value: "Aspirin".into() }],
        )
        .unwrap_err();
        assert!(matches!(err, NlqError::Disconnected { .. }));
        Ok(())
    }

    #[test]
    fn filter_on_focus_needs_no_join() -> TestResult {
        let (onto, kb, mapping, _) = fixture()?;
        let drug = onto.concept_id("Drug")?;
        let q = build_query(
            &onto,
            &mapping,
            drug,
            &[Filter { concept: drug, column: "name".into(), value: "Ibuprofen".into() }],
        )?;
        let sql = q.to_sql(&onto, &kb, &mapping)?;
        assert!(!sql.contains("JOIN"), "sql: {sql}");
        let rs = kb.query(&sql)?;
        assert_eq!(rs.rows, vec![vec![Value::text("Ibuprofen")]]);
        Ok(())
    }

    #[test]
    fn quotes_in_values_are_escaped() -> TestResult {
        let (onto, kb, mapping, _) = fixture()?;
        let drug = onto.concept_id("Drug")?;
        let q = build_query(
            &onto,
            &mapping,
            drug,
            &[Filter { concept: drug, column: "name".into(), value: "O'Neil".into() }],
        )?;
        let sql = q.to_sql(&onto, &kb, &mapping)?;
        assert!(sql.contains("'O''Neil'"));
        // Parses and executes (empty result).
        assert!(kb.query(&sql)?.rows.is_empty());
        Ok(())
    }
}
