//! Evidence annotation: locating mentions of ontology concepts, data
//! properties, and KB instance values inside an utterance.
//!
//! This is the first stage of the Athena-style interpretation pipeline: the
//! utterance is scanned for the longest token spans that match (a) concept
//! names and their registered synonyms, (b) data property names, and (c)
//! instance values from the label columns of nameable concepts.
//!
//! ## Hot-path layout
//!
//! Annotation runs on every utterance of every simulated user, so the
//! lexicon is stored as an interned-token trie rather than a phrase map:
//! tokens are interned to dense `u32` ids once at build time, and
//! [`Lexicon::annotate`] walks the trie left to right over the utterance's
//! token-id sequence. Matching a span costs a few binary searches over
//! sorted edge lists — no per-span `String` joins, no hashing of candidate
//! phrases. Partial-entity matching is served by a token-level inverted
//! index (token id → phrases containing it) instead of a scan over the
//! whole vocabulary. The original span-join implementation is kept as
//! [`Lexicon::annotate_scan`], the equivalence oracle for tests and the
//! "before" side of the tracked perf baseline.

use std::collections::HashMap;

use obcs_kb::KnowledgeBase;
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::mapping::OntologyMapping;

/// What an annotated span refers to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Evidence {
    /// A mention of the concept itself ("precautions", "drug").
    Concept(ConceptId),
    /// A mention of an instance of the concept ("Aspirin" → Drug).
    Instance { concept: ConceptId, value: String },
}

/// An annotated token span `[start, end)` over the utterance's tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    pub start: usize,
    pub end: usize,
    pub evidence: Evidence,
}

/// One registered phrase: its normalised text and every evidence it may
/// refer to.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Phrase {
    text: String,
    evidences: Vec<Evidence>,
}

/// A trie node; edges are token ids, kept sorted for binary search.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct TrieNode {
    /// Sorted `(token id, child node index)` edges.
    children: Vec<(u32, u32)>,
    /// Phrase ending at this node, if any.
    phrase: Option<u32>,
}

/// A lexicon mapping normalised phrases to evidence, built once per
/// conversation space and reused for every utterance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lexicon {
    /// Interned token text → dense token id.
    token_ids: HashMap<String, u32>,
    /// Token id → token text (the interner's inverse), scanned by
    /// substring during partial matching.
    tokens: Vec<String>,
    /// Normalised phrase → phrase id (exact lookups).
    phrase_ids: HashMap<String, u32>,
    phrases: Vec<Phrase>,
    /// Inverted index: token id → sorted phrase ids containing the token.
    occurrences: Vec<Vec<u32>>,
    /// Trie over token-id paths; `nodes[0]` is the root.
    nodes: Vec<TrieNode>,
    /// Longest phrase length in tokens (bounds the span search).
    max_tokens: usize,
}

impl Default for Lexicon {
    fn default() -> Self {
        Lexicon {
            token_ids: HashMap::new(),
            tokens: Vec::new(),
            phrase_ids: HashMap::new(),
            phrases: Vec::new(),
            occurrences: Vec::new(),
            nodes: vec![TrieNode::default()],
            max_tokens: 0,
        }
    }
}

impl Lexicon {
    /// Builds the lexicon from concept names and instance values.
    pub fn build(onto: &Ontology, kb: &KnowledgeBase, mapping: &OntologyMapping) -> Self {
        let mut lex = Lexicon::default();
        for c in onto.concepts() {
            lex.add_phrase(&split_camel(&c.name), Evidence::Concept(c.id));
        }
        for concept in mapping.nameable_concepts() {
            // Only concepts whose instances carry proper names contribute
            // instance values — free-text description columns of dependent
            // concepts would pollute the vocabulary.
            if !mapping.is_nameable(concept) {
                continue;
            }
            let (Some(table), Some(label)) = (mapping.table(concept), mapping.label(concept))
            else {
                continue;
            };
            if let Ok(values) = kb.distinct_values(table, label) {
                for v in values {
                    if let Some(s) = v.as_text() {
                        lex.add_phrase(s, Evidence::Instance { concept, value: s.to_string() });
                    }
                }
            }
        }
        lex
    }

    /// Registers an additional phrase (synonyms, abbreviations), together
    /// with a naive plural/singular variant of its last word so "show me
    /// the precautions" matches the `Precaution` concept.
    pub fn add_phrase(&mut self, phrase: &str, evidence: Evidence) {
        let norm = normalize(phrase);
        if norm.is_empty() {
            return;
        }
        for variant in number_variants(&norm) {
            let tok_ids: Vec<u32> = variant.split(' ').map(|t| self.intern(t)).collect();
            self.max_tokens = self.max_tokens.max(tok_ids.len());
            let node = self.trie_insert(&tok_ids);
            let pid = match self.nodes[node].phrase {
                Some(pid) => pid,
                None => {
                    let pid = self.phrases.len() as u32;
                    self.phrases.push(Phrase { text: variant.clone(), evidences: Vec::new() });
                    self.phrase_ids.insert(variant, pid);
                    self.nodes[node].phrase = Some(pid);
                    for &t in &tok_ids {
                        let occ = &mut self.occurrences[t as usize];
                        if occ.last() != Some(&pid) {
                            occ.push(pid);
                        }
                    }
                    pid
                }
            };
            let evs = &mut self.phrases[pid as usize].evidences;
            if !evs.contains(&evidence) {
                evs.push(evidence.clone());
            }
        }
    }

    /// Interns a token, returning its dense id.
    fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_ids.get(token) {
            return id;
        }
        let id = self.tokens.len() as u32;
        self.token_ids.insert(token.to_string(), id);
        self.tokens.push(token.to_string());
        self.occurrences.push(Vec::new());
        id
    }

    /// Walks/extends the trie along a token-id path, returning the final
    /// node index.
    fn trie_insert(&mut self, tok_ids: &[u32]) -> usize {
        let mut node = 0usize;
        for &t in tok_ids {
            node = match self.nodes[node].children.binary_search_by_key(&t, |e| e.0) {
                Ok(i) => self.nodes[node].children[i].1 as usize,
                Err(i) => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children.insert(i, (t, child));
                    child as usize
                }
            };
        }
        node
    }

    /// All evidences for a normalised phrase.
    pub fn lookup(&self, phrase: &str) -> &[Evidence] {
        self.phrase_ids
            .get(&normalize(phrase))
            .map(|&pid| self.phrases[pid as usize].evidences.as_slice())
            .unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// The utterance's tokens mapped to interned ids (`None` for tokens
    /// the lexicon has never seen — no phrase can cross them).
    fn token_id_seq(&self, text: &str) -> Vec<Option<u32>> {
        let mut ids = Vec::new();
        let mut buf = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                buf.extend(ch.to_lowercase());
            } else if !buf.is_empty() {
                ids.push(self.token_ids.get(buf.as_str()).copied());
                buf.clear();
            }
        }
        if !buf.is_empty() {
            ids.push(self.token_ids.get(buf.as_str()).copied());
        }
        ids
    }

    /// Annotates an utterance: greedy longest-match over token spans,
    /// left to right, no overlaps. One trie walk per start position; no
    /// per-span allocations.
    pub fn annotate(&self, utterance: &str) -> Vec<Annotation> {
        let ids = self.token_id_seq(utterance);
        let mut annotations = Vec::new();
        let mut i = 0;
        while i < ids.len() {
            let mut node = 0usize;
            let mut best: Option<(usize, u32)> = None;
            let limit = ids.len().min(i + self.max_tokens);
            for (j, slot) in ids.iter().enumerate().take(limit).skip(i) {
                let Some(tid) = *slot else { break };
                let Ok(edge) = self.nodes[node].children.binary_search_by_key(&tid, |e| e.0) else {
                    break;
                };
                node = self.nodes[node].children[edge].1 as usize;
                if let Some(pid) = self.nodes[node].phrase {
                    best = Some((j + 1, pid));
                }
            }
            match best {
                Some((end, pid)) => {
                    for ev in &self.phrases[pid as usize].evidences {
                        annotations.push(Annotation { start: i, end, evidence: ev.clone() });
                    }
                    i = end;
                }
                None => i += 1,
            }
        }
        annotations
    }

    /// Like [`Lexicon::annotate`], recording an
    /// [`annotate`](obcs_telemetry::stage::ANNOTATE) span on `rec`
    /// (see DESIGN.md §10).
    pub fn annotate_traced(
        &self,
        utterance: &str,
        rec: &dyn obcs_telemetry::Recorder,
    ) -> Vec<Annotation> {
        let _span = obcs_telemetry::span(rec, obcs_telemetry::stage::ANNOTATE);
        self.annotate(utterance)
    }

    /// The pre-trie reference annotator: greedy longest match via per-span
    /// token joins and hash lookups. Semantically identical to
    /// [`Lexicon::annotate`] (a property test enforces it); kept as the
    /// oracle and as the "before" side of `repro perf`.
    #[doc(hidden)]
    pub fn annotate_scan(&self, utterance: &str) -> Vec<Annotation> {
        let tokens = tokens_of(utterance);
        let mut annotations = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = false;
            let max_len = self.max_tokens.min(tokens.len() - i);
            for len in (1..=max_len).rev() {
                let phrase = tokens[i..i + len].join(" ");
                let evs = self.lookup(&phrase);
                if !evs.is_empty() {
                    for ev in evs {
                        annotations.push(Annotation {
                            start: i,
                            end: i + len,
                            evidence: ev.clone(),
                        });
                    }
                    i += len;
                    matched = true;
                    break;
                }
            }
            if !matched {
                i += 1;
            }
        }
        annotations
    }

    /// Replaces every recognised *instance* span with a placeholder token
    /// derived from its concept (`"dosage for Aspirin"` → `"dosage for
    /// entdrug"`). Intent classifiers train and predict on masked text so
    /// specific entity values don't act as spurious intent features — the
    /// paper's intent + entity separation.
    pub fn mask(&self, utterance: &str, onto: &Ontology) -> String {
        let tokens = tokens_of(utterance);
        let annotations = self.annotate(utterance);
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            let instance_span = annotations
                .iter()
                .find(|a| a.start == i && matches!(a.evidence, Evidence::Instance { .. }));
            match instance_span {
                Some(a) => {
                    if let Evidence::Instance { concept, .. } = &a.evidence {
                        out.push(format!("ent{}", onto.concept_name(*concept).to_lowercase()));
                    }
                    i = a.end;
                }
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                }
            }
        }
        out.join(" ")
    }

    /// Finds instance values whose text *contains* the given partial
    /// phrase — the paper's partial-entity matching (§6.1): "Calcium" →
    /// ["Calcium Carbonate", ...]. Returns (concept, value) pairs sorted
    /// for determinism.
    ///
    /// Candidates come from the inverted index: any phrase containing the
    /// needle must have a token that contains the needle's first token as
    /// a substring, so only the (much smaller) distinct-token inventory is
    /// scanned and only indexed candidates are verified.
    pub fn partial_matches(&self, partial: &str) -> Vec<(ConceptId, String)> {
        let needle = normalize(partial);
        // Very short fragments match half the vocabulary; require a
        // meaningful stem. A phrase with an exact entry is a full match,
        // not a partial one.
        if needle.len() < 4 || self.phrase_ids.contains_key(&needle) {
            return Vec::new();
        }
        let first = needle.split(' ').next().unwrap_or(&needle);
        let mut candidates: Vec<u32> = Vec::new();
        for (tid, token) in self.tokens.iter().enumerate() {
            if token.contains(first) {
                candidates.extend_from_slice(&self.occurrences[tid]);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut out: Vec<(ConceptId, String)> = candidates
            .into_iter()
            .map(|pid| &self.phrases[pid as usize])
            .filter(|p| p.text.contains(&needle) && p.text != needle)
            .flat_map(|p| {
                p.evidences.iter().filter_map(|ev| match ev {
                    Evidence::Instance { concept, value } => Some((*concept, value.clone())),
                    Evidence::Concept(_) => None,
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The pre-index reference for [`Lexicon::partial_matches`]: a linear
    /// `contains` scan over every phrase. Oracle + perf baseline.
    #[doc(hidden)]
    pub fn partial_matches_scan(&self, partial: &str) -> Vec<(ConceptId, String)> {
        let needle = normalize(partial);
        if needle.len() < 4 || self.phrase_ids.contains_key(&needle) {
            return Vec::new();
        }
        let mut out: Vec<(ConceptId, String)> = self
            .phrases
            .iter()
            .filter(|p| p.text.contains(&needle) && p.text != needle)
            .flat_map(|p| {
                p.evidences.iter().filter_map(|ev| match ev {
                    Evidence::Instance { concept, value } => Some((*concept, value.clone())),
                    Evidence::Concept(_) => None,
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The phrase itself plus a naive singular/plural variant of its last
/// word (`precaution` ↔ `precautions`). Words already ending in `ss`
/// ("pharmacokinetics"-style nouns are handled by the plural variant) or
/// shorter than 3 characters are left alone.
fn number_variants(norm: &str) -> Vec<String> {
    let mut out = vec![norm.to_string()];
    let Some(last) = norm.rsplit(' ').next() else {
        return out;
    };
    if last.len() < 3 {
        return out;
    }
    if let Some(stem) = last.strip_suffix('s') {
        if !stem.ends_with('s') && stem.len() >= 3 {
            out.push(format!("{}{stem}", &norm[..norm.len() - last.len()]));
        }
    } else {
        out.push(format!("{norm}s"));
    }
    out
}

/// Normalises a phrase: lowercase, alphanumeric tokens joined by single
/// spaces.
pub fn normalize(phrase: &str) -> String {
    tokens_of(phrase).join(" ")
}

fn tokens_of(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// `DrugFoodInteraction` → `Drug Food Interaction` (for lexicon phrases).
pub fn split_camel(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let chars: Vec<char> = name.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch.is_uppercase() && i > 0 && chars[i - 1].is_lowercase() {
            out.push(' ');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_kb::schema::{ColumnType, TableSchema};
    use obcs_kb::Value;
    use obcs_ontology::OntologyBuilder;

    fn fixture() -> (Ontology, KnowledgeBase, OntologyMapping) {
        let onto = OntologyBuilder::new("m")
            .data("Drug", &["name"])
            .data("DrugFoodInteraction", &["description"])
            .relation("interacts", "Drug", "DrugFoodInteraction")
            .build()
            .unwrap();
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        for (i, n) in ["Aspirin", "Calcium Carbonate", "Calcium Citrate"].iter().enumerate() {
            kb.insert("drug", vec![Value::Int(i as i64), Value::text(*n)]).unwrap();
        }
        let mapping = OntologyMapping::infer(&onto, &kb);
        (onto, kb, mapping)
    }

    #[test]
    fn annotates_concepts_and_instances() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        let anns = lex.annotate("show me the drug aspirin");
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].evidence, Evidence::Concept(drug));
        assert_eq!(anns[1].evidence, Evidence::Instance { concept: drug, value: "Aspirin".into() });
    }

    #[test]
    fn longest_match_wins() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("dosage of calcium carbonate please");
        let values: Vec<&str> = anns
            .iter()
            .filter_map(|a| match &a.evidence {
                Evidence::Instance { value, .. } => Some(value.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec!["Calcium Carbonate"]);
    }

    #[test]
    fn camel_case_concepts_match_spaced_text() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let dfi = onto.concept_id("DrugFoodInteraction").unwrap();
        let anns = lex.annotate("any drug food interaction for aspirin?");
        assert!(anns.iter().any(|a| a.evidence == Evidence::Concept(dfi)));
    }

    #[test]
    fn case_insensitive_matching() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("ASPIRIN");
        assert_eq!(anns.len(), 1);
    }

    #[test]
    fn synonyms_via_add_phrase() {
        let (onto, kb, mapping) = fixture();
        let mut lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        lex.add_phrase("medicine", Evidence::Concept(drug));
        let anns = lex.annotate("which medicine helps");
        assert_eq!(anns[0].evidence, Evidence::Concept(drug));
    }

    #[test]
    fn partial_entity_matching() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let matches = lex.partial_matches("calcium");
        let values: Vec<&str> = matches.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(values, vec!["Calcium Carbonate", "Calcium Citrate"]);
        assert!(lex.partial_matches("aspirin").is_empty(), "exact match is not partial");
        assert!(lex.partial_matches("").is_empty());
    }

    #[test]
    fn partial_matching_spans_token_boundaries() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        // The needle crosses the space between two phrase tokens; the
        // index must still surface the phrase (candidate generation goes
        // through the needle's *first* token).
        let matches = lex.partial_matches("cium carbo");
        let values: Vec<&str> = matches.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(values, vec!["Calcium Carbonate"]);
        assert_eq!(matches, lex.partial_matches_scan("cium carbo"));
    }

    #[test]
    fn no_overlapping_annotations() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("calcium carbonate calcium citrate");
        assert_eq!(anns.len(), 2);
        assert!(anns[0].end <= anns[1].start);
    }

    #[test]
    fn normalize_and_split_camel() {
        assert_eq!(normalize("  Hello,  WORLD! "), "hello world");
        assert_eq!(split_camel("DrugFoodInteraction"), "Drug Food Interaction");
        assert_eq!(split_camel("Drug"), "Drug");
        // Consecutive capitals (acronyms) stay together.
        assert_eq!(split_camel("IVCompatibility"), "IVCompatibility");
    }

    #[test]
    fn ambiguous_phrase_yields_all_evidences() {
        let (onto, kb, mapping) = fixture();
        let mut lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        let dfi = onto.concept_id("DrugFoodInteraction").unwrap();
        lex.add_phrase("thing", Evidence::Concept(drug));
        lex.add_phrase("thing", Evidence::Concept(dfi));
        let anns = lex.annotate("thing");
        assert_eq!(anns.len(), 2);
    }

    #[test]
    fn trie_matches_scan_on_fixture_probes() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        for probe in [
            "show me the drug aspirin",
            "dosage of calcium carbonate please",
            "calcium carbonate calcium citrate",
            "any drug food interaction for aspirin?",
            "ASPIRIN",
            "nothing matches here",
            "",
            "calcium calcium calcium",
            "drug drug food interaction",
        ] {
            assert_eq!(lex.annotate(probe), lex.annotate_scan(probe), "probe `{probe}`");
        }
    }

    #[test]
    fn empty_lexicon_annotates_nothing() {
        let lex = Lexicon::default();
        assert!(lex.annotate("anything at all").is_empty());
        assert!(lex.is_empty());
        assert_eq!(lex.len(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_matching() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let json = serde_json::to_string(&lex).unwrap();
        let back: Lexicon = serde_json::from_str(&json).unwrap();
        let probe = "dosage of calcium carbonate please";
        assert_eq!(lex.annotate(probe), back.annotate(probe));
        assert_eq!(lex.partial_matches("calcium"), back.partial_matches("calcium"));
    }
}
