//! Evidence annotation: locating mentions of ontology concepts, data
//! properties, and KB instance values inside an utterance.
//!
//! This is the first stage of the Athena-style interpretation pipeline: the
//! utterance is scanned for the longest token spans that match (a) concept
//! names and their registered synonyms, (b) data property names, and (c)
//! instance values from the label columns of nameable concepts.

use std::collections::HashMap;

use obcs_kb::KnowledgeBase;
use obcs_ontology::{ConceptId, Ontology};
use serde::{Deserialize, Serialize};

use crate::mapping::OntologyMapping;

/// What an annotated span refers to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Evidence {
    /// A mention of the concept itself ("precautions", "drug").
    Concept(ConceptId),
    /// A mention of an instance of the concept ("Aspirin" → Drug).
    Instance { concept: ConceptId, value: String },
}

/// An annotated token span `[start, end)` over the utterance's tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    pub start: usize,
    pub end: usize,
    pub evidence: Evidence,
}

/// A lexicon mapping normalised phrases to evidence, built once per
/// conversation space and reused for every utterance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    /// Normalised phrase → all evidences it may refer to.
    entries: HashMap<String, Vec<Evidence>>,
    /// Longest phrase length in tokens (bounds the span search).
    max_tokens: usize,
}

impl Lexicon {
    /// Builds the lexicon from concept names and instance values.
    pub fn build(onto: &Ontology, kb: &KnowledgeBase, mapping: &OntologyMapping) -> Self {
        let mut lex = Lexicon::default();
        for c in onto.concepts() {
            lex.add_phrase(&split_camel(&c.name), Evidence::Concept(c.id));
        }
        for concept in mapping.nameable_concepts() {
            // Only concepts whose instances carry proper names contribute
            // instance values — free-text description columns of dependent
            // concepts would pollute the vocabulary.
            if !mapping.is_nameable(concept) {
                continue;
            }
            let (Some(table), Some(label)) = (mapping.table(concept), mapping.label(concept))
            else {
                continue;
            };
            if let Ok(values) = kb.distinct_values(table, label) {
                for v in values {
                    if let Some(s) = v.as_text() {
                        lex.add_phrase(s, Evidence::Instance { concept, value: s.to_string() });
                    }
                }
            }
        }
        lex
    }

    /// Registers an additional phrase (synonyms, abbreviations), together
    /// with a naive plural/singular variant of its last word so "show me
    /// the precautions" matches the `Precaution` concept.
    pub fn add_phrase(&mut self, phrase: &str, evidence: Evidence) {
        let norm = normalize(phrase);
        if norm.is_empty() {
            return;
        }
        for variant in number_variants(&norm) {
            let token_count = variant.split(' ').count();
            self.max_tokens = self.max_tokens.max(token_count);
            let entry = self.entries.entry(variant).or_default();
            if !entry.contains(&evidence) {
                entry.push(evidence.clone());
            }
        }
    }

    /// All evidences for a normalised phrase.
    pub fn lookup(&self, phrase: &str) -> &[Evidence] {
        self.entries.get(&normalize(phrase)).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Annotates an utterance: greedy longest-match over token spans,
    /// left to right, no overlaps.
    pub fn annotate(&self, utterance: &str) -> Vec<Annotation> {
        let tokens = tokens_of(utterance);
        let mut annotations = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = false;
            let max_len = self.max_tokens.min(tokens.len() - i);
            for len in (1..=max_len).rev() {
                let phrase = tokens[i..i + len].join(" ");
                let evs = self.lookup(&phrase);
                if !evs.is_empty() {
                    for ev in evs {
                        annotations.push(Annotation {
                            start: i,
                            end: i + len,
                            evidence: ev.clone(),
                        });
                    }
                    i += len;
                    matched = true;
                    break;
                }
            }
            if !matched {
                i += 1;
            }
        }
        annotations
    }

    /// Replaces every recognised *instance* span with a placeholder token
    /// derived from its concept (`"dosage for Aspirin"` → `"dosage for
    /// entdrug"`). Intent classifiers train and predict on masked text so
    /// specific entity values don't act as spurious intent features — the
    /// paper's intent + entity separation.
    pub fn mask(&self, utterance: &str, onto: &Ontology) -> String {
        let tokens = tokens_of(utterance);
        let annotations = self.annotate(utterance);
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            let instance_span = annotations
                .iter()
                .find(|a| a.start == i && matches!(a.evidence, Evidence::Instance { .. }));
            match instance_span {
                Some(a) => {
                    if let Evidence::Instance { concept, .. } = &a.evidence {
                        out.push(format!("ent{}", onto.concept_name(*concept).to_lowercase()));
                    }
                    i = a.end;
                }
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                }
            }
        }
        out.join(" ")
    }

    /// Finds instance values whose text *contains* the given partial
    /// phrase — the paper's partial-entity matching (§6.1): "Calcium" →
    /// ["Calcium Carbonate", ...]. Returns (concept, value) pairs sorted
    /// for determinism.
    pub fn partial_matches(&self, partial: &str) -> Vec<(ConceptId, String)> {
        let needle = normalize(partial);
        // Very short fragments match half the vocabulary; require a
        // meaningful stem. A phrase with an exact entry is a full match,
        // not a partial one.
        if needle.len() < 4 || self.entries.contains_key(&needle) {
            return Vec::new();
        }
        let mut out: Vec<(ConceptId, String)> = self
            .entries
            .iter()
            .filter(|(phrase, _)| phrase.contains(&needle) && **phrase != needle)
            .flat_map(|(_, evs)| {
                evs.iter().filter_map(|ev| match ev {
                    Evidence::Instance { concept, value } => Some((*concept, value.clone())),
                    Evidence::Concept(_) => None,
                })
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The phrase itself plus a naive singular/plural variant of its last
/// word (`precaution` ↔ `precautions`). Words already ending in `ss`
/// ("pharmacokinetics"-style nouns are handled by the plural variant) or
/// shorter than 3 characters are left alone.
fn number_variants(norm: &str) -> Vec<String> {
    let mut out = vec![norm.to_string()];
    let Some(last) = norm.rsplit(' ').next() else {
        return out;
    };
    if last.len() < 3 {
        return out;
    }
    if let Some(stem) = last.strip_suffix('s') {
        if !stem.ends_with('s') && stem.len() >= 3 {
            out.push(format!("{}{stem}", &norm[..norm.len() - last.len()]));
        }
    } else {
        out.push(format!("{norm}s"));
    }
    out
}

/// Normalises a phrase: lowercase, alphanumeric tokens joined by single
/// spaces.
pub fn normalize(phrase: &str) -> String {
    tokens_of(phrase).join(" ")
}

fn tokens_of(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// `DrugFoodInteraction` → `Drug Food Interaction` (for lexicon phrases).
pub fn split_camel(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    let chars: Vec<char> = name.chars().collect();
    for (i, &ch) in chars.iter().enumerate() {
        if ch.is_uppercase() && i > 0 && chars[i - 1].is_lowercase() {
            out.push(' ');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use obcs_kb::schema::{ColumnType, TableSchema};
    use obcs_kb::Value;
    use obcs_ontology::OntologyBuilder;

    fn fixture() -> (Ontology, KnowledgeBase, OntologyMapping) {
        let onto = OntologyBuilder::new("m")
            .data("Drug", &["name"])
            .data("DrugFoodInteraction", &["description"])
            .relation("interacts", "Drug", "DrugFoodInteraction")
            .build()
            .unwrap();
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("drug")
                .column("drug_id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("drug_id"),
        )
        .unwrap();
        for (i, n) in ["Aspirin", "Calcium Carbonate", "Calcium Citrate"].iter().enumerate() {
            kb.insert("drug", vec![Value::Int(i as i64), Value::text(*n)]).unwrap();
        }
        let mapping = OntologyMapping::infer(&onto, &kb);
        (onto, kb, mapping)
    }

    #[test]
    fn annotates_concepts_and_instances() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        let anns = lex.annotate("show me the drug aspirin");
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].evidence, Evidence::Concept(drug));
        assert_eq!(anns[1].evidence, Evidence::Instance { concept: drug, value: "Aspirin".into() });
    }

    #[test]
    fn longest_match_wins() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("dosage of calcium carbonate please");
        let values: Vec<&str> = anns
            .iter()
            .filter_map(|a| match &a.evidence {
                Evidence::Instance { value, .. } => Some(value.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec!["Calcium Carbonate"]);
    }

    #[test]
    fn camel_case_concepts_match_spaced_text() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let dfi = onto.concept_id("DrugFoodInteraction").unwrap();
        let anns = lex.annotate("any drug food interaction for aspirin?");
        assert!(anns.iter().any(|a| a.evidence == Evidence::Concept(dfi)));
    }

    #[test]
    fn case_insensitive_matching() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("ASPIRIN");
        assert_eq!(anns.len(), 1);
    }

    #[test]
    fn synonyms_via_add_phrase() {
        let (onto, kb, mapping) = fixture();
        let mut lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        lex.add_phrase("medicine", Evidence::Concept(drug));
        let anns = lex.annotate("which medicine helps");
        assert_eq!(anns[0].evidence, Evidence::Concept(drug));
    }

    #[test]
    fn partial_entity_matching() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let matches = lex.partial_matches("calcium");
        let values: Vec<&str> = matches.iter().map(|(_, v)| v.as_str()).collect();
        assert_eq!(values, vec!["Calcium Carbonate", "Calcium Citrate"]);
        assert!(lex.partial_matches("aspirin").is_empty(), "exact match is not partial");
        assert!(lex.partial_matches("").is_empty());
    }

    #[test]
    fn no_overlapping_annotations() {
        let (onto, kb, mapping) = fixture();
        let lex = Lexicon::build(&onto, &kb, &mapping);
        let anns = lex.annotate("calcium carbonate calcium citrate");
        assert_eq!(anns.len(), 2);
        assert!(anns[0].end <= anns[1].start);
    }

    #[test]
    fn normalize_and_split_camel() {
        assert_eq!(normalize("  Hello,  WORLD! "), "hello world");
        assert_eq!(split_camel("DrugFoodInteraction"), "Drug Food Interaction");
        assert_eq!(split_camel("Drug"), "Drug");
        // Consecutive capitals (acronyms) stay together.
        assert_eq!(split_camel("IVCompatibility"), "IVCompatibility");
    }

    #[test]
    fn ambiguous_phrase_yields_all_evidences() {
        let (onto, kb, mapping) = fixture();
        let mut lex = Lexicon::build(&onto, &kb, &mapping);
        let drug = onto.concept_id("Drug").unwrap();
        let dfi = onto.concept_id("DrugFoodInteraction").unwrap();
        lex.add_phrase("thing", Evidence::Concept(drug));
        lex.add_phrase("thing", Evidence::Concept(dfi));
        let anns = lex.annotate("thing");
        assert_eq!(anns.len(), 2);
    }
}
