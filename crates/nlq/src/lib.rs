//! # obcs-nlq
//!
//! An ontology-driven natural-language-query (NLQ) service — the
//! reproduction of the Athena-style component (\[29\]) the paper uses to turn
//! the bootstrapped intents' example utterances into structured SQL queries
//! and, from those, parameterised *structured query templates* (§4.4,
//! Fig. 9).
//!
//! Pipeline:
//!
//! 1. [`mapping`] — link the domain ontology to the physical KB schema:
//!    concept → table, data property → column, object property → join
//!    columns, plus a *label column* per concept (the human-readable name
//!    column instances are referred to by).
//! 2. [`annotate`] — evidence annotation: find mentions of concepts, data
//!    properties, and instance values inside a user utterance.
//! 3. [`mod@interpret`] — assemble an interpreted query (focus concept,
//!    projections, join path over the ontology, filters) and render SQL.
//! 4. [`template`] — parameterise SQL into a reusable template with
//!    `<@Concept>` markers, instantiated at runtime with recognised
//!    entities.
//!
//! Crate role: DESIGN.md §2; annotation performance architecture: §9;
//! traced interpretation (`interpret_traced`, `annotate_traced`): §10.

pub mod annotate;
pub mod interpret;
pub mod mapping;
pub mod template;

pub use interpret::{interpret, interpret_traced, InterpretedQuery, NlqError};
pub use mapping::OntologyMapping;
pub use template::QueryTemplate;
