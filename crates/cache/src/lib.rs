//! # obcs-cache
//!
//! Generation-checked, byte-budgeted LRU caches for the turn pipeline
//! (see DESIGN.md §12 "Caching").
//!
//! Every cache layer in the system — the prepared-plan and result caches
//! in `obcs-kb`, the NLU memo in `obcs-agent` — is an instance of one
//! primitive: [`GenCache`], a string-keyed LRU whose entries carry the
//! *generation* of the underlying data they were computed from. A lookup
//! passes the current generation; an entry filled at an older generation
//! is treated as absent (and dropped), so a mutation of the underlying
//! store can never serve a stale value. Invalidation is O(1) per bump —
//! nothing is scanned or cleared eagerly.
//!
//! The cache also enforces a byte budget (for value-heavy layers such as
//! KB result sets) and an entry cap, evicting least-recently-used entries
//! past either limit. [`CacheStats`] counts hits, misses, evictions, and
//! generation invalidations; [`record_stats`] publishes them through the
//! `obcs-telemetry` metric vocabulary on demand. Stats are surfaced
//! *on demand* rather than recorded per lookup: cache warm-up differs
//! across replay shard layouts, so per-turn hit/miss counters would break
//! the bit-for-bit determinism contract of traced replays (DESIGN.md §12
//! spells out the argument).
//!
//! `GenCache` itself is not synchronised — callers that share a cache
//! across threads wrap it in a `Mutex`, which is how both `obcs-kb` and
//! `obcs-agent` use it.

use std::collections::{BTreeMap, HashMap};

/// Sizing limits of one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of entries kept (LRU eviction past it).
    pub max_entries: usize,
    /// Total byte budget across all entries (LRU eviction past it).
    pub max_bytes: usize,
    /// Values costed above this are not cached at all — one huge result
    /// must not wipe the whole working set.
    pub max_entry_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 1024,
            max_bytes: 4 << 20,         // 4 MiB
            max_entry_bytes: 256 << 10, // 256 KiB
        }
    }
}

impl CacheConfig {
    /// A config for caches of small values (plans, predictions) where the
    /// entry count, not bytes, is the limit that matters.
    pub fn entries(max_entries: usize) -> Self {
        CacheConfig { max_entries, max_bytes: usize::MAX, max_entry_bytes: usize::MAX }
    }
}

/// Hit/miss/eviction/invalidation counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing usable (includes invalidations).
    pub misses: u64,
    /// Entries dropped to stay within the entry/byte budget.
    pub evictions: u64,
    /// Entries dropped because their generation no longer matched.
    pub invalidations: u64,
}

impl CacheStats {
    /// Component-wise sum — for aggregating layers into one view.
    pub fn merged(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
        }
    }

    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

struct Entry<V> {
    value: V,
    generation: u64,
    bytes: usize,
    stamp: u64,
}

/// A string-keyed LRU cache whose entries are validated against a data
/// generation on every lookup (see the crate docs).
pub struct GenCache<V> {
    config: CacheConfig,
    map: HashMap<String, Entry<V>>,
    /// Recency index: stamp → key. Stamps are unique (monotone counter),
    /// so the smallest stamp is always the least recently used entry.
    recency: BTreeMap<u64, String>,
    next_stamp: u64,
    bytes: usize,
    stats: CacheStats,
}

impl<V> GenCache<V> {
    pub fn new(config: CacheConfig) -> Self {
        GenCache {
            config,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            next_stamp: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total costed bytes of the live entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The counters accumulated so far (kept across `clear`).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry; counters are kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    fn touch(&mut self, key: &str) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(entry) = self.map.get_mut(key) {
            self.recency.remove(&entry.stamp);
            entry.stamp = stamp;
            self.recency.insert(stamp, key.to_string());
        }
    }

    fn remove(&mut self, key: &str) -> Option<Entry<V>> {
        let entry = self.map.remove(key)?;
        self.recency.remove(&entry.stamp);
        self.bytes -= entry.bytes;
        Some(entry)
    }

    fn evict_past_budget(&mut self) {
        while self.map.len() > self.config.max_entries || self.bytes > self.config.max_bytes {
            let Some((_, key)) = self.recency.iter().next().map(|(s, k)| (*s, k.clone())) else {
                break;
            };
            self.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

impl<V: Clone> GenCache<V> {
    /// Looks up `key`, accepting the entry only if it was filled at
    /// exactly `generation`. A generation mismatch drops the entry and
    /// counts as both an invalidation and a miss.
    pub fn get(&mut self, key: &str, generation: u64) -> Option<V> {
        match self.map.get(key) {
            Some(entry) if entry.generation == generation => {
                self.stats.hits += 1;
                let value = entry.value.clone();
                self.touch(key);
                Some(value)
            }
            Some(_) => {
                self.remove(key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `value` for `key` at `generation`, costed at `bytes`.
    /// Values over the per-entry budget are silently not cached; an
    /// existing entry for the key is replaced.
    pub fn put(&mut self, key: &str, generation: u64, value: V, bytes: usize) {
        if bytes > self.config.max_entry_bytes || self.config.max_entries == 0 {
            return;
        }
        self.remove(key);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.bytes += bytes;
        self.map.insert(key.to_string(), Entry { value, generation, bytes, stamp });
        self.recency.insert(stamp, key.to_string());
        self.evict_past_budget();
    }
}

/// Publishes one layer's counters through the shared telemetry metric
/// vocabulary (`cache_hit{layer}`, `cache_miss{layer}`, …). Call this on
/// demand — at the end of a replay or on a stats endpoint — never inside
/// the per-turn path, where the hit pattern is shard-layout-dependent and
/// would break trace determinism (DESIGN.md §12).
pub fn record_stats(stats: CacheStats, layer: &str, rec: &dyn obcs_telemetry::Recorder) {
    use obcs_telemetry::metric;
    rec.add(metric::CACHE_HITS, layer, stats.hits);
    rec.add(metric::CACHE_MISSES, layer, stats.misses);
    rec.add(metric::CACHE_EVICTIONS, layer, stats.evictions);
    rec.add(metric::CACHE_INVALIDATIONS, layer, stats.invalidations);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(entries: usize) -> GenCache<String> {
        GenCache::new(CacheConfig::entries(entries))
    }

    #[test]
    fn get_put_roundtrip_and_stats() {
        let mut c = cache(8);
        assert_eq!(c.get("k", 0), None);
        c.put("k", 0, "v".to_string(), 1);
        assert_eq!(c.get("k", 0), Some("v".to_string()));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.invalidations), (1, 1, 0, 0));
        assert_eq!(s.lookups(), 2);
    }

    #[test]
    fn generation_mismatch_invalidates() {
        let mut c = cache(8);
        c.put("k", 3, "old".to_string(), 1);
        assert_eq!(c.get("k", 4), None, "stale generation must not serve");
        assert_eq!(c.len(), 0, "stale entry dropped");
        assert_eq!(c.stats().invalidations, 1);
        c.put("k", 4, "new".to_string(), 1);
        assert_eq!(c.get("k", 4), Some("new".to_string()));
    }

    #[test]
    fn lru_eviction_by_entry_cap() {
        let mut c = cache(2);
        c.put("a", 0, "1".into(), 1);
        c.put("b", 0, "2".into(), 1);
        assert_eq!(c.get("a", 0), Some("1".into()), "touch a so b is LRU");
        c.put("c", 0, "3".into(), 1);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("b", 0), None, "b was least recently used");
        assert_eq!(c.get("a", 0), Some("1".into()));
        assert_eq!(c.get("c", 0), Some("3".into()));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn byte_budget_evicts_and_oversized_values_skip() {
        let mut c: GenCache<String> =
            GenCache::new(CacheConfig { max_entries: 100, max_bytes: 10, max_entry_bytes: 8 });
        c.put("big", 0, "x".into(), 9);
        assert_eq!(c.len(), 0, "oversized value never cached");
        c.put("a", 0, "1".into(), 6);
        c.put("b", 0, "2".into(), 6);
        assert_eq!(c.len(), 1, "12 bytes > 10-byte budget evicts the older");
        assert_eq!(c.bytes(), 6);
        assert_eq!(c.get("b", 0), Some("2".into()));
    }

    #[test]
    fn replacing_a_key_updates_bytes() {
        let mut c: GenCache<String> =
            GenCache::new(CacheConfig { max_entries: 4, max_bytes: 100, max_entry_bytes: 100 });
        c.put("k", 0, "v1".into(), 10);
        c.put("k", 1, "v2".into(), 20);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 20);
        assert_eq!(c.get("k", 1), Some("v2".into()));
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = cache(8);
        c.put("k", 0, "v".into(), 1);
        let _ = c.get("k", 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.stats().hits, 1, "counters survive a clear");
    }

    #[test]
    fn merged_stats_add_component_wise() {
        let a = CacheStats { hits: 1, misses: 2, evictions: 3, invalidations: 4 };
        let b = CacheStats { hits: 10, misses: 20, evictions: 30, invalidations: 40 };
        let m = a.merged(b);
        assert_eq!((m.hits, m.misses, m.evictions, m.invalidations), (11, 22, 33, 44));
    }

    #[test]
    fn record_stats_publishes_metric_counters() {
        let rec = obcs_telemetry::CollectingRecorder::ticks();
        record_stats(
            CacheStats { hits: 5, misses: 2, evictions: 1, invalidations: 3 },
            "kb_result",
            &rec,
        );
        let report = rec.take_report();
        assert_eq!(report.counters[&("cache_hit".into(), "kb_result".into())], 5);
        assert_eq!(report.counters[&("cache_miss".into(), "kb_result".into())], 2);
        assert_eq!(report.counters[&("cache_evict".into(), "kb_result".into())], 1);
        assert_eq!(report.counters[&("cache_invalidate".into(), "kb_result".into())], 3);
    }
}
