//! The diagnostic model: what a lint reports and how a batch of reports is
//! rendered, counted and gated.
//!
//! Mirrors a compiler's diagnostic stream: every finding carries a stable
//! code (`OBCS0xx`), a severity, a location inside the artifact chain, a
//! human message and an optional suggestion. Codes are stable across
//! releases so CI configurations and suppressions survive refactors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Advisory; never gates, even under `--deny-warnings`.
    Info,
    /// Suspicious but the space still functions; gates under
    /// `--deny-warnings`.
    Warning,
    /// The artifact chain is broken; always gates.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in the artifact chain a finding points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Which artifact: `ontology`, `kb`, `mapping`, `space`, `logic-table`,
    /// `dialogue-tree`.
    pub artifact: String,
    /// The item within the artifact, e.g. `intent `Precautions of Drug``
    /// or `training[412]`.
    pub item: String,
}

impl Location {
    pub fn new(artifact: impl Into<String>, item: impl Into<String>) -> Self {
        Location { artifact: artifact.into(), item: item.into() }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.artifact, self.item)
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable code, e.g. `OBCS013`.
    pub code: String,
    pub severity: Severity,
    pub location: Location,
    pub message: String,
    /// What the designer could do about it, when a fix is known.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    pub fn new(
        code: &str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {} ({})", self.severity, self.code, self.message, self.location)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    = help: {s}")?;
        }
        Ok(())
    }
}

/// The collected output of one lint run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiagnosticSet {
    pub diagnostics: Vec<Diagnostic>,
}

impl DiagnosticSet {
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// All diagnostics carrying a given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sorts by (severity desc, code, location) for deterministic output.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.cmp(&b.code))
                .then_with(|| a.location.artifact.cmp(&b.location.artifact))
                .then_with(|| a.location.item.cmp(&b.location.item))
        });
    }

    /// Whether the run should fail the build. Errors always gate; warnings
    /// gate only under `deny_warnings`. Info never gates.
    pub fn gate(&self, deny_warnings: bool) -> Result<(), String> {
        let errors = self.count(Severity::Error);
        let warnings = self.count(Severity::Warning);
        if errors > 0 || (deny_warnings && warnings > 0) {
            Err(format!("lint failed: {errors} error(s), {warnings} warning(s)"))
        } else {
            Ok(())
        }
    }

    /// Renders the set in rustc-like text form, one block per finding,
    /// followed by a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} info(s)\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable JSON (pretty-printed array plus summary counts).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diagnostic serialisation cannot fail")
    }

    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The machine-readable report envelope the `spacelint` and `spaceverify`
/// binaries emit under `--json`: which tool ran, over which artifact,
/// severity counts, and the findings themselves. CI consumers should key
/// on `errors`/`warnings` rather than re-counting diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JsonReport {
    /// The emitting tool, `spacelint` or `spaceverify`.
    pub tool: String,
    /// The artifact the report is about (the space file path).
    pub artifact: String,
    pub errors: usize,
    pub warnings: usize,
    pub infos: usize,
    pub diagnostics: Vec<Diagnostic>,
}

impl JsonReport {
    /// Wraps a finished diagnostic set in the report envelope.
    pub fn new(tool: &str, artifact: &str, set: &DiagnosticSet) -> Self {
        JsonReport {
            tool: tool.to_string(),
            artifact: artifact.to_string(),
            errors: set.count(Severity::Error),
            warnings: set.count(Severity::Warning),
            infos: set.count(Severity::Info),
            diagnostics: set.diagnostics.clone(),
        }
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic::new(
            "OBCS013",
            Severity::Error,
            Location::new("space", "intent `Precautions of Drug`"),
            "intent has no training examples",
        )
        .with_suggestion("add SME examples or raise examples_per_pattern")
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn gate_denies_errors_always() {
        let mut set = DiagnosticSet::default();
        set.push(sample());
        assert!(set.gate(false).is_err());
    }

    #[test]
    fn gate_denies_warnings_only_when_asked() {
        let mut set = DiagnosticSet::default();
        set.push(Diagnostic::new(
            "OBCS012",
            Severity::Warning,
            Location::new("space", "intent `X`"),
            "below floor",
        ));
        assert!(set.gate(false).is_ok());
        assert!(set.gate(true).is_err());
    }

    #[test]
    fn info_never_gates() {
        let mut set = DiagnosticSet::default();
        set.push(Diagnostic::new(
            "OBCS050",
            Severity::Info,
            Location::new("kb", "table `empty`"),
            "empty table",
        ));
        assert!(set.gate(true).is_ok());
    }

    #[test]
    fn render_includes_code_and_suggestion() {
        let text = sample().to_string();
        assert!(text.contains("error[OBCS013]"));
        assert!(text.contains("= help:"));
    }

    #[test]
    fn json_round_trip() {
        let mut set = DiagnosticSet::default();
        set.push(sample());
        let back = DiagnosticSet::from_json(&set.to_json()).unwrap();
        assert_eq!(back.diagnostics, set.diagnostics);
    }

    #[test]
    fn json_report_round_trip() {
        let mut set = DiagnosticSet::default();
        set.push(sample());
        set.push(Diagnostic::new(
            "OBCS012",
            Severity::Warning,
            Location::new("space", "intent `X`"),
            "below floor",
        ));
        let report = JsonReport::new("spacelint", "artifacts/mdx_space.json", &set);
        assert_eq!((report.errors, report.warnings, report.infos), (1, 1, 0));
        let back = JsonReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
