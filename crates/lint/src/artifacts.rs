//! Loading committed artifact files back into an analysable in-memory
//! chain, shared by the `spacelint` and `spaceverify` binaries (and the
//! `repro verify` pass).
//!
//! A committed space (`artifacts/<domain>_space.json`) travels with its
//! KB (`artifacts/<domain>_kb.json`). The ontology is *reconstructed*
//! rather than stored: the built-in `mdx` ontology is rebuilt from code,
//! and any other domain regenerates its ontology from the KB with the
//! data-driven generator ([`obcs_kb::ontogen`]) — exactly the path the
//! custom-domain example takes, and deterministic for a given KB. The
//! mapping is re-inferred from the ontology and KB, exactly as the
//! bootstrapper infers it.

use std::path::{Path, PathBuf};

use obcs_core::ConversationSpace;
use obcs_kb::ontogen::{generate_ontology, OntogenOptions};
use obcs_kb::KnowledgeBase;
use obcs_ontology::Ontology;

/// `artifacts/mdx_space.json` → `artifacts/mdx_kb.json`, when that
/// sibling exists.
pub fn sibling_kb(space_path: &Path) -> Option<PathBuf> {
    let stem = space_path.file_stem()?.to_str()?;
    let kb_name = match stem.strip_suffix("_space") {
        Some(prefix) => format!("{prefix}_kb.json"),
        None => format!("{stem}_kb.json"),
    };
    let candidate = space_path.with_file_name(kb_name);
    candidate.exists().then_some(candidate)
}

/// Loads a committed space + KB pair and reconstructs the ontology named
/// by the space. When `kb_path` is `None` the KB defaults to the
/// `*_kb.json` sibling of the space file. Errors are human-readable
/// strings suitable for a CLI's stderr.
pub fn load_artifacts(
    space_path: &Path,
    kb_path: Option<&Path>,
) -> Result<(ConversationSpace, KnowledgeBase, Ontology), String> {
    let space_text = std::fs::read_to_string(space_path)
        .map_err(|e| format!("cannot read {}: {e}", space_path.display()))?;
    let space: ConversationSpace = serde_json::from_str(&space_text)
        .map_err(|e| format!("cannot parse {}: {e}", space_path.display()))?;

    let kb_path = match kb_path {
        Some(p) => p.to_path_buf(),
        None => sibling_kb(space_path).ok_or_else(|| {
            format!("no KB given and no `*_kb.json` sibling of {} found", space_path.display())
        })?,
    };
    let kb_text = std::fs::read_to_string(&kb_path)
        .map_err(|e| format!("cannot read {}: {e}", kb_path.display()))?;
    let kb = KnowledgeBase::from_json(&kb_text)
        .map_err(|e| format!("cannot parse {}: {e}", kb_path.display()))?;

    let onto = reconstruct_ontology(&space.ontology_name, &kb)?;
    Ok((space, kb, onto))
}

/// Rebuilds the ontology a space was bootstrapped from. The built-in
/// `mdx` ontology is rebuilt from code; every other name is regenerated
/// from the KB with the data-driven generator (deterministic for a given
/// KB, and the same path data-driven domains use to build their ontology
/// in the first place).
pub fn reconstruct_ontology(name: &str, kb: &KnowledgeBase) -> Result<Ontology, String> {
    match name {
        "mdx" => Ok(obcs_mdx::ontology::build_mdx_ontology()),
        other => generate_ontology(kb, other, OntogenOptions::default())
            .map_err(|e| format!("cannot regenerate ontology `{other}` from the KB: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_kb_maps_space_to_kb() {
        // Use this crate's own manifest dir for an existing-file anchor.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"));
        let missing = dir.join("no_such_space.json");
        assert_eq!(sibling_kb(&missing), None, "missing sibling yields None");
    }

    #[test]
    fn reconstruct_mdx_ontology() {
        let kb = KnowledgeBase::new();
        let onto = reconstruct_ontology("mdx", &kb).unwrap();
        assert!(onto.concept_id("Drug").is_ok());
    }

    #[test]
    fn reconstruct_data_driven_ontology() {
        use obcs_kb::schema::{ColumnType, TableSchema};
        use obcs_kb::Value;
        let mut kb = KnowledgeBase::new();
        kb.create_table(
            TableSchema::new("book")
                .column("id", ColumnType::Int)
                .column("name", ColumnType::Text)
                .primary_key("id"),
        )
        .unwrap();
        kb.insert("book", vec![Value::Int(1), Value::text("Dune")]).unwrap();
        let onto = reconstruct_ontology("library", &kb).unwrap();
        assert!(onto.concept_id("Book").is_ok());
    }
}
