//! The lint context: one borrowed view of the entire artifact chain that
//! every lint runs against.
//!
//! The derived artifacts (dialogue logic table and tree) are rebuilt from
//! the space so lints see exactly what the online system would serve.

use obcs_core::ConversationSpace;
use obcs_dialogue::{DialogueLogicTable, DialogueTree};
use obcs_kb::KnowledgeBase;
use obcs_nlq::OntologyMapping;
use obcs_ontology::{ConceptId, Ontology};

/// Everything the lints inspect.
pub struct LintContext<'a> {
    pub onto: &'a Ontology,
    pub kb: &'a KnowledgeBase,
    pub mapping: &'a OntologyMapping,
    pub space: &'a ConversationSpace,
    /// Derived from the space, as the dialogue layer would.
    pub logic: DialogueLogicTable,
    /// Derived from the space, as the serving engine would.
    pub tree: DialogueTree,
}

impl<'a> LintContext<'a> {
    pub fn new(
        onto: &'a Ontology,
        kb: &'a KnowledgeBase,
        mapping: &'a OntologyMapping,
        space: &'a ConversationSpace,
    ) -> Self {
        let logic = DialogueLogicTable::from_space(space, onto);
        let tree = DialogueTree::from_space(space, onto, "agent");
        LintContext { onto, kb, mapping, space, logic, tree }
    }

    /// A concept's name, tolerant of ids the ontology does not know (a
    /// stale space must produce a diagnostic, not a panic).
    pub fn concept_label(&self, id: ConceptId) -> String {
        match self.onto.concept(id) {
            Ok(c) => c.name.clone(),
            Err(_) => format!("<unknown concept #{}>", id.0),
        }
    }

    /// Whether the ontology knows this concept id.
    pub fn concept_exists(&self, id: ConceptId) -> bool {
        self.onto.concept(id).is_ok()
    }

    /// Distinct instance values of a concept, through the mapping; `None`
    /// when the concept has no table or no label column.
    pub fn instance_count(&self, id: ConceptId) -> Option<usize> {
        let table = self.mapping.table(id)?;
        let label = self.mapping.label(id)?;
        self.kb.distinct_values(table, label).ok().map(|v| v.len())
    }
}
