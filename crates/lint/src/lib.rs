//! # obcs-lint
//!
//! Compiler-style static analysis over the bootstrapped conversation
//! space and every artifact it touches: the ontology, the KB schema and
//! data, the ontology-to-schema mapping, the conversation space itself,
//! and the derived dialogue logic table and tree.
//!
//! The paper's pipeline (§4–§5) machine-generates all of these artifacts;
//! SME feedback and designer customisation then edit them by hand. This
//! crate is the safety net between those edits and the online system: a
//! single pass that cross-checks the whole chain and reports findings as
//! [`Diagnostic`]s with stable `OBCS0xx` codes, rustc-like text rendering
//! and machine-readable JSON.
//!
//! ```no_run
//! use obcs_lint::{LintConfig, LintContext, run_all};
//! # let (onto, kb, mapping, space) = todo!();
//! let ctx = LintContext::new(&onto, &kb, &mapping, &space);
//! let report = run_all(&ctx, &LintConfig::default());
//! print!("{}", report.render_text());
//! report.gate(/* deny_warnings */ false).expect("space must lint clean");
//! ```
//!
//! The `spacelint` binary lints committed artifacts:
//!
//! ```text
//! cargo run -p obcs-lint --bin spacelint -- artifacts/mdx_space.json
//! ```
//!
//! Crate role: DESIGN.md §2; rule catalogue and severity policy: §8.

pub mod artifacts;
pub mod context;
pub mod diag;
#[allow(clippy::module_inception)]
pub mod lint;
pub mod rules;

pub use artifacts::{load_artifacts, reconstruct_ontology, sibling_kb};
pub use context::LintContext;
pub use diag::{Diagnostic, DiagnosticSet, JsonReport, Location, Severity};
pub use lint::{all_lints, run_all, Lint, LintConfig};
