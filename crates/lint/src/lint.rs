//! The `Lint` trait, the rule registry and the driver.

use crate::context::LintContext;
use crate::diag::{Diagnostic, DiagnosticSet};
use crate::rules;

/// Tunable thresholds of the lint pass.
#[derive(Debug, Clone, Copy)]
pub struct LintConfig {
    /// Minimum training examples per intent before `OBCS012` fires.
    pub example_floor: usize,
    /// Rows scanned per table for the orphan-foreign-key check
    /// (`OBCS052`); caps lint cost on large KBs.
    pub fk_scan_cap: usize,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { example_floor: 3, fk_scan_cap: 2000 }
    }
}

/// One static-analysis rule over the artifact chain.
///
/// A rule owns one or more stable `OBCS0xx` codes; `codes` documents them
/// and `run` appends any findings to `out`.
pub trait Lint {
    /// Short kebab-case rule name, e.g. `training-duplicates`.
    fn name(&self) -> &'static str;
    /// The stable codes this rule can emit.
    fn codes(&self) -> &'static [&'static str];
    /// One-line description for `spacelint --rules`.
    fn description(&self) -> &'static str;
    fn run(&self, ctx: &LintContext<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>);
}

/// The full registry, in code order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(rules::ontology::OntologyValidity),
        Box::new(rules::ontology::SpaceConceptRefs),
        Box::new(rules::training::DuplicateTraining),
        Box::new(rules::training::NearDuplicateTraining),
        Box::new(rules::training::ExampleFloor),
        Box::new(rules::patterns::DuplicatePatternRender),
        Box::new(rules::entities::EntityCollisions),
        Box::new(rules::entities::EmptyEntities),
        Box::new(rules::templates::ResponsePlaceholders),
        Box::new(rules::templates::MissingQueryTemplates),
        Box::new(rules::templates::TemplateParamScope),
        Box::new(rules::dialogue::LogicTableCompleteness),
        Box::new(rules::tree::TreeReachability),
        Box::new(rules::mapping::MappingIntegrity),
        Box::new(rules::kbcheck::KbIntegrity),
    ]
}

/// Runs every registered lint and returns the sorted diagnostic set.
pub fn run_all(ctx: &LintContext<'_>, cfg: &LintConfig) -> DiagnosticSet {
    let mut out = Vec::new();
    for lint in all_lints() {
        lint.run(ctx, cfg, &mut out);
    }
    let mut set = DiagnosticSet { diagnostics: out };
    set.sort();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_codes_are_unique_and_well_formed() {
        let mut seen = HashSet::new();
        for lint in all_lints() {
            assert!(!lint.codes().is_empty(), "{} declares no codes", lint.name());
            for code in lint.codes() {
                assert!(code.starts_with("OBCS") && code.len() == 7, "malformed code {code}");
                assert!(seen.insert(*code), "code {code} registered twice");
            }
        }
    }
}
