//! Query-pattern rules (`OBCS014`).

use std::collections::HashMap;

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS014: two intents ground patterns that render to the same canonical
/// phrase — the training generator will produce overlapping examples and
/// the intents are indistinguishable to users.
pub struct DuplicatePatternRender;

impl Lint for DuplicatePatternRender {
    fn name(&self) -> &'static str {
        "pattern-duplicates"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS014"]
    }

    fn description(&self) -> &'static str {
        "identical canonical pattern renders across intents"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // render → intent names that produce it
        let mut renders: HashMap<String, Vec<&str>> = HashMap::new();
        for intent in &ctx.space.intents {
            for pattern in intent.patterns() {
                // Skip patterns referencing unknown concepts; OBCS006
                // already reports those.
                if !pattern.required.iter().all(|&c| ctx.concept_exists(c)) {
                    continue;
                }
                let rendered = pattern.render(ctx.onto);
                let names = renders.entry(rendered).or_default();
                if !names.contains(&intent.name.as_str()) {
                    names.push(&intent.name);
                }
            }
        }
        let mut dups: Vec<(&String, &Vec<&str>)> =
            renders.iter().filter(|(_, names)| names.len() > 1).collect();
        dups.sort_by_key(|(render, _)| render.as_str());
        for (render, names) in dups {
            out.push(
                Diagnostic::new(
                    "OBCS014",
                    Severity::Warning,
                    Location::new("space", format!("pattern \"{render}\"")),
                    format!(
                        "pattern renders identically under {} intents: {}",
                        names.len(),
                        names.join(", ")
                    ),
                )
                .with_suggestion(
                    "merge the intents or differentiate the patterns' relation phrases",
                ),
            );
        }
    }
}
