//! Entity and synonym rules (`OBCS015`–`OBCS016`).

use std::collections::{HashMap, HashSet};

use obcs_ontology::ConceptId;

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS015: the same surface value is recognisable as two different
/// entities (an instance example or synonym collides across entity
/// definitions), making entity recognition ambiguous.
pub struct EntityCollisions;

impl Lint for EntityCollisions {
    fn name(&self) -> &'static str {
        "entity-collisions"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS015"]
    }

    fn description(&self) -> &'static str {
        "surface values recognisable as more than one entity"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // Concepts some intent actually captures or elicits: a collision
        // between two of these can change slot filling (warning); any
        // other collision is informational domain overlap.
        let elicitable: HashSet<ConceptId> = ctx
            .space
            .intents
            .iter()
            .flat_map(|i| i.required_entities.iter().chain(&i.optional_entities).copied())
            .collect();
        // lowercased value → (entity name, concept) pairs it belongs to
        let mut owners: HashMap<String, Vec<(&str, ConceptId)>> = HashMap::new();
        for entity in &ctx.space.entities {
            // Grouping entities intentionally re-list member values; only
            // concrete concept entities participate in the collision check.
            if !matches!(entity.kind, obcs_core::entities::EntityKind::Concept) {
                continue;
            }
            for value in entity.examples.iter().chain(&entity.synonyms) {
                let key = value.trim().to_lowercase();
                if key.is_empty() {
                    continue;
                }
                let names = owners.entry(key).or_default();
                if !names.iter().any(|(n, _)| *n == entity.name) {
                    names.push((&entity.name, entity.concept));
                }
            }
        }
        let mut collisions: Vec<(&String, &Vec<(&str, ConceptId)>)> =
            owners.iter().filter(|(_, names)| names.len() > 1).collect();
        collisions.sort_by_key(|(value, _)| value.as_str());
        for (value, names) in collisions {
            let elicitable_owners = names.iter().filter(|(_, c)| elicitable.contains(c)).count();
            let severity = if elicitable_owners >= 2 { Severity::Warning } else { Severity::Info };
            let listed: Vec<&str> = names.iter().map(|(n, _)| *n).collect();
            out.push(
                Diagnostic::new(
                    "OBCS015",
                    severity,
                    Location::new("space", format!("value \"{value}\"")),
                    format!(
                        "value is recognisable as {} entities: {}",
                        listed.len(),
                        listed.join(", ")
                    ),
                )
                .with_suggestion("disambiguate the instance values or drop the colliding synonym"),
            );
        }
    }
}

/// OBCS016: an entity for a key concept has no instance examples — the
/// recogniser can never match it, so every intent requiring it dead-ends
/// in elicitation loops.
pub struct EmptyEntities;

impl Lint for EmptyEntities {
    fn name(&self) -> &'static str {
        "entity-empty"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS016"]
    }

    fn description(&self) -> &'static str {
        "key-concept entities with no instance examples"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for entity in &ctx.space.entities {
            if !ctx.space.key_concepts.contains(&entity.concept) {
                continue;
            }
            if entity.examples.is_empty() {
                let kb_values = ctx.instance_count(entity.concept).unwrap_or(0);
                let message = if kb_values == 0 {
                    format!(
                        "key-concept entity `{}` has no instance examples and its KB table has no values",
                        entity.name
                    )
                } else {
                    format!(
                        "key-concept entity `{}` has no instance examples (KB holds {kb_values} values)",
                        entity.name
                    )
                };
                out.push(
                    Diagnostic::new(
                        "OBCS016",
                        Severity::Error,
                        Location::new("space", format!("entity `{}`", entity.name)),
                        message,
                    )
                    .with_suggestion(
                        "populate the KB table or raise max_entity_examples in the bootstrap config",
                    ),
                );
            }
        }
    }
}
