//! Response- and query-template rules (`OBCS017`–`OBCS019`).

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// The slots the serving stack substitutes in response templates:
/// `{topic}`/`{entities}`/`{results}` in fulfilment responses (NLG) and
/// `{agent}` in management responses.
const KNOWN_SLOTS: [&str; 4] = ["topic", "entities", "results", "agent"];

/// Extracts `{slot}` names from a response template.
fn slots(template: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        let tail = &rest[start + 1..];
        match tail.find('}') {
            Some(end) => {
                out.push(&tail[..end]);
                rest = &tail[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// OBCS017: a response template names a slot the dialogue layer never
/// substitutes, so the literal `{typo}` would be shown to users.
pub struct ResponsePlaceholders;

impl Lint for ResponsePlaceholders {
    fn name(&self) -> &'static str {
        "response-placeholders"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS017"]
    }

    fn description(&self) -> &'static str {
        "response templates naming slots the dialogue layer does not substitute"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for intent in &ctx.space.intents {
            // Entity-only intents never render their template: the tree
            // builds the proposal text itself.
            if matches!(intent.goal, obcs_core::intents::IntentGoal::EntityOnly(_)) {
                continue;
            }
            for slot in slots(&intent.response_template) {
                if !KNOWN_SLOTS.contains(&slot) {
                    out.push(
                        Diagnostic::new(
                            "OBCS017",
                            Severity::Error,
                            Location::new("space", format!("intent `{}`", intent.name)),
                            format!(
                                "response template references unknown slot `{{{slot}}}`; \
                                 known slots are {{topic}}, {{entities}}, {{results}}, {{agent}}"
                            ),
                        )
                        .with_suggestion("fix the slot name or escape the braces"),
                    );
                }
            }
        }
    }
}

/// OBCS018: a query intent has no structured-query templates and no
/// recorded skip reason — fulfilment would silently return nothing.
pub struct MissingQueryTemplates;

impl Lint for MissingQueryTemplates {
    fn name(&self) -> &'static str {
        "query-templates-missing"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS018"]
    }

    fn description(&self) -> &'static str {
        "query intents without templates and without a recorded skip reason"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for intent in &ctx.space.intents {
            if !intent.is_query() {
                continue;
            }
            if !ctx.space.templates_for(intent.id).is_empty() {
                continue;
            }
            let skipped = ctx.space.skipped_templates.iter().any(|(id, _, _)| *id == intent.id);
            if !skipped {
                out.push(
                    Diagnostic::new(
                        "OBCS018",
                        Severity::Error,
                        Location::new("space", format!("intent `{}`", intent.name)),
                        "query intent has no structured-query templates and no skip reason",
                    )
                    .with_suggestion(
                        "check the mapping covers the pattern's concepts, or record a skip reason",
                    ),
                );
            }
        }
    }
}

/// OBCS019: a query template requires a concept that is neither a required
/// nor an optional entity of its intent — slot filling can never supply
/// the value, so instantiation always fails.
pub struct TemplateParamScope;

impl Lint for TemplateParamScope {
    fn name(&self) -> &'static str {
        "template-param-scope"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS019"]
    }

    fn description(&self) -> &'static str {
        "query templates requiring concepts their intent never elicits"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for group in &ctx.space.templates {
            let Some(intent) = ctx.space.intent(group.intent) else {
                out.push(
                    Diagnostic::new(
                        "OBCS019",
                        Severity::Error,
                        Location::new("space", format!("templates[#{}]", group.intent.0)),
                        format!(
                            "template group references intent #{} which the space does not define",
                            group.intent.0
                        ),
                    )
                    .with_suggestion("regenerate the templates from the current intent set"),
                );
                continue;
            };
            for labeled in &group.templates {
                for concept in labeled.template.required_concepts() {
                    let in_scope = intent.required_entities.contains(&concept)
                        || intent.optional_entities.contains(&concept);
                    if !in_scope {
                        out.push(
                            Diagnostic::new(
                                "OBCS019",
                                Severity::Error,
                                Location::new(
                                    "space",
                                    format!(
                                        "intent `{}`, template \"{}\"",
                                        intent.name, labeled.topic
                                    ),
                                ),
                                format!(
                                    "template requires `{}` which the intent never captures or elicits",
                                    ctx.concept_label(concept)
                                ),
                            )
                            .with_suggestion(
                                "add the concept to the intent's required entities",
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::slots;

    #[test]
    fn extracts_slots() {
        assert_eq!(
            slots("Here are the {topic} for {entities}:\n{results}"),
            vec!["topic", "entities", "results"]
        );
        assert_eq!(slots("no slots"), Vec::<&str>::new());
        assert_eq!(slots("broken {unclosed"), Vec::<&str>::new());
    }
}
