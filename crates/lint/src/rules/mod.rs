//! The rule set, grouped by the artifact each rule primarily inspects.
//!
//! Code ranges:
//!
//! | range      | artifact                         |
//! |------------|----------------------------------|
//! | OBCS001–00x | ontology structure               |
//! | OBCS01x    | training examples and patterns   |
//! | OBCS015–01x | entities, response templates     |
//! | OBCS02x    | dialogue logic table             |
//! | OBCS03x    | dialogue tree                    |
//! | OBCS04x    | NLQ mapping                      |
//! | OBCS05x    | KB schema and data               |

pub mod dialogue;
pub mod entities;
pub mod kbcheck;
pub mod mapping;
pub mod ontology;
pub mod patterns;
pub mod templates;
pub mod training;
pub mod tree;
