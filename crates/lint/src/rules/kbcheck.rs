//! KB schema and data rules (`OBCS050`–`OBCS052`).

use obcs_kb::Value;

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS050: a table holds no rows (advisory — empty dependents starve
/// entity extraction). OBCS051: a foreign key's referenced table or
/// column does not exist. OBCS052: rows whose foreign-key value finds no
/// match in the referenced table (orphans), scanned up to the config cap.
pub struct KbIntegrity;

impl Lint for KbIntegrity {
    fn name(&self) -> &'static str {
        "kb-integrity"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS050", "OBCS051", "OBCS052"]
    }

    fn description(&self) -> &'static str {
        "empty tables, broken foreign-key declarations, and orphaned rows"
    }

    fn run(&self, ctx: &LintContext<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut names = ctx.kb.table_names();
        names.sort_unstable();
        for name in names {
            let Ok(table) = ctx.kb.table(name) else {
                continue;
            };
            let location = Location::new("kb", format!("table `{name}`"));
            if table.is_empty() {
                out.push(
                    Diagnostic::new(
                        "OBCS050",
                        Severity::Info,
                        location.clone(),
                        "table holds no rows",
                    )
                    .with_suggestion("empty tables starve entity extraction and query results"),
                );
            }
            for fk in &table.schema.foreign_keys {
                let target_ok = ctx
                    .kb
                    .table(&fk.references_table)
                    .map(|t| t.schema.column_index(&fk.references_column).is_some())
                    .unwrap_or(false);
                if !target_ok {
                    out.push(
                        Diagnostic::new(
                            "OBCS051",
                            Severity::Error,
                            location.clone(),
                            format!(
                                "foreign key `{}` references `{}.{}` which does not exist",
                                fk.column, fk.references_table, fk.references_column
                            ),
                        )
                        .with_suggestion("fix the schema declaration"),
                    );
                    continue;
                }
                let Some(col_idx) = table.schema.column_index(&fk.column) else {
                    out.push(
                        Diagnostic::new(
                            "OBCS051",
                            Severity::Error,
                            location.clone(),
                            format!(
                                "foreign key declares column `{}` which the table does not have",
                                fk.column
                            ),
                        )
                        .with_suggestion("fix the schema declaration"),
                    );
                    continue;
                };
                // Orphan scan, capped so huge KBs stay cheap to lint.
                let Ok(referenced) =
                    ctx.kb.distinct_values(&fk.references_table, &fk.references_column)
                else {
                    continue;
                };
                let mut orphans = 0usize;
                let mut first: Option<&Value> = None;
                for row in table.rows.iter().take(cfg.fk_scan_cap) {
                    let v = &row[col_idx];
                    if matches!(v, Value::Null) {
                        continue;
                    }
                    if !referenced.contains(v) {
                        orphans += 1;
                        first.get_or_insert(v);
                    }
                }
                if orphans > 0 {
                    out.push(
                        Diagnostic::new(
                            "OBCS052",
                            Severity::Error,
                            location.clone(),
                            format!(
                                "{orphans} row(s) hold `{}` values with no match in `{}.{}` (first: {:?})",
                                fk.column,
                                fk.references_table,
                                fk.references_column,
                                first.expect("orphans > 0 implies a first orphan"),
                            ),
                        )
                        .with_suggestion("repair the orphaned rows or relax the foreign key"),
                    );
                }
            }
        }
    }
}
