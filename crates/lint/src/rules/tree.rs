//! Dialogue-tree rules (`OBCS030`–`OBCS031`).
//!
//! The generated tree (paper Fig. 10) routes entity-only utterances
//! through proposals; these rules find the nodes users can never leave or
//! never reach.

use obcs_core::intents::IntentGoal;

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS030: an entity-only intent whose concept has no proposal list —
/// the node is a dead end: the tree detects the intent but has nothing to
/// propose, so every hit falls back. OBCS031: a proposal references an
/// intent that is unknown or undetectable (no training examples), i.e. an
/// unreachable branch of the tree.
pub struct TreeReachability;

impl Lint for TreeReachability {
    fn name(&self) -> &'static str {
        "tree-reachability"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS030", "OBCS031"]
    }

    fn description(&self) -> &'static str {
        "dead-end entity-only nodes and unreachable proposal branches"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for intent in &ctx.space.intents {
            let IntentGoal::EntityOnly(concept) = intent.goal else {
                continue;
            };
            let has_proposals =
                ctx.tree.proposals.iter().any(|(c, intents)| *c == concept && !intents.is_empty());
            if !has_proposals {
                out.push(
                    Diagnostic::new(
                        "OBCS030",
                        Severity::Warning,
                        Location::new("dialogue-tree", format!("intent `{}`", intent.name)),
                        format!(
                            "entity-only intent for `{}` has no proposals; every hit falls back",
                            ctx.concept_label(concept)
                        ),
                    )
                    .with_suggestion(
                        "ensure at least one query intent requires exactly this concept",
                    ),
                );
            }
        }
        for (concept, intents) in &ctx.tree.proposals {
            for proposed in intents {
                match ctx.space.intent(*proposed) {
                    None => {
                        out.push(
                            Diagnostic::new(
                                "OBCS031",
                                Severity::Error,
                                Location::new(
                                    "dialogue-tree",
                                    format!("proposals for `{}`", ctx.concept_label(*concept)),
                                ),
                                format!(
                                    "proposal references intent #{} which the space does not define",
                                    proposed.0
                                ),
                            )
                            .with_suggestion("regenerate the tree from the current space"),
                        );
                    }
                    Some(intent) => {
                        let detectable = ctx.space.training.iter().any(|e| e.intent == *proposed);
                        // A proposed intent is fulfilled directly on "yes",
                        // so missing training alone does not break the
                        // branch — but it does mean the intent is reachable
                        // only through proposals, worth surfacing.
                        if !detectable {
                            out.push(
                                Diagnostic::new(
                                    "OBCS031",
                                    Severity::Info,
                                    Location::new(
                                        "dialogue-tree",
                                        format!("intent `{}`", intent.name),
                                    ),
                                    "intent is reachable only via proposals; it has no training examples of its own",
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}
