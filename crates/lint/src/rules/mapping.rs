//! NLQ-mapping rules (`OBCS040`–`OBCS043`).
//!
//! The ontology-to-schema mapping is the bridge the structured-query
//! generator and the NLQ interpreter both stand on; a stale binding here
//! turns every downstream query into a runtime error.

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS040: a concept maps to a table the KB does not have. OBCS041: a
/// concept's label column is missing from its table. OBCS042: a join-path
/// edge references a missing table or column. OBCS043: an object property
/// between two mapped concepts has no join realisation, so relationship
/// queries over it cannot be generated.
pub struct MappingIntegrity;

impl Lint for MappingIntegrity {
    fn name(&self) -> &'static str {
        "mapping-integrity"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS040", "OBCS041", "OBCS042", "OBCS043"]
    }

    fn description(&self) -> &'static str {
        "mapping bindings to missing tables/columns and unjoined relationships"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let has_column = |table: &str, column: &str| -> bool {
            ctx.kb.table(table).map(|t| t.schema.column_index(column).is_some()).unwrap_or(false)
        };
        for concept in ctx.onto.concepts() {
            let Some(table) = ctx.mapping.table(concept.id) else {
                continue;
            };
            let location = Location::new("mapping", format!("concept `{}`", concept.name));
            if !ctx.kb.has_table(table) {
                out.push(
                    Diagnostic::new(
                        "OBCS040",
                        Severity::Error,
                        location,
                        format!("maps to table `{table}` which the KB does not have"),
                    )
                    .with_suggestion("re-infer the mapping or rename the table"),
                );
                continue;
            }
            if let Some(label) = ctx.mapping.label(concept.id) {
                if !has_column(table, label) {
                    out.push(
                        Diagnostic::new(
                            "OBCS041",
                            Severity::Error,
                            location,
                            format!("label column `{table}.{label}` does not exist"),
                        )
                        .with_suggestion("re-infer the mapping or fix the label column"),
                    );
                }
            }
        }
        for prop in ctx.onto.object_properties() {
            let location = Location::new("mapping", format!("object property `{}`", prop.name));
            match ctx.mapping.join(prop.id) {
                Some(path) => {
                    for edge in &path.steps {
                        for (table, column) in [
                            (&edge.left_table, &edge.left_column),
                            (&edge.right_table, &edge.right_column),
                        ] {
                            if !has_column(table, column) {
                                out.push(
                                    Diagnostic::new(
                                        "OBCS042",
                                        Severity::Error,
                                        location.clone(),
                                        format!(
                                            "join path uses `{table}.{column}` which does not exist"
                                        ),
                                    )
                                    .with_suggestion(
                                        "re-infer the mapping against the current schema",
                                    ),
                                );
                            }
                        }
                    }
                }
                None => {
                    // Only a problem when both endpoints are physically
                    // mapped: the relationship is realisable but unbound.
                    let both_mapped = ctx.mapping.table(prop.source).is_some()
                        && ctx.mapping.table(prop.target).is_some();
                    if both_mapped && !prop.kind.is_hierarchical() {
                        out.push(
                            Diagnostic::new(
                                "OBCS043",
                                Severity::Warning,
                                location,
                                format!(
                                    "relationship `{}` → `{}` has no join path; relationship \
                                     queries over it cannot be generated",
                                    ctx.concept_label(prop.source),
                                    ctx.concept_label(prop.target)
                                ),
                            )
                            .with_suggestion(
                                "add a foreign key (or bridge table) between the two tables",
                            ),
                        );
                    }
                }
            }
        }
    }
}
