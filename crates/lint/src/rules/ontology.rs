//! Ontology-structure rules (`OBCS001`–`OBCS006`).
//!
//! `OntologyValidity` unifies the pre-existing `obcs_ontology::validate`
//! pass into the diagnostic framework: each `ValidationIssue` kind maps to
//! a stable code.

use obcs_ontology::validate::{validate, ValidationIssue};

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS001–OBCS005: the structural ontology checks of
/// [`mod@obcs_ontology::validate`], reframed as diagnostics.
pub struct OntologyValidity;

impl Lint for OntologyValidity {
    fn name(&self) -> &'static str {
        "ontology-validity"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS001", "OBCS002", "OBCS003", "OBCS004", "OBCS005"]
    }

    fn description(&self) -> &'static str {
        "structural ontology problems: hierarchy cycles, isolated concepts, degenerate unions"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for issue in validate(ctx.onto) {
            let (code, severity, item, suggestion) = match &issue {
                ValidationIssue::HierarchyCycle(c) => (
                    "OBCS001",
                    Severity::Error,
                    format!("concept `{}`", ctx.concept_label(*c)),
                    "break the isA/unionOf cycle; hierarchies must be acyclic",
                ),
                ValidationIssue::IsolatedConcept(c) => (
                    "OBCS002",
                    Severity::Warning,
                    format!("concept `{}`", ctx.concept_label(*c)),
                    "add properties or relationships, or remove the concept",
                ),
                ValidationIssue::DegenerateUnion { parent, .. } => (
                    "OBCS003",
                    Severity::Error,
                    format!("union `{}`", ctx.concept_label(*parent)),
                    "a union must list at least two members",
                ),
                ValidationIssue::DuplicateUnionMember { parent, .. } => (
                    "OBCS004",
                    Severity::Error,
                    format!("union `{}`", ctx.concept_label(*parent)),
                    "remove the duplicate unionOf edge",
                ),
                ValidationIssue::MixedHierarchy { parent, .. } => (
                    "OBCS005",
                    Severity::Error,
                    format!("concept `{}`", ctx.concept_label(*parent)),
                    "use either isA or unionOf for a child, not both",
                ),
            };
            out.push(
                Diagnostic::new(
                    code,
                    severity,
                    Location::new("ontology", item),
                    issue.render(ctx.onto),
                )
                .with_suggestion(suggestion),
            );
        }
    }
}

/// OBCS006: the space references a concept id the ontology does not know.
///
/// Guards every other lint: a stale space (e.g. linted against the wrong
/// ontology version) fails loudly here instead of producing nonsense
/// downstream.
pub struct SpaceConceptRefs;

impl Lint for SpaceConceptRefs {
    fn name(&self) -> &'static str {
        "space-concept-refs"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS006"]
    }

    fn description(&self) -> &'static str {
        "conversation-space references to concept ids missing from the ontology"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut report = |id: obcs_ontology::ConceptId, item: String| {
            if !ctx.concept_exists(id) {
                out.push(
                    Diagnostic::new(
                        "OBCS006",
                        Severity::Error,
                        Location::new("space", item),
                        format!("references concept #{} which the ontology does not define", id.0),
                    )
                    .with_suggestion("re-bootstrap the space against the current ontology"),
                );
            }
        };
        for (i, &c) in ctx.space.key_concepts.iter().enumerate() {
            report(c, format!("key_concepts[{i}]"));
        }
        for d in &ctx.space.dependents {
            report(d.concept, format!("dependent `{}`", ctx.concept_label(d.concept)));
        }
        for e in &ctx.space.entities {
            report(e.concept, format!("entity `{}`", e.name));
        }
        for intent in &ctx.space.intents {
            for &c in intent.required_entities.iter().chain(&intent.optional_entities) {
                report(c, format!("intent `{}`", intent.name));
            }
        }
    }
}
