//! Dialogue-logic-table rules (`OBCS020`–`OBCS022`).
//!
//! The logic table is the declarative source the dialogue tree is
//! generated from (paper §5.2); holes here become dead conversations at
//! serving time.

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

/// OBCS020: a required entity has no KB values to validate answers
/// against *and* an empty elicitation prompt — the agent would ask the
/// user nothing and accept nothing. OBCS021: a row has no representative
/// example, which leaves designers reviewing the table blind. OBCS022: a
/// row references an intent the space does not define.
pub struct LogicTableCompleteness;

impl Lint for LogicTableCompleteness {
    fn name(&self) -> &'static str {
        "logic-table-completeness"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS020", "OBCS021", "OBCS022"]
    }

    fn description(&self) -> &'static str {
        "logic-table rows with unelicitable entities, missing examples, or unknown intents"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for row in &ctx.logic.rows {
            let location = Location::new("logic-table", format!("row `{}`", row.intent_name));
            if ctx.space.intent(row.intent).is_none() {
                out.push(
                    Diagnostic::new(
                        "OBCS022",
                        Severity::Error,
                        location.clone(),
                        format!(
                            "row references intent #{} which the space does not define",
                            row.intent.0
                        ),
                    )
                    .with_suggestion("regenerate the logic table from the current space"),
                );
            }
            for req in &row.required {
                let has_values = ctx.instance_count(req.concept).unwrap_or(0) > 0;
                if req.elicitation.trim().is_empty() && !has_values {
                    out.push(
                        Diagnostic::new(
                            "OBCS020",
                            Severity::Error,
                            location.clone(),
                            format!(
                                "required entity `{}` has no KB values and no elicitation prompt",
                                ctx.concept_label(req.concept)
                            ),
                        )
                        .with_suggestion(
                            "set an elicitation prompt via set_elicitation, or populate the KB",
                        ),
                    );
                } else if req.elicitation.trim().is_empty() {
                    out.push(
                        Diagnostic::new(
                            "OBCS020",
                            Severity::Warning,
                            location.clone(),
                            format!(
                                "required entity `{}` has an empty elicitation prompt",
                                ctx.concept_label(req.concept)
                            ),
                        )
                        .with_suggestion("set an elicitation prompt via set_elicitation"),
                    );
                }
            }
            let is_management = ctx
                .space
                .intent(row.intent)
                .map(|i| matches!(i.goal, obcs_core::intents::IntentGoal::ConversationManagement))
                .unwrap_or(false);
            if row.example.trim().is_empty() && !is_management {
                out.push(
                    Diagnostic::new(
                        "OBCS021",
                        Severity::Warning,
                        location,
                        "row has no representative example utterance",
                    )
                    .with_suggestion(
                        "usually a symptom of an intent with no training examples (see OBCS013)",
                    ),
                );
            }
        }
    }
}
