//! Training-example rules (`OBCS010`–`OBCS013`).
//!
//! The classifier is only as good as its training set; these rules catch
//! the degradations the paper's SME-feedback loop exists to fix —
//! cross-intent label noise and starved intents.

use std::collections::HashMap;

use obcs_core::IntentId;

use crate::context::LintContext;
use crate::diag::{Diagnostic, Location, Severity};
use crate::lint::{Lint, LintConfig};

fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ").to_lowercase()
}

/// Sorted, deduplicated token set — the order-insensitive signature used
/// for the near-duplicate check.
fn token_signature(text: &str) -> String {
    let mut tokens: Vec<String> = text
        .split_whitespace()
        .map(|t| t.trim_matches(|c: char| !c.is_alphanumeric()).to_lowercase())
        .filter(|t| !t.is_empty())
        .collect();
    tokens.sort();
    tokens.dedup();
    tokens.join(" ")
}

fn intent_name(ctx: &LintContext<'_>, id: IntentId) -> String {
    ctx.space
        .intent(id)
        .map(|i| i.name.clone())
        .unwrap_or_else(|| format!("<unknown intent #{}>", id.0))
}

/// OBCS010: the same training text (modulo case/whitespace) is labelled
/// with two different intents — direct label noise for the classifier.
pub struct DuplicateTraining;

impl Lint for DuplicateTraining {
    fn name(&self) -> &'static str {
        "training-duplicates"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS010"]
    }

    fn description(&self) -> &'static str {
        "identical training examples labelled with different intents"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // normalized text → (first index, intents seen, already reported)
        let mut seen: HashMap<String, (usize, Vec<IntentId>, bool)> = HashMap::new();
        for (i, ex) in ctx.space.training.iter().enumerate() {
            let key = normalize(&ex.text);
            let entry = seen.entry(key).or_insert_with(|| (i, Vec::new(), false));
            if !entry.1.contains(&ex.intent) {
                entry.1.push(ex.intent);
            }
            if entry.1.len() > 1 && !entry.2 {
                entry.2 = true;
                let intents: Vec<String> = entry.1.iter().map(|&id| intent_name(ctx, id)).collect();
                out.push(
                    Diagnostic::new(
                        "OBCS010",
                        Severity::Error,
                        Location::new("space", format!("training[{i}]")),
                        format!(
                            "example \"{}\" is labelled with {} different intents: {}",
                            ex.text,
                            entry.1.len(),
                            intents.join(", ")
                        ),
                    )
                    .with_suggestion(
                        "keep the example under one intent; ambiguous phrasings confuse the classifier",
                    ),
                );
            }
        }
    }
}

/// OBCS011: two examples of different intents are token-identical (same
/// word set, different surface order) — near-duplicates the exact check
/// misses.
pub struct NearDuplicateTraining;

impl Lint for NearDuplicateTraining {
    fn name(&self) -> &'static str {
        "training-near-duplicates"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS011"]
    }

    fn description(&self) -> &'static str {
        "token-identical training examples (reordered words) across intents"
    }

    fn run(&self, ctx: &LintContext<'_>, _cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        // signature → (first index, intents, exact texts, reported)
        let mut seen: HashMap<String, (usize, Vec<IntentId>, Vec<String>, bool)> = HashMap::new();
        for (i, ex) in ctx.space.training.iter().enumerate() {
            let sig = token_signature(&ex.text);
            if sig.is_empty() {
                continue;
            }
            let entry = seen.entry(sig).or_insert_with(|| (i, Vec::new(), Vec::new(), false));
            if !entry.1.contains(&ex.intent) {
                entry.1.push(ex.intent);
            }
            let norm = normalize(&ex.text);
            if !entry.2.contains(&norm) {
                entry.2.push(norm);
            }
            // Only flag reorderings the exact-duplicate lint does not
            // already cover: distinct surface texts, distinct intents.
            if entry.1.len() > 1 && entry.2.len() > 1 && !entry.3 {
                entry.3 = true;
                let intents: Vec<String> = entry.1.iter().map(|&id| intent_name(ctx, id)).collect();
                out.push(
                    Diagnostic::new(
                        "OBCS011",
                        Severity::Warning,
                        Location::new("space", format!("training[{i}]")),
                        format!(
                            "example \"{}\" uses the same words as an example of another intent ({})",
                            ex.text,
                            intents.join(", ")
                        ),
                    )
                    .with_suggestion("rephrase one of the examples to separate the intents"),
                );
            }
        }
    }
}

/// OBCS012 (warning) / OBCS013 (error): intents with too few, or zero,
/// training examples. A zero-example intent is unreachable by the
/// classifier — it can never be detected.
pub struct ExampleFloor;

impl Lint for ExampleFloor {
    fn name(&self) -> &'static str {
        "training-floor"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS012", "OBCS013"]
    }

    fn description(&self) -> &'static str {
        "intents with too few (or zero) training examples"
    }

    fn run(&self, ctx: &LintContext<'_>, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        let mut counts: HashMap<IntentId, usize> = HashMap::new();
        for ex in &ctx.space.training {
            *counts.entry(ex.intent).or_insert(0) += 1;
        }
        for intent in &ctx.space.intents {
            // Management intents are matched by the dialogue layer's
            // pattern catalog, not the classifier.
            if matches!(intent.goal, obcs_core::intents::IntentGoal::ConversationManagement) {
                continue;
            }
            let n = counts.get(&intent.id).copied().unwrap_or(0);
            let location = Location::new("space", format!("intent `{}`", intent.name));
            if n == 0 {
                out.push(
                    Diagnostic::new(
                        "OBCS013",
                        Severity::Error,
                        location,
                        "intent has no training examples; the classifier can never detect it",
                    )
                    .with_suggestion(
                        "add SME examples or check the training generator covers this intent",
                    ),
                );
            } else if n < cfg.example_floor {
                out.push(
                    Diagnostic::new(
                        "OBCS012",
                        Severity::Warning,
                        location,
                        format!(
                            "intent has only {n} training example(s); floor is {}",
                            cfg.example_floor
                        ),
                    )
                    .with_suggestion("raise examples_per_pattern or add SME examples"),
                );
            }
        }
    }
}
