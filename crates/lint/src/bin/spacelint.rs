//! `spacelint` — lint committed conversation-space artifacts.
//!
//! ```text
//! spacelint <space.json> [kb.json] [--json] [--deny-warnings] [--floor N]
//! ```
//!
//! The KB defaults to a `*_kb.json` sibling of the space file (e.g.
//! `artifacts/mdx_space.json` → `artifacts/mdx_kb.json`). The ontology is
//! reconstructed from the space's `ontology_name`; only the built-in
//! `mdx` ontology can currently be reconstructed. The mapping is
//! re-inferred from the ontology and KB, exactly as the bootstrapper
//! infers it.
//!
//! Exit status: 0 when the gate passes, 1 when it fails, 2 on usage or
//! I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use obcs_core::ConversationSpace;
use obcs_kb::KnowledgeBase;
use obcs_lint::{run_all, LintConfig, LintContext};
use obcs_nlq::OntologyMapping;
use obcs_ontology::Ontology;

struct Args {
    space_path: PathBuf,
    kb_path: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    floor: Option<usize>,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: spacelint <space.json> [kb.json] [--json] [--deny-warnings] [--floor N]\n       spacelint --rules"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut json = false;
    let mut deny_warnings = false;
    let mut floor = None;
    let mut list_rules = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--rules" => list_rules = true,
            "--floor" => {
                i += 1;
                let value = argv.get(i).ok_or("--floor needs a value")?;
                floor = Some(value.parse::<usize>().map_err(|_| "--floor needs a number")?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => positional.push(path),
        }
        i += 1;
    }
    if list_rules {
        return Ok(Args {
            space_path: PathBuf::new(),
            kb_path: None,
            json,
            deny_warnings,
            floor,
            list_rules,
        });
    }
    let space_path = positional.first().ok_or_else(|| usage().to_string())?.into();
    Ok(Args {
        space_path,
        kb_path: positional.get(1).map(PathBuf::from),
        json,
        deny_warnings,
        floor,
        list_rules,
    })
}

/// `artifacts/mdx_space.json` → `artifacts/mdx_kb.json`.
fn sibling_kb(space_path: &Path) -> Option<PathBuf> {
    let stem = space_path.file_stem()?.to_str()?;
    let kb_name = match stem.strip_suffix("_space") {
        Some(prefix) => format!("{prefix}_kb.json"),
        None => format!("{stem}_kb.json"),
    };
    let candidate = space_path.with_file_name(kb_name);
    candidate.exists().then_some(candidate)
}

fn load(args: &Args) -> Result<(ConversationSpace, KnowledgeBase, Ontology), String> {
    let space_text = std::fs::read_to_string(&args.space_path)
        .map_err(|e| format!("cannot read {}: {e}", args.space_path.display()))?;
    let space: ConversationSpace = serde_json::from_str(&space_text)
        .map_err(|e| format!("cannot parse {}: {e}", args.space_path.display()))?;

    let kb_path = match &args.kb_path {
        Some(p) => p.clone(),
        None => sibling_kb(&args.space_path).ok_or_else(|| {
            format!("no KB given and no `*_kb.json` sibling of {} found", args.space_path.display())
        })?,
    };
    let kb_text = std::fs::read_to_string(&kb_path)
        .map_err(|e| format!("cannot read {}: {e}", kb_path.display()))?;
    let kb = KnowledgeBase::from_json(&kb_text)
        .map_err(|e| format!("cannot parse {}: {e}", kb_path.display()))?;

    let onto = match space.ontology_name.as_str() {
        "mdx" => obcs_mdx::ontology::build_mdx_ontology(),
        other => {
            return Err(format!("cannot reconstruct ontology `{other}`; only `mdx` is supported"));
        }
    };
    Ok((space, kb, onto))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            if msg != usage() {
                eprintln!("{}", usage());
            }
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for lint in obcs_lint::all_lints() {
            println!("{:<28} {:<40} {}", lint.name(), lint.codes().join(","), lint.description());
        }
        return ExitCode::SUCCESS;
    }

    let (space, kb, onto) = match load(&args) {
        Ok(loaded) => loaded,
        Err(msg) => {
            eprintln!("spacelint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mapping = OntologyMapping::infer(&onto, &kb);
    let ctx = LintContext::new(&onto, &kb, &mapping, &space);
    let mut cfg = LintConfig::default();
    if let Some(floor) = args.floor {
        cfg.example_floor = floor;
    }
    let report = run_all(&ctx, &cfg);

    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text());
    }

    match report.gate(args.deny_warnings) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spacelint: {msg}");
            ExitCode::FAILURE
        }
    }
}
