//! One test per lint code: a targeted synthetic violation must be caught
//! under its stable `OBCS0xx` code, and the untouched baseline must stay
//! clean.

mod common;

use common::{
    fixture, fixture_broken_fk_decl, fixture_orphan_row, fixture_unjoined_relation, Fixture,
};
use obcs_core::concepts::CompletionMetadata;
use obcs_core::entities::{EntityDef, EntityKind, SynonymDict};
use obcs_core::intents::IntentId;
use obcs_core::training::{ExampleSource, TrainingExample};
use obcs_core::ConversationSpace;
use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::KnowledgeBase;
use obcs_lint::{run_all, DiagnosticSet, LintConfig, LintContext, Severity};
use obcs_nlq::mapping::{JoinEdge, JoinPath};
use obcs_nlq::{OntologyMapping, QueryTemplate};
use obcs_ontology::{ConceptId, Ontology, OntologyBuilder};

fn lint(f: &Fixture) -> DiagnosticSet {
    let ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    run_all(&ctx, &LintConfig::default())
}

fn empty_space(name: &str) -> ConversationSpace {
    ConversationSpace {
        ontology_name: name.to_string(),
        key_concepts: vec![],
        dependents: vec![],
        intents: vec![],
        training: vec![],
        entities: vec![],
        synonyms: SynonymDict::new(),
        templates: vec![],
        completion: CompletionMetadata::build(&[]),
        skipped_templates: vec![],
    }
}

/// Lints an ontology in isolation (empty KB/mapping/space).
fn lint_onto(onto: &Ontology) -> DiagnosticSet {
    let kb = KnowledgeBase::new();
    let mapping = OntologyMapping::default();
    let space = empty_space("t");
    let ctx = LintContext::new(onto, &kb, &mapping, &space);
    run_all(&ctx, &LintConfig::default())
}

#[test]
fn baseline_fixture_is_clean() {
    let report = lint(&fixture());
    assert!(
        report.gate(true).is_ok(),
        "baseline fixture must lint clean:\n{}",
        report.render_text()
    );
}

#[test]
fn obcs001_hierarchy_cycle() {
    let onto = OntologyBuilder::new("t").is_a("A", "B").is_a("B", "A").build_unchecked();
    assert!(lint_onto(&onto).has_code("OBCS001"));
}

#[test]
fn obcs002_isolated_concept() {
    let onto = OntologyBuilder::new("t").concept("Lonely").build_unchecked();
    assert!(lint_onto(&onto).has_code("OBCS002"));
}

#[test]
fn obcs003_degenerate_union() {
    let onto = OntologyBuilder::new("t").union("Parent", &["Only"]).build_unchecked();
    assert!(lint_onto(&onto).has_code("OBCS003"));
}

#[test]
fn obcs004_duplicate_union_member() {
    let onto = OntologyBuilder::new("t").union("Parent", &["C", "D", "C"]).build_unchecked();
    assert!(lint_onto(&onto).has_code("OBCS004"));
}

#[test]
fn obcs005_mixed_hierarchy() {
    let onto = OntologyBuilder::new("t")
        .union("Parent", &["C", "D"])
        .is_a("C", "Parent")
        .build_unchecked();
    assert!(lint_onto(&onto).has_code("OBCS005"));
}

#[test]
fn obcs006_unknown_concept_reference() {
    let mut f = fixture();
    f.space.key_concepts.push(ConceptId(99));
    assert!(lint(&f).has_code("OBCS006"));
}

#[test]
fn obcs010_duplicate_example_across_intents() {
    let mut f = fixture();
    f.space.training.push(TrainingExample {
        text: "Precautions of Aspirin".to_string(), // case-variant of an intent-0 example
        intent: IntentId(1),
        source: ExampleSource::SmeAugmented,
    });
    let report = lint(&f);
    assert!(report.has_code("OBCS010"), "{}", report.render_text());
}

#[test]
fn obcs011_reordered_example_across_intents() {
    let mut f = fixture();
    f.space.training.push(TrainingExample {
        text: "aspirin, of precautions".to_string(),
        intent: IntentId(1),
        source: ExampleSource::SmeAugmented,
    });
    let report = lint(&f);
    assert!(report.has_code("OBCS011"), "{}", report.render_text());
}

#[test]
fn obcs012_below_example_floor() {
    let mut f = fixture();
    // Leave exactly one example for intent 0 (floor is 3).
    let mut kept = false;
    f.space.training.retain(|e| {
        if e.intent != IntentId(0) {
            return true;
        }
        !std::mem::replace(&mut kept, true)
    });
    let report = lint(&f);
    assert!(report.has_code("OBCS012"), "{}", report.render_text());
    assert!(!report.has_code("OBCS013"));
}

#[test]
fn obcs013_zero_examples() {
    let mut f = fixture();
    f.space.training.retain(|e| e.intent != IntentId(0));
    let report = lint(&f);
    assert!(report.has_code("OBCS013"), "{}", report.render_text());
}

#[test]
fn obcs014_identical_pattern_renders() {
    let mut f = fixture();
    let mut clone = f.space.intents[0].clone();
    clone.id = IntentId(2);
    clone.name = "Precautions of Drug (again)".to_string();
    f.space.intents.push(clone);
    // Keep the clone detectable so OBCS013 stays out of the picture.
    for text in ["drug warnings", "any warnings", "warnings please"] {
        f.space.training.push(TrainingExample {
            text: text.to_string(),
            intent: IntentId(2),
            source: ExampleSource::SmeAugmented,
        });
    }
    let report = lint(&f);
    assert!(report.has_code("OBCS014"), "{}", report.render_text());
}

#[test]
fn obcs015_entity_value_collision() {
    let mut f = fixture();
    let indication = f.indication();
    // "aspirin" now also names an Indication instance, and Indication is
    // elicitable (an optional entity of the query intent) — a warning.
    f.space.entities.push(EntityDef {
        concept: indication,
        name: "Indication".to_string(),
        kind: EntityKind::Concept,
        examples: vec!["aspirin".to_string()],
        synonyms: vec![],
    });
    f.space.intents[0].optional_entities.push(indication);
    let report = lint(&f);
    let hits = report.with_code("OBCS015");
    assert!(!hits.is_empty(), "{}", report.render_text());
    assert!(hits.iter().any(|d| d.severity == Severity::Warning));
}

#[test]
fn obcs015_unelicitable_collision_is_info() {
    let mut f = fixture();
    // Same collision, but Indication is never captured by any intent: the
    // ambiguity cannot change slot filling, so it is advisory only.
    f.space.entities.push(EntityDef {
        concept: f.indication(),
        name: "Indication".to_string(),
        kind: EntityKind::Concept,
        examples: vec!["aspirin".to_string()],
        synonyms: vec![],
    });
    let report = lint(&f);
    let hits = report.with_code("OBCS015");
    assert!(!hits.is_empty(), "{}", report.render_text());
    assert!(hits.iter().all(|d| d.severity == Severity::Info));
}

#[test]
fn obcs016_key_entity_without_examples() {
    let mut f = fixture();
    f.space.entities[0].examples.clear();
    let report = lint(&f);
    assert!(report.has_code("OBCS016"), "{}", report.render_text());
}

#[test]
fn obcs017_unknown_response_slot() {
    let mut f = fixture();
    f.space.intents[0].response_template = "Here are the {resuts}".to_string();
    let report = lint(&f);
    assert!(report.has_code("OBCS017"), "{}", report.render_text());
}

#[test]
fn obcs018_query_intent_without_templates() {
    let mut f = fixture();
    f.space.templates.clear();
    let report = lint(&f);
    assert!(report.has_code("OBCS018"), "{}", report.render_text());
}

#[test]
fn obcs018_suppressed_by_skip_reason() {
    let mut f = fixture();
    f.space.templates.clear();
    f.space.skipped_templates.push((
        IntentId(0),
        "Precautions".to_string(),
        "no mapping for Precaution".to_string(),
    ));
    assert!(!lint(&f).has_code("OBCS018"));
}

#[test]
fn obcs019_template_param_outside_intent_scope() {
    let mut f = fixture();
    let indication = f.indication();
    let sql = "SELECT name FROM indication WHERE name = '<@Indication>'".to_string();
    f.space.templates[0].templates[0].template = QueryTemplate::new(sql, vec![indication], &f.onto);
    let report = lint(&f);
    assert!(report.has_code("OBCS019"), "{}", report.render_text());
}

#[test]
fn obcs020_empty_elicitation() {
    let f = fixture();
    let mut ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    ctx.logic.rows[0].required[0].elicitation = String::new();
    let report = run_all(&ctx, &LintConfig::default());
    let hits = report.with_code("OBCS020");
    assert!(!hits.is_empty(), "{}", report.render_text());
    // Drug instances exist in the KB, so the empty prompt is a warning.
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
}

#[test]
fn obcs020_unelicitable_and_valueless_is_error() {
    let mut f = fixture();
    // A concept with no KB table: no values to match answers against.
    let ghost = {
        let mut onto = f.onto.clone();
        let id = onto.add_concept("Ghost").expect("add concept");
        onto.add_data_property(id, "name").expect("add property");
        f.onto = onto;
        id
    };
    f.space.intents[0].required_entities.push(ghost);
    let mut ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    let ghost_slot = ctx.logic.rows[0]
        .required
        .iter_mut()
        .find(|r| r.concept == ghost)
        .expect("ghost is required");
    ghost_slot.elicitation = String::new();
    let report = run_all(&ctx, &LintConfig::default());
    assert!(
        report.with_code("OBCS020").iter().any(|d| d.severity == Severity::Error),
        "{}",
        report.render_text()
    );
}

#[test]
fn obcs021_row_without_example() {
    let mut f = fixture();
    f.space.training.retain(|e| e.intent != IntentId(1));
    let report = lint(&f);
    assert!(report.has_code("OBCS021"), "{}", report.render_text());
}

#[test]
fn obcs022_row_for_unknown_intent() {
    let f = fixture();
    let mut ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    ctx.logic.rows[0].intent = IntentId(77);
    let report = run_all(&ctx, &LintConfig::default());
    assert!(report.has_code("OBCS022"), "{}", report.render_text());
}

#[test]
fn obcs030_entity_only_dead_end() {
    let mut f = fixture();
    // No query intent requires exactly [Drug] any more, so the tree has
    // nothing to propose for entity-only drug mentions.
    let precaution = f.precaution();
    f.space.intents[0].required_entities.push(precaution);
    let report = lint(&f);
    assert!(report.has_code("OBCS030"), "{}", report.render_text());
}

#[test]
fn obcs031_proposal_for_unknown_intent() {
    let f = fixture();
    let mut ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    let drug = f.drug();
    ctx.tree.proposals.push((drug, vec![IntentId(55)]));
    let report = run_all(&ctx, &LintConfig::default());
    assert!(
        report.with_code("OBCS031").iter().any(|d| d.severity == Severity::Error),
        "{}",
        report.render_text()
    );
}

#[test]
fn obcs040_mapped_table_missing() {
    let mut f = fixture();
    f.mapping.set_table(f.drug(), "no_such_table");
    let report = lint(&f);
    assert!(report.has_code("OBCS040"), "{}", report.render_text());
}

#[test]
fn obcs041_label_column_missing() {
    let mut f = fixture();
    f.mapping.set_label_column(f.drug(), "no_such_column");
    let report = lint(&f);
    assert!(report.has_code("OBCS041"), "{}", report.render_text());
}

#[test]
fn obcs042_join_path_uses_missing_column() {
    let mut f = fixture();
    let prop = f
        .onto
        .object_properties()
        .iter()
        .find(|p| p.name == "hasPrecaution")
        .expect("fixture relation")
        .id;
    f.mapping.set_join(
        prop,
        JoinPath::direct(JoinEdge {
            left_table: "drug".to_string(),
            left_column: "bogus".to_string(),
            right_table: "precaution".to_string(),
            right_column: "drug_id".to_string(),
        }),
    );
    let report = lint(&f);
    assert!(report.has_code("OBCS042"), "{}", report.render_text());
}

#[test]
fn obcs043_relationship_without_join() {
    let report = lint(&fixture_unjoined_relation());
    assert!(report.has_code("OBCS043"), "{}", report.render_text());
}

#[test]
fn obcs050_empty_table() {
    let mut f = fixture();
    f.kb.create_table(TableSchema::new("audit_log").column("entry", ColumnType::Text))
        .expect("create table");
    let report = lint(&f);
    assert!(report.has_code("OBCS050"), "{}", report.render_text());
}

#[test]
fn obcs051_fk_references_missing_table() {
    let report = lint(&fixture_broken_fk_decl());
    assert!(report.has_code("OBCS051"), "{}", report.render_text());
}

#[test]
fn obcs052_orphaned_fk_rows() {
    let report = lint(&fixture_orphan_row());
    assert!(report.has_code("OBCS052"), "{}", report.render_text());
}
