//! The lint pass over a freshly bootstrapped MDX world: the pipeline's
//! own output must produce zero errors and zero warnings — the same
//! guarantee `spacelint --deny-warnings` enforces on the committed
//! artifacts.

use obcs_lint::{run_all, LintConfig, LintContext, Severity};
use obcs_mdx::data::MdxDataConfig;
use obcs_mdx::ConversationalMdx;

#[test]
fn bootstrapped_mdx_space_lints_clean() {
    let (onto, kb, mapping, space) =
        ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 40, seed: 20200614 });
    let ctx = LintContext::new(&onto, &kb, &mapping, &space);
    let report = run_all(&ctx, &LintConfig::default());
    assert_eq!(
        report.count(Severity::Error),
        0,
        "bootstrapped space must have no lint errors:\n{}",
        report.render_text()
    );
    assert_eq!(
        report.count(Severity::Warning),
        0,
        "bootstrapped space must have no lint warnings:\n{}",
        report.render_text()
    );
}

#[test]
fn report_round_trips_through_json() {
    let (onto, kb, mapping, space) =
        ConversationalMdx::bootstrap_space(MdxDataConfig { drugs: 20, seed: 7 });
    let ctx = LintContext::new(&onto, &kb, &mapping, &space);
    let report = run_all(&ctx, &LintConfig::default());
    let back = obcs_lint::DiagnosticSet::from_json(&report.to_json()).expect("parses");
    assert_eq!(back.diagnostics, report.diagnostics);
}
