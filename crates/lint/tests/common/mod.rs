//! Shared synthetic fixture for the lint tests: a minimal hand-built
//! artifact chain (ontology, KB, mapping, space) that lints clean, plus
//! variants with specific defects baked in at construction time.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use obcs_core::concepts::{CompletionMetadata, DependentConcept, DependentSemantics};
use obcs_core::entities::{EntityDef, EntityKind, SynonymDict};
use obcs_core::intents::{Intent, IntentGoal, IntentId};
use obcs_core::patterns::{PatternKind, QueryPattern};
use obcs_core::templates::{IntentTemplates, LabeledTemplate};
use obcs_core::training::{ExampleSource, TrainingExample};
use obcs_core::ConversationSpace;
use obcs_kb::schema::{ColumnType, TableSchema};
use obcs_kb::{KnowledgeBase, Value};
use obcs_nlq::{OntologyMapping, QueryTemplate};
use obcs_ontology::{ConceptId, Ontology, OntologyBuilder};

pub struct Fixture {
    pub onto: Ontology,
    pub kb: KnowledgeBase,
    pub mapping: OntologyMapping,
    pub space: ConversationSpace,
}

impl Fixture {
    pub fn drug(&self) -> ConceptId {
        self.onto.concept_id("Drug").expect("fixture concept")
    }

    pub fn precaution(&self) -> ConceptId {
        self.onto.concept_id("Precaution").expect("fixture concept")
    }

    pub fn indication(&self) -> ConceptId {
        self.onto.concept_id("Indication").expect("fixture concept")
    }
}

fn build_onto() -> Ontology {
    OntologyBuilder::new("fixture")
        .concept("Drug")
        .concept("Precaution")
        .concept("Indication")
        .data("Drug", &["name"])
        .data("Precaution", &["text"])
        .data("Indication", &["name"])
        .relation("hasPrecaution", "Drug", "Precaution")
        .relation_with_inverse("treats", "is treated by", "Drug", "Indication")
        .build()
        .expect("fixture ontology")
}

/// Builds the KB. `indication_fk` controls whether the `indication` table
/// declares its foreign key to `drug` (dropping it leaves the `treats`
/// relationship unjoinable — OBCS043). `fk_target` is the table the
/// `precaution.drug_id` foreign key claims to reference (a bogus name
/// gives a broken declaration — OBCS051).
pub fn build_kb(indication_fk: bool, fk_target: &str) -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.create_table(
        TableSchema::new("drug")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .primary_key("id"),
    )
    .expect("create drug");
    kb.create_table(
        TableSchema::new("precaution")
            .column("id", ColumnType::Int)
            .column("drug_id", ColumnType::Int)
            .column("text", ColumnType::Text)
            .primary_key("id")
            .foreign_key("drug_id", fk_target, "id"),
    )
    .expect("create precaution");
    let mut indication = TableSchema::new("indication")
        .column("id", ColumnType::Int)
        .column("drug_id", ColumnType::Int)
        .column("name", ColumnType::Text)
        .primary_key("id");
    if indication_fk {
        indication = indication.foreign_key("drug_id", "drug", "id");
    }
    kb.create_table(indication).expect("create indication");

    kb.insert("drug", vec![Value::Int(7777), Value::text("aspirin")]).expect("insert drug");
    kb.insert("drug", vec![Value::Int(7778), Value::text("ibuprofen")]).expect("insert drug");
    if fk_target == "drug" {
        kb.insert(
            "precaution",
            vec![Value::Int(1), Value::Int(7777), Value::text("avoid alcohol")],
        )
        .expect("insert precaution");
    }
    kb.insert("indication", vec![Value::Int(1), Value::Int(7777), Value::text("headache")])
        .expect("insert indication");
    kb
}

fn build_space(onto: &Ontology) -> ConversationSpace {
    let drug = onto.concept_id("Drug").expect("fixture concept");
    let precaution = onto.concept_id("Precaution").expect("fixture concept");
    let lookup = QueryPattern {
        kind: PatternKind::Lookup,
        focus: precaution,
        required: vec![drug],
        intermediates: vec![],
        relation_phrase: None,
        topic: "Precautions".to_string(),
        derived_from: None,
    };
    let query_intent = Intent {
        id: IntentId(0),
        name: "Precautions of Drug".to_string(),
        goal: IntentGoal::Query(vec![lookup]),
        required_entities: vec![drug],
        optional_entities: vec![],
        response_template: "Here are the {topic} for {entities}:\n{results}".to_string(),
    };
    let entity_only = Intent {
        id: IntentId(1),
        name: "DRUG_GENERAL".to_string(),
        goal: IntentGoal::EntityOnly(drug),
        required_entities: vec![],
        optional_entities: vec![],
        response_template: String::new(),
    };
    let training = [
        ("show me the precautions for aspirin", 0u32),
        ("what precautions does ibuprofen have", 0),
        ("precautions of aspirin", 0),
        ("aspirin", 1),
        ("tell me about ibuprofen", 1),
        ("aspirin please", 1),
    ]
    .into_iter()
    .map(|(text, intent)| TrainingExample {
        text: text.to_string(),
        intent: IntentId(intent),
        source: ExampleSource::Generated,
    })
    .collect();
    let dependents = vec![DependentConcept {
        concept: precaution,
        of_key: drug,
        semantics: DependentSemantics::Plain,
    }];
    let completion = CompletionMetadata::build(&dependents);
    let sql = "SELECT precaution.text FROM precaution \
               JOIN drug ON precaution.drug_id = drug.id \
               WHERE drug.name = '<@Drug>'";
    ConversationSpace {
        ontology_name: "fixture".to_string(),
        key_concepts: vec![drug],
        dependents,
        intents: vec![query_intent, entity_only],
        training,
        entities: vec![
            EntityDef {
                concept: drug,
                name: "Drug".to_string(),
                kind: EntityKind::Concept,
                examples: vec!["aspirin".to_string(), "ibuprofen".to_string()],
                synonyms: vec![],
            },
            EntityDef {
                concept: precaution,
                name: "Precaution".to_string(),
                kind: EntityKind::Concept,
                examples: vec!["avoid alcohol".to_string()],
                synonyms: vec![],
            },
        ],
        synonyms: SynonymDict::new(),
        templates: vec![IntentTemplates {
            intent: IntentId(0),
            templates: vec![LabeledTemplate {
                topic: "Precautions".to_string(),
                template: QueryTemplate::new(sql.to_string(), vec![drug], onto),
            }],
        }],
        completion,
        skipped_templates: vec![],
    }
}

/// The clean baseline fixture.
pub fn fixture() -> Fixture {
    let onto = build_onto();
    let kb = build_kb(true, "drug");
    let mapping = OntologyMapping::infer(&onto, &kb);
    let space = build_space(&onto);
    Fixture { onto, kb, mapping, space }
}

/// Variant without the `indication.drug_id` foreign key: the `treats`
/// relationship has no join realisation (OBCS043).
pub fn fixture_unjoined_relation() -> Fixture {
    let onto = build_onto();
    let kb = build_kb(false, "drug");
    let mapping = OntologyMapping::infer(&onto, &kb);
    let space = build_space(&onto);
    Fixture { onto, kb, mapping, space }
}

/// Variant whose `precaution.drug_id` foreign key references a table that
/// does not exist (OBCS051).
pub fn fixture_broken_fk_decl() -> Fixture {
    let onto = build_onto();
    let kb = build_kb(true, "droog");
    // The mapping must still bind `precaution` for the query intent, so
    // infer against a well-formed twin of the KB.
    let mapping = OntologyMapping::infer(&onto, &build_kb(true, "drug"));
    let space = build_space(&onto);
    Fixture { onto, kb, mapping, space }
}

/// Variant with an orphaned `precaution.drug_id` value (OBCS052). Insert
/// enforces referential integrity, so the orphan is produced by editing
/// the serialized KB: the referenced drug id `7777` is renumbered while
/// the referencing row keeps it.
pub fn fixture_orphan_row() -> Fixture {
    let onto = build_onto();
    let kb = build_kb(true, "drug");
    let json = kb.to_json();
    // Tables serialize sorted by name (drug < indication < precaution),
    // so the first `7777` is the drug row's own id.
    let doctored = json.replacen("7777", "1111", 1);
    assert_ne!(doctored, json, "fixture drug id not found in KB JSON");
    let kb = KnowledgeBase::from_json(&doctored).expect("doctored KB parses");
    let mapping = OntologyMapping::infer(&onto, &kb);
    let space = build_space(&onto);
    Fixture { onto, kb, mapping, space }
}
