//! Property tests: *wherever* a targeted mutation lands in the artifact
//! chain, the matching lint code fires. The mutation site is
//! proptest-driven; the assertion is always about the specific code.

mod common;

use common::{build_kb, fixture, Fixture};
use obcs_core::training::{ExampleSource, TrainingExample};
use obcs_core::IntentId;
use obcs_lint::{run_all, DiagnosticSet, LintConfig, LintContext};
use obcs_nlq::OntologyMapping;
use proptest::prelude::*;

fn lint(f: &Fixture) -> DiagnosticSet {
    let ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
    run_all(&ctx, &LintConfig::default())
}

proptest! {
    /// Copying any training example onto the other intent always raises
    /// OBCS010, regardless of which example is duplicated.
    #[test]
    fn duplicating_any_example_across_intents_fires_obcs010(idx in 0usize..6) {
        let mut f = fixture();
        let source = f.space.training[idx].clone();
        let other = if source.intent == IntentId(0) { IntentId(1) } else { IntentId(0) };
        f.space.training.push(TrainingExample {
            text: source.text.clone(),
            intent: other,
            source: ExampleSource::SmeAugmented,
        });
        prop_assert!(lint(&f).has_code("OBCS010"));
    }

    /// Blanking the elicitation prompt of any logic-table slot always
    /// raises OBCS020.
    #[test]
    fn dropping_any_elicitation_fires_obcs020(row in 0usize..2) {
        let f = fixture();
        let mut ctx = LintContext::new(&f.onto, &f.kb, &f.mapping, &f.space);
        // Row 1 (the entity-only intent) has no required slots; target the
        // query row in that case.
        let row = if ctx.logic.rows[row].required.is_empty() { 0 } else { row };
        ctx.logic.rows[row].required[0].elicitation = String::new();
        let report = run_all(&ctx, &LintConfig::default());
        prop_assert!(report.has_code("OBCS020"), "{}", report.render_text());
    }

    /// Pointing the precaution foreign key at any nonexistent table name
    /// always raises OBCS051.
    #[test]
    fn breaking_the_fk_declaration_fires_obcs051(name in "[a-z]{4,10}") {
        prop_assume!(name != "drug" && name != "indication" && name != "precaution");
        let onto_fixture = fixture();
        let kb = build_kb(true, &name);
        let mapping = OntologyMapping::infer(&onto_fixture.onto, &build_kb(true, "drug"));
        let f = Fixture { onto: onto_fixture.onto, kb, mapping, space: onto_fixture.space };
        prop_assert!(lint(&f).has_code("OBCS051"));
    }

    /// Dropping all of an intent's training below the floor fires OBCS012
    /// (some examples left) or OBCS013 (none left), never neither.
    #[test]
    fn starving_an_intent_fires_floor_codes(keep in 0usize..3, intent in 0u32..2) {
        let mut f = fixture();
        let intent = IntentId(intent);
        let mut kept = 0usize;
        f.space.training.retain(|e| {
            if e.intent != intent {
                return true;
            }
            kept += 1;
            kept <= keep
        });
        let report = lint(&f);
        if keep == 0 {
            prop_assert!(report.has_code("OBCS013"), "{}", report.render_text());
        } else {
            prop_assert!(report.has_code("OBCS012"), "{}", report.render_text());
        }
    }
}
