//! `spaceverify` — statically verify committed conversation-space
//! artifacts: dialogue-flow model checking, query bind-checking and
//! cross-artifact consistency (`OBCS1xx`).
//!
//! ```text
//! spaceverify <space.json> [kb.json] [--json] [--deny-warnings] [--max-states N]
//! ```
//!
//! The KB defaults to a `*_kb.json` sibling of the space file, and the
//! ontology is reconstructed from the space's `ontology_name` — the same
//! artifact-loading conventions as `spacelint`.
//!
//! `--json` emits the shared [`obcs_lint::JsonReport`] envelope with
//! `"tool": "spaceverify"`.
//!
//! Exit status: 0 when the gate passes, 1 when it fails, 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use obcs_lint::{load_artifacts, JsonReport};
use obcs_nlq::OntologyMapping;
use obcs_verify::{all_checks, run_all, VerifyConfig, VerifyContext};

struct Args {
    space_path: PathBuf,
    kb_path: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    max_states: Option<usize>,
    list_rules: bool,
}

fn usage() -> &'static str {
    "usage: spaceverify <space.json> [kb.json] [--json] [--deny-warnings] [--max-states N]\n       spaceverify --rules"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional: Vec<&str> = Vec::new();
    let mut json = false;
    let mut deny_warnings = false;
    let mut max_states = None;
    let mut list_rules = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--rules" => list_rules = true,
            "--max-states" => {
                i += 1;
                let value = argv.get(i).ok_or("--max-states needs a value")?;
                max_states =
                    Some(value.parse::<usize>().map_err(|_| "--max-states needs a number")?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => positional.push(path),
        }
        i += 1;
    }
    if list_rules {
        return Ok(Args {
            space_path: PathBuf::new(),
            kb_path: None,
            json,
            deny_warnings,
            max_states,
            list_rules,
        });
    }
    let space_path = positional.first().ok_or_else(|| usage().to_string())?.into();
    Ok(Args {
        space_path,
        kb_path: positional.get(1).map(PathBuf::from),
        json,
        deny_warnings,
        max_states,
        list_rules,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            if msg != usage() {
                eprintln!("{}", usage());
            }
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for check in all_checks() {
            println!(
                "{:<28} {:<40} {}",
                check.name(),
                check.codes().join(","),
                check.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let (space, kb, onto) = match load_artifacts(&args.space_path, args.kb_path.as_deref()) {
        Ok(loaded) => loaded,
        Err(msg) => {
            eprintln!("spaceverify: {msg}");
            return ExitCode::from(2);
        }
    };

    let mapping = OntologyMapping::infer(&onto, &kb);
    let ctx = VerifyContext::new(&onto, &kb, &mapping, &space);
    let mut cfg = VerifyConfig::default();
    if let Some(max_states) = args.max_states {
        cfg.max_states = max_states;
    }
    let report = run_all(&ctx, &cfg);

    if args.json {
        let envelope =
            JsonReport::new("spaceverify", &args.space_path.display().to_string(), &report);
        println!("{}", envelope.to_json());
    } else {
        print!("{}", report.render_text());
    }

    match report.gate(args.deny_warnings) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("spaceverify: {msg}");
            ExitCode::FAILURE
        }
    }
}
