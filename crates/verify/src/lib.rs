//! Whole-space static verification: dialogue-flow model checking,
//! static query bind-checking and cross-artifact consistency for
//! bootstrapped conversation spaces.
//!
//! Where `obcs-lint` (`OBCS0xx`) inspects each artifact in isolation,
//! this crate (`OBCS1xx`) proves *behavioural* properties of the space
//! as a whole, before any conversation is served:
//!
//! * [`flow`] symbolically explores the dialogue state machine — the
//!   real [`obcs_dialogue::tree::DialogueTree::evaluate`] driven over an
//!   abstract input alphabet — and proves every intent reachable, every
//!   elicitation loop able to make progress, every proposal equipped
//!   with both accept and reject edges, and reports dead logic rows and
//!   unreachable tree nodes (`OBCS100`–`OBCS105`).
//! * [`bindcheck`] runs the KB's bind phase ([`obcs_kb::KnowledgeBase::prepare`])
//!   over every query template — no query is executed — proving the
//!   whole query surface binds against the schema, every slot is
//!   fillable, projections never collide, and literal predicates
//!   type-check (`OBCS110`–`OBCS114`).
//! * [`consistency`] pins referential invariants between artifact
//!   layers: training → logic table, patterns → templates, SQL joins →
//!   declared foreign keys (`OBCS120`–`OBCS122`).
//!
//! The crate reuses `obcs-lint`'s [`obcs_lint::Diagnostic`] framework, so
//! `spaceverify` output (text and `--json`) is shaped exactly like
//! `spacelint`'s. See DESIGN.md §13 for the state-machine abstraction
//! and the bind-check soundness argument.
//!
//! ```
//! use obcs_verify::{run_all, VerifyConfig, VerifyContext};
//!
//! let kb = obcs_mdx::data::build_mdx_kb(Default::default());
//! let onto = obcs_mdx::ontology::build_mdx_ontology();
//! let mapping = obcs_nlq::OntologyMapping::infer(&onto, &kb);
//! let space = obcs_core::bootstrap(
//!     &onto,
//!     &kb,
//!     &mapping,
//!     obcs_core::BootstrapConfig::default(),
//!     &obcs_core::SmeFeedback::default(),
//! );
//! let ctx = VerifyContext::new(&onto, &kb, &mapping, &space);
//! let report = run_all(&ctx, &VerifyConfig::default());
//! assert_eq!(report.count(obcs_lint::Severity::Error), 0);
//! ```

pub mod bindcheck;
pub mod check;
pub mod consistency;
pub mod flow;

pub use check::{all_checks, representative_value, run_all, Check, VerifyConfig, VerifyContext};
pub use flow::FlowExploration;
