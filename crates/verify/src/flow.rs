//! Dialogue-flow model checking (`OBCS100`–`OBCS105`).
//!
//! The bootstrapped space induces a finite state machine: the dialogue
//! tree's `evaluate` is the transition function, the conversation context
//! is the state, and user turns are the input alphabet. This module
//! explores that machine exhaustively — driving the *real*
//! [`DialogueTree::evaluate`](obcs_dialogue::DialogueTree::evaluate), not
//! a re-implementation — over an abstraction of the context that keeps
//! only the behaviour-relevant components:
//!
//! * the active intent,
//! * which *tracked* concepts hold a value (tracked = every concept any
//!   intent requires, plus every concept with a proposal list; each
//!   concept is represented by one fixed instance value, so "filled"
//!   collapses to a set),
//! * the pending proposal and the set of rejected proposals.
//!
//! The input alphabet is finite and complete for the reachable behaviours
//! of a cooperating user: one detected-intent turn per trained intent
//! (with and without its required entities), one bare-entity turn per
//! providable tracked concept, and the management turns that drive
//! proposal edges (`yes` / `no`) and topic resets (`never mind`).
//! Elicitation re-prompts, repeat/definition repairs and chitchat do not
//! change the abstract state, so omitting them loses no reachability.
//!
//! From the explored graph the checks prove: every query intent reachable
//! *and fulfillable* (OBCS100); every elicitation loop satisfiable — no
//! re-prompt that can cycle forever because nothing can fill the slot
//! (OBCS101); every proposal has a working accept edge and a progressing
//! reject edge (OBCS102); no dead logic-table rows (OBCS103) or
//! unreachable proposal branches (OBCS104); and the exploration itself
//! stayed within bounds (OBCS105).

use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};

use obcs_core::intents::IntentGoal;
use obcs_core::IntentId;
use obcs_dialogue::tree::TurnInput;
use obcs_dialogue::{AgentAction, ConversationContext};
use obcs_lint::{Diagnostic, LintContext, Location, Severity};
use obcs_ontology::ConceptId;

use crate::check::{representative_value, Check, VerifyConfig, VerifyContext};

/// The result of exploring the dialogue state machine.
#[derive(Debug, Clone)]
pub struct FlowExploration {
    /// Distinct abstract states reached.
    pub states: usize,
    /// Transitions taken.
    pub edges: usize,
    /// Whether exploration hit the state cap before exhausting the space.
    pub truncated: bool,
    /// Intents with an observed `Fulfill` edge.
    pub fulfilled: BTreeSet<IntentId>,
    /// Intents whose slot filling was entered (`Elicit` or `Fulfill`).
    pub activated: BTreeSet<IntentId>,
    /// Intents observed in a `Propose` action.
    pub proposed: BTreeSet<IntentId>,
    /// `(intent, concept)` pairs where a reachable elicitation asks for a
    /// concept no input can ever fill — the re-prompt loops forever.
    pub elicit_livelocks: BTreeSet<(IntentId, ConceptId)>,
    /// Proposals whose accept edge is broken: `yes` fell back instead of
    /// fulfilling or eliciting.
    pub broken_accepts: BTreeSet<IntentId>,
    /// Proposals whose reject edge failed to progress: `no` left the same
    /// proposal pending.
    pub stuck_denials: BTreeSet<IntentId>,
    /// Concepts with at least one representative instance value, i.e.
    /// slots a user turn can actually fill.
    pub providable: BTreeMap<ConceptId, String>,
}

/// The abstract conversation state: the behaviour-relevant projection of
/// [`ConversationContext`]. Omitted components (`turn`, `eliciting`,
/// `last_agent_response`, `last_terms`) never gate a transition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
struct AbsState {
    intent: Option<IntentId>,
    /// Sorted set of tracked concepts holding a value.
    filled: Vec<ConceptId>,
    proposal: Option<IntentId>,
    /// Sorted set of rejected proposals.
    rejected: Vec<IntentId>,
}

/// One symbolic user turn.
#[derive(Debug, Clone)]
enum SymInput {
    /// The NLU detected this intent; no entities in the utterance.
    Intent(IntentId),
    /// The NLU detected this intent plus values for its (providable)
    /// required entities — the one-shot complete request.
    IntentFull(IntentId, Vec<(ConceptId, String)>),
    /// A bare entity mention (elicitation answer / entity-only turn).
    Entity(ConceptId, String),
    /// "yes" — accepts a pending proposal.
    Affirm,
    /// "no" — rejects a pending proposal.
    Deny,
    /// "never mind" — aborts the topic.
    Abort,
}

/// A fixed utterance that matches no management pattern, so `evaluate`
/// falls through to domain handling.
const DOMAIN_UTTERANCE: &str = "tell me about the domain topic";

impl SymInput {
    fn to_turn(&self) -> TurnInput {
        match self {
            SymInput::Intent(i) => {
                TurnInput { utterance: DOMAIN_UTTERANCE.into(), intent: Some(*i), entities: vec![] }
            }
            SymInput::IntentFull(i, entities) => TurnInput {
                utterance: DOMAIN_UTTERANCE.into(),
                intent: Some(*i),
                entities: entities.clone(),
            },
            SymInput::Entity(c, v) => TurnInput {
                utterance: DOMAIN_UTTERANCE.into(),
                intent: None,
                entities: vec![(*c, v.clone())],
            },
            SymInput::Affirm => TurnInput { utterance: "yes".into(), ..Default::default() },
            SymInput::Deny => TurnInput { utterance: "no".into(), ..Default::default() },
            SymInput::Abort => TurnInput { utterance: "never mind".into(), ..Default::default() },
        }
    }
}

/// Explores the dialogue state machine breadth-first from the empty
/// context and records the facts the flow checks need.
pub fn explore(lint: &LintContext<'_>, cfg: &VerifyConfig) -> FlowExploration {
    let space = lint.space;

    // Tracked concepts: everything slot filling or proposals can turn on.
    let mut tracked: BTreeSet<ConceptId> = BTreeSet::new();
    for intent in &space.intents {
        tracked.extend(intent.required_entities.iter().copied());
    }
    for (concept, _) in &lint.tree.proposals {
        tracked.insert(*concept);
    }

    let mut providable: BTreeMap<ConceptId, String> = BTreeMap::new();
    for &c in &tracked {
        if let Some(v) = representative_value(lint, c) {
            providable.insert(c, v);
        }
    }

    // The input alphabet. Intents are detectable only when trained — the
    // classifier cannot emit an intent it has no examples of.
    let mut alphabet: Vec<SymInput> = Vec::new();
    for intent in &space.intents {
        if matches!(intent.goal, IntentGoal::ConversationManagement) {
            continue;
        }
        if !space.training.iter().any(|e| e.intent == intent.id) {
            continue;
        }
        alphabet.push(SymInput::Intent(intent.id));
        let full: Vec<(ConceptId, String)> = intent
            .required_entities
            .iter()
            .filter_map(|c| providable.get(c).map(|v| (*c, v.clone())))
            .collect();
        if !full.is_empty() {
            alphabet.push(SymInput::IntentFull(intent.id, full));
        }
    }
    for (&c, v) in &providable {
        alphabet.push(SymInput::Entity(c, v.clone()));
    }
    alphabet.push(SymInput::Affirm);
    alphabet.push(SymInput::Deny);
    alphabet.push(SymInput::Abort);

    let mut out = FlowExploration {
        states: 0,
        edges: 0,
        truncated: false,
        fulfilled: BTreeSet::new(),
        activated: BTreeSet::new(),
        proposed: BTreeSet::new(),
        elicit_livelocks: BTreeSet::new(),
        broken_accepts: BTreeSet::new(),
        stuck_denials: BTreeSet::new(),
        providable: providable.clone(),
    };

    let mut seen: HashSet<AbsState> = HashSet::new();
    let mut queue: VecDeque<AbsState> = VecDeque::new();
    let start = AbsState::default();
    seen.insert(start.clone());
    queue.push_back(start);

    while let Some(state) = queue.pop_front() {
        for input in &alphabet {
            let mut ctx = materialize(&state, &providable);
            let action = lint.tree.evaluate(&mut ctx, &input.to_turn());
            out.edges += 1;

            match &action {
                AgentAction::Fulfill { intent } => {
                    out.fulfilled.insert(*intent);
                    out.activated.insert(*intent);
                }
                AgentAction::Elicit { intent, concept, .. } => {
                    out.activated.insert(*intent);
                    if !providable.contains_key(concept) {
                        out.elicit_livelocks.insert((*intent, *concept));
                    }
                }
                AgentAction::Propose { intent, .. } => {
                    out.proposed.insert(*intent);
                }
                _ => {}
            }
            if let Some(p) = state.proposal {
                match input {
                    SymInput::Affirm => {
                        if matches!(action, AgentAction::Fallback { .. }) {
                            out.broken_accepts.insert(p);
                        }
                    }
                    SymInput::Deny if ctx.proposal == Some(p) => {
                        out.stuck_denials.insert(p);
                    }
                    _ => {}
                }
            }

            let next = abstract_state(&ctx, &tracked);
            if !seen.contains(&next) {
                if seen.len() >= cfg.max_states {
                    out.truncated = true;
                    continue;
                }
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }

    out.states = seen.len();
    out
}

/// Builds a concrete context realising an abstract state, using the fixed
/// representative value of each filled concept.
fn materialize(state: &AbsState, providable: &BTreeMap<ConceptId, String>) -> ConversationContext {
    let mut ctx = ConversationContext::new();
    ctx.turn = 1;
    ctx.intent = state.intent;
    for c in &state.filled {
        if let Some(v) = providable.get(c) {
            ctx.put_entity(*c, v.clone());
        }
    }
    ctx.proposal = state.proposal;
    ctx.rejected_proposals = state.rejected.clone();
    ctx
}

/// Projects a concrete context back to the abstract state.
fn abstract_state(ctx: &ConversationContext, tracked: &BTreeSet<ConceptId>) -> AbsState {
    let mut filled: Vec<ConceptId> =
        ctx.entities.iter().map(|e| e.concept).filter(|c| tracked.contains(c)).collect();
    filled.sort_unstable();
    filled.dedup();
    let mut rejected = ctx.rejected_proposals.clone();
    rejected.sort_unstable();
    rejected.dedup();
    AbsState { intent: ctx.intent, filled, proposal: ctx.proposal, rejected }
}

/// OBCS100: a query intent that is never fulfilled in any reachable run —
/// either undetectable and unproposed, or its slots can never all fill.
pub struct IntentReachability;

impl Check for IntentReachability {
    fn name(&self) -> &'static str {
        "intent-reachability"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS100"]
    }

    fn description(&self) -> &'static str {
        "query intents that can never be fulfilled from the start state"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        if flow.truncated {
            return; // "never fulfilled" is unsound on a partial exploration (OBCS105 reports it)
        }
        for intent in &ctx.lint.space.intents {
            if !intent.is_query() {
                continue;
            }
            if !flow.fulfilled.contains(&intent.id) {
                out.push(
                    Diagnostic::new(
                        "OBCS100",
                        Severity::Error,
                        Location::new("dialogue-flow", format!("intent `{}`", intent.name)),
                        "no reachable conversation ever fulfills this intent",
                    )
                    .with_suggestion(
                        "add training examples, a proposal path, or instance values for its required entities",
                    ),
                );
            }
        }
    }
}

/// OBCS101: a reachable elicitation asks for a concept that no user input
/// can fill (no entity examples and no KB instances) — the re-prompt
/// cycles forever for a cooperating user.
pub struct ElicitationLiveness;

impl Check for ElicitationLiveness {
    fn name(&self) -> &'static str {
        "elicitation-liveness"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS101"]
    }

    fn description(&self) -> &'static str {
        "elicitation loops no user answer can ever satisfy (livelock)"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        for &(intent, concept) in &flow.elicit_livelocks {
            let name = ctx
                .lint
                .space
                .intent(intent)
                .map(|i| i.name.clone())
                .unwrap_or_else(|| format!("#{}", intent.0));
            out.push(
                Diagnostic::new(
                    "OBCS101",
                    Severity::Error,
                    Location::new("dialogue-flow", format!("intent `{name}`")),
                    format!(
                        "elicits `{}` but no entity example or KB instance can ever fill it; \
                         the re-prompt loops forever",
                        ctx.lint.concept_label(concept)
                    ),
                )
                .with_suggestion("add instance values to the KB or examples to the entity"),
            );
        }
    }
}

/// OBCS102: a reachable proposal whose accept edge falls back (`yes`
/// cannot fire the offered intent) or whose reject edge does not progress.
pub struct ProposalEdges;

impl Check for ProposalEdges {
    fn name(&self) -> &'static str {
        "proposal-edges"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS102"]
    }

    fn description(&self) -> &'static str {
        "proposals without a working accept and a progressing reject edge"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        let label = |id: IntentId| {
            ctx.lint
                .space
                .intent(id)
                .map(|i| i.name.clone())
                .unwrap_or_else(|| format!("#{}", id.0))
        };
        for &p in &flow.broken_accepts {
            out.push(
                Diagnostic::new(
                    "OBCS102",
                    Severity::Error,
                    Location::new("dialogue-flow", format!("proposal `{}`", label(p))),
                    "accepting this proposal falls back instead of fulfilling or eliciting",
                )
                .with_suggestion("ensure the proposed intent has a logic-table row"),
            );
        }
        for &p in &flow.stuck_denials {
            out.push(
                Diagnostic::new(
                    "OBCS102",
                    Severity::Error,
                    Location::new("dialogue-flow", format!("proposal `{}`", label(p))),
                    "rejecting this proposal leaves it pending; `no` loops on the same offer",
                )
                .with_suggestion("regenerate the dialogue tree from the current space"),
            );
        }
    }
}

/// OBCS103: a logic-table row for a query intent that no reachable turn
/// ever activates — dead configuration the designer maintains for nothing.
pub struct DeadLogicRows;

impl Check for DeadLogicRows {
    fn name(&self) -> &'static str {
        "dead-logic-rows"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS103"]
    }

    fn description(&self) -> &'static str {
        "logic-table rows no reachable conversation activates"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        if flow.truncated {
            return; // "never activated" is unsound on a partial exploration
        }
        for row in &ctx.lint.logic.rows {
            let Some(intent) = ctx.lint.space.intent(row.intent) else {
                continue; // OBCS120's territory.
            };
            // Management rows are handled by the catalog, entity-only rows
            // by proposals; only query rows are slot-filled.
            if !intent.is_query() {
                continue;
            }
            if !flow.activated.contains(&row.intent) && !flow.fulfilled.contains(&row.intent) {
                out.push(
                    Diagnostic::new(
                        "OBCS103",
                        Severity::Warning,
                        Location::new("logic-table", format!("intent `{}`", row.intent_name)),
                        "row is dead: no reachable turn enters its slot filling",
                    )
                    .with_suggestion(
                        "add training examples or a proposal path, or drop the intent",
                    ),
                );
            }
        }
    }
}

/// OBCS104: a proposal-list entry (tree node) that exploration never
/// reaches — e.g. its concept has no instance values, so the entity-only
/// branch never fires.
pub struct TreeNodeReachability;

impl Check for TreeNodeReachability {
    fn name(&self) -> &'static str {
        "tree-node-reachability"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS104"]
    }

    fn description(&self) -> &'static str {
        "proposal branches of the dialogue tree no conversation reaches"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        if flow.truncated {
            return; // "never proposed" is unsound on a partial exploration
        }
        for (concept, intents) in &ctx.lint.tree.proposals {
            for &proposed in intents {
                if flow.proposed.contains(&proposed) {
                    continue;
                }
                let name = ctx
                    .lint
                    .space
                    .intent(proposed)
                    .map(|i| i.name.clone())
                    .unwrap_or_else(|| format!("#{}", proposed.0));
                out.push(
                    Diagnostic::new(
                        "OBCS104",
                        Severity::Warning,
                        Location::new(
                            "dialogue-tree",
                            format!(
                                "proposals for `{}`, intent `{name}`",
                                ctx.lint.concept_label(*concept)
                            ),
                        ),
                        "proposal branch is unreachable in every explored conversation",
                    )
                    .with_suggestion(
                        "check the concept has instance values so entity-only turns can reach it",
                    ),
                );
            }
        }
    }
}

/// OBCS105: the exploration hit its state cap, so the flow checks above
/// are only sound up to the bound.
pub struct ExplorationBound;

impl Check for ExplorationBound {
    fn name(&self) -> &'static str {
        "exploration-bound"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS105"]
    }

    fn description(&self) -> &'static str {
        "dialogue-flow exploration exceeded the state cap (incomplete proof)"
    }

    fn run(&self, ctx: &VerifyContext<'_>, cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let flow = ctx.flow(cfg);
        if flow.truncated {
            out.push(
                Diagnostic::new(
                    "OBCS105",
                    Severity::Warning,
                    Location::new("dialogue-flow", "state space"),
                    format!(
                        "exploration truncated at {} states ({} edges); reachability results \
                         are incomplete",
                        flow.states, flow.edges
                    ),
                )
                .with_suggestion("raise --max-states, or simplify the space"),
            );
        }
    }
}
