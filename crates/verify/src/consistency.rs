//! Cross-artifact consistency (`OBCS120`–`OBCS122`).
//!
//! The bootstrapped space is a bundle of artifacts — training examples,
//! intents, the dialogue logic table, query patterns, templates — that
//! are only meaningful *together*. Each pass here pins one referential
//! invariant between two artifact layers:
//!
//! * **OBCS120** — every training example's intent exists in the space
//!   and has a dialogue-logic row (otherwise the NLU can classify into a
//!   dead intent the dialogue layer cannot serve).
//! * **OBCS121** — every template slot is produced by the owning
//!   intent's query patterns, and every template topic names one of those
//!   patterns (otherwise the dialogue elicits the wrong slots for the
//!   query it will eventually run).
//! * **OBCS122** — every join equality a template's SQL performs is
//!   backed by a foreign key declared in the KB schema, in either
//!   direction (joins are only meaningful along declared relationships;
//!   an unbacked join silently cross-products unrelated rows).

use std::collections::BTreeSet;

use obcs_kb::sql::parser;
use obcs_lint::{Diagnostic, Location, Severity};

use crate::bindcheck::binding_table;
use crate::check::{Check, VerifyConfig, VerifyContext};

/// OBCS120: a training example whose intent is missing from the space's
/// intent list or from the dialogue logic table.
pub struct TrainingLogicConsistency;

impl Check for TrainingLogicConsistency {
    fn name(&self) -> &'static str {
        "training-logic-consistency"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS120"]
    }

    fn description(&self) -> &'static str {
        "training examples referencing intents absent from the space or logic table"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        let mut reported = BTreeSet::new();
        for example in &ctx.lint.space.training {
            if !reported.insert(example.intent) {
                continue; // one diagnostic per dangling intent
            }
            if ctx.lint.space.intent(example.intent).is_none() {
                out.push(
                    Diagnostic::new(
                        "OBCS120",
                        Severity::Error,
                        Location::new("space", format!("training example \"{}\"", example.text)),
                        format!(
                            "training intent {:?} does not exist in the space; the NLU can \
                             classify into an intent the system cannot serve",
                            example.intent
                        ),
                    )
                    .with_suggestion("regenerate the training set from the current intents"),
                );
            } else if !ctx.lint.logic.rows.iter().any(|row| row.intent == example.intent) {
                out.push(
                    Diagnostic::new(
                        "OBCS120",
                        Severity::Error,
                        Location::new("space", format!("training example \"{}\"", example.text)),
                        format!(
                            "training intent {:?} has no dialogue-logic row; classified turns \
                             would reach an intent the dialogue layer cannot drive",
                            example.intent
                        ),
                    )
                    .with_suggestion("rebuild the logic table from the current intents"),
                );
            }
        }
    }
}

/// OBCS121: a template whose slots are not produced by the owning
/// intent's query patterns, or whose topic names no pattern of that
/// intent.
pub struct PatternTemplateConsistency;

impl Check for PatternTemplateConsistency {
    fn name(&self) -> &'static str {
        "pattern-template-consistency"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS121"]
    }

    fn description(&self) -> &'static str {
        "template slots or topics not produced by the owning intent's patterns"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for group in &ctx.lint.space.templates {
            let Some(intent) = ctx.lint.space.intent(group.intent) else {
                continue; // dangling template groups are lint OBCS019's territory
            };
            let patterns = intent.patterns();
            let producible: BTreeSet<_> =
                patterns.iter().flat_map(|p| p.required.iter().copied()).collect();
            for template in &group.templates {
                let location = Location::new(
                    "space",
                    format!("intent `{}`, template \"{}\"", intent.name, template.topic),
                );
                if !patterns.iter().any(|p| p.topic == template.topic) {
                    out.push(
                        Diagnostic::new(
                            "OBCS121",
                            Severity::Error,
                            location.clone(),
                            format!(
                                "template topic \"{}\" matches no query pattern of intent `{}`",
                                template.topic, intent.name
                            ),
                        )
                        .with_suggestion("regenerate the templates from the current patterns"),
                    );
                }
                for concept in template.template.required_concepts() {
                    if !producible.contains(&concept) {
                        out.push(
                            Diagnostic::new(
                                "OBCS121",
                                Severity::Error,
                                location.clone(),
                                format!(
                                    "slot `<@{}>` is not a required concept of any pattern of \
                                     intent `{}`; the dialogue would never elicit it",
                                    ctx.lint.concept_label(concept),
                                    intent.name
                                ),
                            )
                            .with_suggestion(
                                "regenerate the templates, or add the concept to the intent's \
                                 required entities",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// OBCS122: a template SQL join not backed by a foreign key declared in
/// the KB schema (in either direction).
pub struct JoinFkConsistency;

impl JoinFkConsistency {
    /// Whether `left_table.left_col = right_table.right_col` is a declared
    /// FK edge in either direction.
    fn fk_backed(
        ctx: &VerifyContext<'_>,
        left_table: &str,
        left_col: &str,
        right_table: &str,
        right_col: &str,
    ) -> bool {
        let declared = |from: &str, from_col: &str, to: &str, to_col: &str| {
            ctx.lint.kb.table(from).is_ok_and(|t| {
                t.schema.foreign_keys.iter().any(|fk| {
                    fk.column == from_col
                        && fk.references_table == to
                        && fk.references_column == to_col
                })
            })
        };
        declared(left_table, left_col, right_table, right_col)
            || declared(right_table, right_col, left_table, left_col)
    }
}

impl Check for JoinFkConsistency {
    fn name(&self) -> &'static str {
        "join-fk-consistency"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS122"]
    }

    fn description(&self) -> &'static str {
        "template SQL joins not backed by a declared foreign key"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for group in &ctx.lint.space.templates {
            let Some(intent) = ctx.lint.space.intent(group.intent) else {
                continue;
            };
            for template in &group.templates {
                let Ok(stmt) = parser::parse(template.template.sql()) else {
                    continue; // an unparsable template fails OBCS110
                };
                for join in &stmt.joins {
                    let left = &join.left;
                    let right = &join.right;
                    let resolve = |qualifier: Option<&str>, default: &str| {
                        qualifier
                            .and_then(|q| binding_table(&stmt, q))
                            .unwrap_or(default)
                            .to_string()
                    };
                    // An unqualified join column defaults to the joined
                    // table itself; the other side defaults to FROM.
                    let left_table = resolve(left.qualifier.as_deref(), &join.table.table);
                    let right_table = resolve(right.qualifier.as_deref(), &stmt.from.table);
                    if !Self::fk_backed(ctx, &left_table, &left.column, &right_table, &right.column)
                    {
                        out.push(
                            Diagnostic::new(
                                "OBCS122",
                                Severity::Error,
                                Location::new(
                                    "space",
                                    format!(
                                        "intent `{}`, template \"{}\"",
                                        intent.name, template.topic
                                    ),
                                ),
                                format!(
                                    "join `{left_table}.{} = {right_table}.{}` is not backed by \
                                     a foreign key declared in the KB schema",
                                    left.column, right.column
                                ),
                            )
                            .with_suggestion(
                                "declare the foreign key in the schema, or regenerate the \
                                 templates",
                            ),
                        );
                    }
                }
            }
        }
    }
}
