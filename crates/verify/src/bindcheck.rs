//! Static query bind-checking (`OBCS110`–`OBCS114`).
//!
//! Every structured query the space can ever issue is a template
//! instantiation: a committed SQL string with `'<@Concept>'` markers,
//! filled with entity values at serving time. Because the KB's bind phase
//! ([`KnowledgeBase::prepare`]) resolves every table, column, join and
//! predicate against the schemas *without reading a row*, the whole query
//! surface can be proven well-typed offline:
//!
//! * **OBCS110** — every template, instantiated with a representative
//!   value per slot, binds against the KB schema (tables exist, columns
//!   resolve, joins relate to earlier tables).
//! * **OBCS111** — every template slot is fillable by some ontology term:
//!   an entity example or a KB instance value exists for its concept.
//! * **OBCS112** — the bound projection never emits two output columns
//!   with the same unqualified name (result sections would be
//!   indistinguishable downstream).
//! * **OBCS113** — every literal predicate type-checks: a quoted slot
//!   marker (which instantiates to a text literal) must compare against a
//!   text column, and plain literals must be admissible in their column's
//!   type.
//! * **OBCS114** — bind coverage is complete: every query pattern of
//!   every intent either produced a template or carries a recorded skip
//!   reason, so nothing escapes the checks above.
//!
//! Soundness argument (DESIGN.md §13): `instantiate` only substitutes
//! quoted text, so the *shape* the binder sees is identical for every
//! runtime value — one successful bind per template proves every
//! instantiation of it binds.

use std::collections::BTreeSet;

use obcs_core::intents::Intent;
use obcs_core::templates::LabeledTemplate;
use obcs_kb::schema::ColumnType;
use obcs_kb::sql::ast::{Predicate, Select};
use obcs_kb::sql::parser;
use obcs_kb::KnowledgeBase;
use obcs_lint::{Diagnostic, LintContext, Location, Severity};

use crate::check::{representative_value, Check, VerifyConfig, VerifyContext};

/// Iterates every `(intent, template)` pair of the space, skipping
/// template groups whose intent the space does not define (OBCS019's
/// territory).
fn each_template<'a>(
    lint: &'a LintContext<'_>,
) -> impl Iterator<Item = (&'a Intent, &'a LabeledTemplate)> {
    lint.space
        .templates
        .iter()
        .filter_map(move |group| lint.space.intent(group.intent).map(|i| (i, &group.templates)))
        .flat_map(|(intent, templates)| templates.iter().map(move |t| (intent, t)))
}

/// Instantiates a template with one representative value per slot (a
/// fixed placeholder when no value exists — the binder never looks at the
/// value, only at the SQL shape around it).
fn instantiate_representative(
    lint: &LintContext<'_>,
    template: &LabeledTemplate,
) -> Result<String, String> {
    let values: Vec<_> = template
        .template
        .required_concepts()
        .into_iter()
        .map(|c| (c, representative_value(lint, c).unwrap_or_else(|| "placeholder".to_string())))
        .collect();
    template.template.instantiate(&values).map_err(|e| e.to_string())
}

fn template_location(intent: &Intent, template: &LabeledTemplate) -> Location {
    Location::new("space", format!("intent `{}`, template \"{}\"", intent.name, template.topic))
}

/// OBCS110: a template whose instantiation fails to bind against the KB
/// schema — at serving time the query would error on its first use.
pub struct TemplateBindCheck;

impl Check for TemplateBindCheck {
    fn name(&self) -> &'static str {
        "template-bind-check"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS110"]
    }

    fn description(&self) -> &'static str {
        "query templates that fail to bind against the KB schema"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for (intent, template) in each_template(&ctx.lint) {
            let sql = match instantiate_representative(&ctx.lint, template) {
                Ok(sql) => sql,
                Err(e) => {
                    out.push(
                        Diagnostic::new(
                            "OBCS110",
                            Severity::Error,
                            template_location(intent, template),
                            format!("template cannot be instantiated: {e}"),
                        )
                        .with_suggestion("regenerate the template from the current space"),
                    );
                    continue;
                }
            };
            if let Err(e) = ctx.lint.kb.prepare(&sql) {
                out.push(
                    Diagnostic::new(
                        "OBCS110",
                        Severity::Error,
                        template_location(intent, template),
                        format!("template does not bind against the KB schema: {e}"),
                    )
                    .with_suggestion(
                        "regenerate the templates, or restore the table/column the SQL names",
                    ),
                );
            }
        }
    }
}

/// OBCS111: a template slot no ontology term can fill — its concept has
/// neither entity examples nor KB instance values, so no recognised or
/// elicited entity could ever instantiate the template.
pub struct SlotFillability;

impl Check for SlotFillability {
    fn name(&self) -> &'static str {
        "slot-fillability"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS111"]
    }

    fn description(&self) -> &'static str {
        "template slots no entity example or KB instance can fill"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for (intent, template) in each_template(&ctx.lint) {
            for concept in template.template.required_concepts() {
                if representative_value(&ctx.lint, concept).is_none() {
                    out.push(
                        Diagnostic::new(
                            "OBCS111",
                            Severity::Error,
                            template_location(intent, template),
                            format!(
                                "slot `<@{}>` is unfillable: the concept has no entity examples \
                                 and no KB instance values",
                                ctx.lint.concept_label(concept)
                            ),
                        )
                        .with_suggestion(
                            "add instance rows to the concept's table or examples to its entity",
                        ),
                    );
                }
            }
        }
    }
}

/// OBCS112: the bound projection of a template emits two output columns
/// with the same (unqualified) name — downstream consumers cannot tell
/// the result sections apart.
pub struct ProjectionCollisions;

impl Check for ProjectionCollisions {
    fn name(&self) -> &'static str {
        "projection-collisions"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS112"]
    }

    fn description(&self) -> &'static str {
        "bound projections emitting duplicate output column names"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for (intent, template) in each_template(&ctx.lint) {
            let Ok(sql) = instantiate_representative(&ctx.lint, template) else {
                continue; // OBCS110 reports it.
            };
            let Ok(plan) = ctx.lint.kb.prepare(&sql) else {
                continue; // OBCS110 reports it.
            };
            let mut seen = BTreeSet::new();
            for col in plan.columns() {
                if !seen.insert(col.as_str()) {
                    out.push(
                        Diagnostic::new(
                            "OBCS112",
                            Severity::Error,
                            template_location(intent, template),
                            format!("projection emits output column `{col}` more than once"),
                        )
                        .with_suggestion("qualify or alias the colliding projections"),
                    );
                }
            }
        }
    }
}

/// Resolves the table a binding name (alias or table name) refers to in a
/// parsed SELECT.
pub(crate) fn binding_table<'a>(stmt: &'a Select, binding: &str) -> Option<&'a str> {
    if stmt.from.binding() == binding {
        return Some(&stmt.from.table);
    }
    stmt.joins.iter().find(|j| j.table.binding() == binding).map(|j| j.table.table.as_str())
}

/// The declared type of `qualifier.column` in the statement's scope, if
/// it resolves unambiguously (bind errors are OBCS110's territory).
fn column_type(
    kb: &KnowledgeBase,
    stmt: &Select,
    qualifier: Option<&str>,
    column: &str,
) -> Option<(String, ColumnType)> {
    let tables: Vec<&str> = match qualifier {
        Some(q) => vec![binding_table(stmt, q)?],
        None => std::iter::once(stmt.from.table.as_str())
            .chain(stmt.joins.iter().map(|j| j.table.table.as_str()))
            .collect(),
    };
    let mut found = None;
    for table in tables {
        let schema = &kb.table(table).ok()?.schema;
        if let Some(def) = schema.column_def(column) {
            if found.is_some() {
                return None; // ambiguous — the binder reports it
            }
            found = Some((format!("{table}.{column}"), def.ty));
        }
    }
    found
}

/// OBCS113: a literal predicate whose value can never match its column's
/// type — in particular a quoted `'<@Concept>'` slot (which always
/// instantiates to a text literal) compared against a non-text column.
pub struct PredicateTypes;

impl Check for PredicateTypes {
    fn name(&self) -> &'static str {
        "predicate-types"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS113"]
    }

    fn description(&self) -> &'static str {
        "template predicates comparing literals against incompatible column types"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for (intent, template) in each_template(&ctx.lint) {
            // Parse the *template* SQL: markers sit inside quotes, so the
            // parser sees them as ordinary text literals and the marker
            // text survives for inspection.
            let Ok(stmt) = parser::parse(template.template.sql()) else {
                continue; // an unparsable template fails OBCS110.
            };
            for pred in &stmt.predicates {
                let Predicate::ColumnLiteral { column, literal, .. } = pred else {
                    continue;
                };
                let Some((qualified, ty)) =
                    column_type(ctx.lint.kb, &stmt, column.qualifier.as_deref(), &column.column)
                else {
                    continue; // unresolvable columns are OBCS110's territory.
                };
                let marker = literal.as_text().filter(|t| t.contains("<@"));
                if let Some(marker) = marker {
                    if ty != ColumnType::Text {
                        out.push(
                            Diagnostic::new(
                                "OBCS113",
                                Severity::Error,
                                template_location(intent, template),
                                format!(
                                    "slot `{marker}` instantiates to a text literal but is \
                                     compared against `{qualified}` of type {ty:?}"
                                ),
                            )
                            .with_suggestion("filter on the concept's text label column instead"),
                        );
                    }
                } else if !ty.admits(literal) {
                    out.push(
                        Diagnostic::new(
                            "OBCS113",
                            Severity::Error,
                            template_location(intent, template),
                            format!(
                                "literal `{literal}` can never match `{qualified}` of type {ty:?}"
                            ),
                        )
                        .with_suggestion("fix the literal or the column the predicate names"),
                    );
                }
            }
        }
    }
}

/// OBCS114: a query pattern that neither produced a template nor carries
/// a recorded skip reason — a hole in bind-check coverage: some
/// conversations would reach fulfilment with no query to run.
pub struct PatternCoverage;

impl Check for PatternCoverage {
    fn name(&self) -> &'static str {
        "pattern-coverage"
    }

    fn codes(&self) -> &'static [&'static str] {
        &["OBCS114"]
    }

    fn description(&self) -> &'static str {
        "query patterns with neither a template nor a recorded skip reason"
    }

    fn run(&self, ctx: &VerifyContext<'_>, _cfg: &VerifyConfig, out: &mut Vec<Diagnostic>) {
        for intent in &ctx.lint.space.intents {
            let templates = ctx.lint.space.templates_for(intent.id);
            for pattern in intent.patterns() {
                let has_template = templates.iter().any(|t| t.topic == pattern.topic);
                let has_skip = ctx
                    .lint
                    .space
                    .skipped_templates
                    .iter()
                    .any(|(id, topic, _)| *id == intent.id && *topic == pattern.topic);
                if !has_template && !has_skip {
                    out.push(
                        Diagnostic::new(
                            "OBCS114",
                            Severity::Warning,
                            Location::new(
                                "space",
                                format!("intent `{}`, pattern \"{}\"", intent.name, pattern.topic),
                            ),
                            "pattern has neither a query template nor a recorded skip reason; \
                             bind-check coverage is incomplete",
                        )
                        .with_suggestion("regenerate the templates from the current space"),
                    );
                }
            }
        }
    }
}
